"""Asynchronous sessions: futures, streaming cursors, and query pipelining.

The paper's performance argument (Section 7.1) is that bounded queries let
the embedded client execute their key/value operations in parallel — but a
fully synchronous ``PiqlDatabase.execute`` still pays the latencies of
*independent queries* in sequence.  A real web interaction (the TPC-W home
page, a SCADr home-page render) issues several independent queries per page,
and an asynchronous client library overlaps them.

A :class:`Session` is one application-server conversation with the database
on one simulated clock:

* :meth:`Session.submit` is **non-blocking**: it validates and binds the
  parameters, returns a :class:`QueryFuture`, and charges nothing.
* :meth:`Session.gather` resolves a set of futures **concurrently**: every
  branch starts at the same simulated instant and the session clock advances
  by the *maximum* of the branch latencies — the same composition rule the
  :class:`~repro.kvstore.client.StorageClient` already applies to a parallel
  batch of key/value requests, lifted to whole queries.  While a gather is
  in flight the storage client additionally coalesces duplicate point reads
  issued by different branches into one batched fetch.
* results come back as a streaming :class:`ResultCursor` — pages of a
  ``PAGINATE`` query are fetched lazily as the cursor is iterated, with
  ``fetch_all()`` for callers that want the fully materialised rows.

Resolving a future *outside* a gather (``future.result()`` on a pending
future, or :meth:`Session.execute`) runs it inline and charges the latency
sequentially, exactly like the classic blocking API; ``PiqlDatabase.execute``
and ``PreparedQuery.execute`` are thin shims over a default session, so the
synchronous API keeps its historical behaviour to the float.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from ..errors import ExecutionError
from ..execution.context import ExecutionStrategy, QueryResult
from ..kvstore.simtime import SimClock
from ..optimizer.optimizer import OptimizedQuery
from .query import PreparedQuery, bind_parameters


class CallOutcome:
    """Result of a deferred non-query branch (e.g. a block of writes)."""

    __slots__ = ("value", "latency_seconds", "operations")

    def __init__(self, value: Any, latency_seconds: float, operations: int):
        self.value = value
        self.latency_seconds = latency_seconds
        self.operations = operations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallOutcome(latency={self.latency_seconds:.6f}s, "
            f"operations={self.operations})"
        )


class QueryFuture:
    """A handle on one submitted-but-not-necessarily-executed query.

    Futures are created by :meth:`Session.submit` / :meth:`Session.call` and
    resolved either by :meth:`Session.gather` (concurrently with their
    siblings) or by :meth:`result` (inline, sequentially).  A future that
    failed stores its exception and re-raises it from :meth:`result`.
    """

    _PENDING = "pending"
    _DONE = "done"
    _FAILED = "failed"

    def __init__(self, session: "Session", label: str, thunk: Callable[[], Any]):
        self.session = session
        self.label = label
        self._thunk = thunk
        self._state = self._PENDING
        self._value: Any = None
        self._error: Optional[BaseException] = None
        #: Simulated seconds this branch took, measured on the clock it ran
        #: under (a scratch branch clock inside a gather, the session clock
        #: otherwise).  Set when the future resolves.
        self.latency_seconds: float = 0.0
        #: Key/value operations the branch issued.  Set when it resolves.
        self.operations: int = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def done(self) -> bool:
        """Whether the future has been resolved (successfully or not)."""
        return self._state is not self._PENDING

    def exception(self) -> Optional[BaseException]:
        """The stored failure, or ``None``."""
        return self._error

    def result(self) -> Any:
        """The branch's result, executing it inline now if still pending.

        Inline execution charges the session clock sequentially — this is
        the blocking path.  Use :meth:`Session.gather` to overlap several
        pending futures instead.
        """
        if self._state is self._PENDING:
            self.session._resolve_inline(self)
        if self._state is self._FAILED:
            raise self._error  # type: ignore[misc]
        return self._value

    # ------------------------------------------------------------------
    # Internal resolution (called by the session)
    # ------------------------------------------------------------------
    def _run(self) -> None:
        if self._state is not self._PENDING:
            raise ExecutionError(f"future {self.label!r} was already resolved")
        try:
            self._value = self._thunk()
        except BaseException as error:  # noqa: BLE001 - stored, re-raised later
            self._state = self._FAILED
            self._error = error
        else:
            self._state = self._DONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryFuture({self.label!r}, {self._state})"


class ResultCursor:
    """A streaming view of one query's results.

    The first page is produced when the query executes (inside a gather or
    inline); further pages of a ``PAGINATE`` query are fetched lazily as the
    cursor is iterated, each fetch charged sequentially to the session clock
    at the moment it happens.  Non-paginated queries have exactly one page.

    Accounting properties (``latency_seconds``, ``operations``, ``rpcs``)
    aggregate over the pages fetched *so far*; ``to_query_result()`` returns
    the first page as a classic :class:`QueryResult` for the synchronous
    shims.
    """

    #: Safety valve: how many pages a draining iteration may fetch.
    MAX_PAGES = 1000

    def __init__(
        self,
        session: "Session",
        optimized: OptimizedQuery,
        parameters: Dict[str, Any],
        strategy: Optional[ExecutionStrategy],
        first_page: QueryResult,
    ):
        self._session = session
        self._optimized = optimized
        self._parameters = parameters
        self._strategy = strategy
        self._pages: List[QueryResult] = [first_page]

    # ------------------------------------------------------------------
    # Introspection / compatibility
    # ------------------------------------------------------------------
    @property
    def rows(self) -> List[Dict[str, Any]]:
        """The first page's rows (the classic ``QueryResult.rows``)."""
        return self._pages[0].rows

    @property
    def latency_seconds(self) -> float:
        """Total simulated latency of the pages fetched so far."""
        return sum(page.latency_seconds for page in self._pages)

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1000.0

    @property
    def operations(self) -> int:
        """Total key/value operations of the pages fetched so far."""
        return sum(page.operations for page in self._pages)

    @property
    def rpcs(self) -> int:
        return sum(page.rpcs for page in self._pages)

    @property
    def pages_fetched(self) -> int:
        return len(self._pages)

    @property
    def has_more(self) -> bool:
        """Whether the store may hold further pages beyond those fetched."""
        return self._pages[-1].has_more

    @property
    def cursor(self) -> Optional[str]:
        """Serialisable resumption token after the last fetched page."""
        return self._pages[-1].cursor

    def to_query_result(self) -> QueryResult:
        """The first page as a classic eager :class:`QueryResult`."""
        return self._pages[0]

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def _fetch_next_page(self) -> Optional[QueryResult]:
        last = self._pages[-1]
        if not last.has_more:
            return None
        if len(self._pages) >= self.MAX_PAGES:
            raise ExecutionError(
                f"pagination did not terminate within {self.MAX_PAGES} pages"
            )
        page = self._session._execute_page(
            self._optimized,
            self._parameters,
            cursor=last.cursor,
            strategy=self._strategy,
        )
        self._pages.append(page)
        return page

    def pages(self) -> Iterator[QueryResult]:
        """Iterate pages: already-fetched ones first, then lazily from the store."""
        index = 0
        while True:
            while index < len(self._pages):
                yield self._pages[index]
                index += 1
            if self._fetch_next_page() is None:
                return

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        """Iterate rows lazily across pages (fetching pages on demand)."""
        for page in self.pages():
            for row in page.rows:
                yield row

    def fetch_all(self) -> List[Dict[str, Any]]:
        """Materialise every row of every page (drains the stream)."""
        return list(self)

    def __len__(self) -> int:
        """Rows fetched so far (does not trigger fetches)."""
        return sum(len(page.rows) for page in self._pages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCursor(pages={len(self._pages)}, rows_so_far={len(self)}, "
            f"has_more={self.has_more})"
        )


#: What :meth:`Session.submit` accepts as a query.
Submittable = Union[str, PreparedQuery, OptimizedQuery]


class Session:
    """One asynchronous conversation with a :class:`PiqlDatabase` view.

    Sessions are cheap: they hold no state of their own beyond a reference
    to the database view whose clock and storage client they charge, so a
    database (or an emulated application server) can create as many as it
    likes.  All sessions of one view share that view's timeline.
    """

    def __init__(self, db: Any):
        self.db = db

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def clock(self) -> SimClock:
        """The simulated clock this session charges (the view's clock)."""
        return self.db.client.clock

    @property
    def now(self) -> float:
        return self.clock.now

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _resolve_optimized(self, query: Submittable) -> OptimizedQuery:
        if isinstance(query, str):
            return self.db.prepare(query).optimized
        if isinstance(query, PreparedQuery):
            return query.optimized
        if isinstance(query, OptimizedQuery):
            return query
        raise ExecutionError(
            f"cannot submit {type(query).__name__}: expected SQL text, a "
            f"PreparedQuery, or an OptimizedQuery"
        )

    def submit(
        self,
        query: Submittable,
        parameters: Optional[Dict[str, Any]] = None,
        *,
        cursor: Optional[object] = None,
        strategy: Optional[ExecutionStrategy] = None,
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> QueryFuture:
        """Queue one query for execution; returns immediately.

        Nothing is charged to the session clock until the future resolves —
        concurrently via :meth:`gather`, or inline via ``future.result()``.
        Parameters may be a dict, keyword arguments, or both (keywords win).
        """
        optimized = self._resolve_optimized(query)
        bound = bind_parameters(parameters, kwargs)
        name = label or (optimized.sql.split(None, 1)[0] if optimized.sql else "query")

        def thunk() -> ResultCursor:
            first_page = self._execute_page(
                optimized, bound, cursor=cursor, strategy=strategy
            )
            return ResultCursor(self, optimized, bound, strategy, first_page)

        return QueryFuture(self, name, thunk)

    def call(
        self,
        fn: Callable[[Any], Any],
        *,
        label: str = "call",
    ) -> QueryFuture:
        """Queue an arbitrary piece of database work as a branch.

        ``fn`` receives the session's database view and may issue any reads
        or writes (``db.insert``, ``db.delete``, prepared queries, ...); the
        branch's latency and operation count are measured from the view's
        clock and client statistics.  This is how write-bearing interaction
        steps ride the same gather machinery as queries.
        """

        def thunk() -> CallOutcome:
            client = self.db.client
            operations_before = client.stats.operations
            started = client.clock.now
            value = fn(self.db)
            return CallOutcome(
                value,
                client.clock.now - started,
                client.stats.operations - operations_before,
            )

        return QueryFuture(self, label, thunk)

    def execute(
        self,
        query: Submittable,
        parameters: Optional[Dict[str, Any]] = None,
        *,
        cursor: Optional[object] = None,
        strategy: Optional[ExecutionStrategy] = None,
        **kwargs: Any,
    ) -> ResultCursor:
        """Submit and resolve one query inline (the blocking path)."""
        future = self.submit(
            query, parameters, cursor=cursor, strategy=strategy, **kwargs
        )
        return future.result()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _execute_page(
        self,
        optimized: OptimizedQuery,
        parameters: Dict[str, Any],
        cursor: Optional[object],
        strategy: Optional[ExecutionStrategy],
    ) -> QueryResult:
        # Single funnel for every query path (sync shims, pipelined
        # submits, cursor page fetches): the view's resilience policy —
        # retries, per-query deadlines, hedging — applies here or not at
        # all, so the sync and async APIs can never diverge.
        policy = getattr(self.db, "resilience", None)
        if policy is not None:
            return policy.execute_page(optimized, parameters, cursor, strategy)
        return self.db.executor.execute(
            optimized, parameters=parameters, cursor=cursor, strategy=strategy
        )

    def _finish(self, future: QueryFuture, started: float, clock: SimClock) -> None:
        """Record a resolved branch's accounting on its future."""
        future.latency_seconds = clock.now - started
        value = future._value
        if isinstance(value, ResultCursor):
            future.operations = value.to_query_result().operations
        elif isinstance(value, CallOutcome):
            future.operations = value.operations

    def _resolve_inline(self, future: QueryFuture) -> None:
        """Run one pending future now, charging the session clock directly."""
        if future.session is not self:
            raise ExecutionError("future belongs to a different session")
        clock = self.clock
        started = clock.now
        future._run()
        self._finish(future, started, clock)

    def gather(self, *futures: QueryFuture) -> List[Any]:
        """Resolve futures concurrently; charge the max branch latency.

        Every pending future starts from the same simulated instant: each
        branch executes on a scratch clock seeded at the current session
        time, and once all branches have run the session clock advances by
        the *maximum* branch latency — independent queries overlap instead
        of queueing behind one another.  Duplicate point reads issued by
        different branches are coalesced by the storage client for the
        duration of the gather (see
        :meth:`~repro.kvstore.client.StorageClient.begin_gather_window`).

        Returns the branches' results in argument order.  If any branch
        failed, the remaining branches still run (and the clock still
        advances by the longest branch) before the first failure is
        re-raised; the individual exceptions stay available via
        :meth:`QueryFuture.exception`.
        """
        for future in futures:
            if future.session is not self:
                raise ExecutionError("gather: future belongs to a different session")
        client = self.db.client
        if client.gather_window_active:
            raise ExecutionError(
                "gather may not be nested: a gather window is already open "
                "on this session's storage client"
            )
        # De-duplicate: the same future passed twice must only run once.
        pending = [
            future for future in dict.fromkeys(futures) if not future.done()
        ]
        if pending:
            clock = self.clock
            started = clock.now
            longest = 0.0
            tracer = client.tracer
            gather_span = None
            if tracer is not None:
                # One span for the whole gather; each branch becomes a
                # sibling child span.  The tracer reads time through the
                # client's clock, so branch spans time themselves on their
                # scratch clocks automatically.
                gather_span = tracer.start_span(
                    "gather", "gather", branches=len(pending)
                )
            try:
                client.begin_gather_window()
                try:
                    for future in pending:
                        branch_clock = SimClock(now=started)
                        client.clock = branch_clock
                        branch_span = None
                        if tracer is not None:
                            branch_span = tracer.start_span(
                                "branch", "branch", label=future.label
                            )
                        try:
                            future._run()
                        finally:
                            if branch_span is not None:
                                tracer.end_span(branch_span)
                            client.clock = clock
                        self._finish(future, started, branch_clock)
                        longest = max(longest, branch_clock.now - started)
                finally:
                    client.end_gather_window()
                clock.advance(longest)
            finally:
                if gather_span is not None:
                    tracer.end_span(gather_span)
        first_error = next(
            (f.exception() for f in futures if f.exception() is not None), None
        )
        if first_error is not None:
            raise first_error
        return [future.result() for future in futures]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session(db={self.db!r}, now={self.now:.6f})"
