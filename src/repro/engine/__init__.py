"""Engine facade: the ``PiqlDatabase`` entry point, prepared queries, and
asynchronous sessions (futures, streaming cursors, query pipelining)."""

from .database import PiqlDatabase
from .query import PreparedQuery, bind_parameters
from .session import CallOutcome, QueryFuture, ResultCursor, Session

__all__ = [
    "CallOutcome",
    "PiqlDatabase",
    "PreparedQuery",
    "QueryFuture",
    "ResultCursor",
    "Session",
    "bind_parameters",
]
