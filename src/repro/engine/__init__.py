"""Engine facade: the ``PiqlDatabase`` entry point and prepared queries."""

from .database import PiqlDatabase
from .query import PreparedQuery

__all__ = ["PiqlDatabase", "PreparedQuery"]
