"""``PiqlDatabase`` — the top-level facade of the reproduction.

A ``PiqlDatabase`` ties together every component of Figure 2: the simulated
key/value store cluster, the client-side record manager and indexes, the
scale-independent optimizer, the execution engine, and the Performance
Insight Assistant.  A typical session::

    from repro import PiqlDatabase, ClusterConfig

    db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=10))
    db.execute_ddl(SCADR_DDL)
    db.insert("users", {"username": "bob", ...})

    q = db.prepare(
        "SELECT thoughts.* FROM subscriptions s JOIN thoughts t "
        "WHERE t.owner = s.target AND s.owner = <uname> "
        "AND s.approved = true ORDER BY t.timestamp DESC LIMIT 10"
    )
    print(q.operation_bound)          # static bound on k/v operations
    page = q.execute(uname="bob")     # rows + simulated latency
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import PiqlError, SchemaError, UnavailableError
from ..execution.context import ExecutionStrategy, QueryResult
from ..execution.executor import QueryExecutor
from ..kvstore.client import StorageClient
from ..kvstore.cluster import ClusterConfig, KeyValueCluster
from ..kvstore.simtime import SimClock
from ..obs.audit import BoundAuditor
from ..obs.trace import Tracer
from ..optimizer.assistant import PerformanceInsightAssistant, QueryDiagnosis
from ..optimizer.optimizer import PiqlOptimizer
from ..schema.catalog import Catalog
from ..schema.ddl import IndexColumn, IndexDefinition, Table
from ..sql import ast
from ..sql.parser import parse
from ..resilience.policy import ResilienceConfig, ResiliencePolicy
from ..storage.record_manager import RecordManager
from ..storage.rows import index_entries, index_namespace, record_key, serialize_row
from ..views.definition import MaterializedView, analyze_view
from ..views.maintenance import ViewMaintenanceEngine
from .query import PreparedQuery
from .session import Session


class PiqlDatabase:
    """A PIQL database engine instance backed by a simulated key/value store."""

    #: How many times a query that failed with a typed
    #: :class:`~repro.errors.UnavailableError` (a replica quorum could not
    #: be met, or an RPC timed out) is retried.  With a resilience policy
    #: attached (the default) the retries are paced — exponential backoff
    #: with full jitter under a token-bucket budget, applied at the query
    #: funnel every execution path traverses; with ``resilience=False``
    #: the legacy immediate-retry loop in :meth:`execute` applies instead
    #: (retry-storm amplification: extra attempts re-charge the surviving
    #: replicas with no pacing).  Set to 0 to disable retries entirely.
    unavailable_retries: int = 2

    def __init__(
        self,
        cluster: Optional[KeyValueCluster] = None,
        strategy: ExecutionStrategy = ExecutionStrategy.PARALLEL,
        fused: bool = True,
        resilience: Union[None, bool, ResilienceConfig] = None,
    ):
        self.cluster = cluster or KeyValueCluster(ClusterConfig())
        self.catalog = Catalog()
        self.client = StorageClient(cluster=self.cluster)
        self.views = ViewMaintenanceEngine(self.catalog, self.client)
        self.records = RecordManager(self.catalog, self.client, views=self.views)
        self.optimizer = PiqlOptimizer(self.catalog)
        self.auditor = BoundAuditor()
        self.executor = QueryExecutor(
            self.client,
            self.catalog,
            strategy=strategy,
            fused=fused,
            auditor=self.auditor,
        )
        self.assistant = PerformanceInsightAssistant(self.catalog)
        self.telemetry = None
        self._prepared_cache: Dict[str, Tuple[int, PreparedQuery]] = {}
        self._default_session: Optional[Session] = None
        #: The view's resilience policy, or ``None`` for the legacy
        #: immediate-retry behaviour.  ``resilience=None``/``True`` attach
        #: the conservative default policy (backoff-paced retries only —
        #: healthy-path behaviour is byte-identical); pass a
        #: :class:`~repro.resilience.policy.ResilienceConfig` to opt into
        #: derived timeouts, hedging, and circuit breakers; ``False``
        #: disables the policy.
        self.resilience: Optional[ResiliencePolicy] = self._build_resilience(
            resilience
        )

    def _build_resilience(
        self, resilience: Union[None, bool, ResilienceConfig]
    ) -> Optional[ResiliencePolicy]:
        if resilience is False:
            return None
        if resilience is None or resilience is True:
            policy = ResiliencePolicy(self)
        else:
            policy = ResiliencePolicy(self, resilience)
        if policy.board is not None:
            self.client.breakers = policy.board
        return policy

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def simulated(
        cls,
        config: Optional[ClusterConfig] = None,
        strategy: ExecutionStrategy = ExecutionStrategy.PARALLEL,
        fused: bool = True,
        resilience: Union[None, bool, "ResilienceConfig"] = None,
    ) -> "PiqlDatabase":
        """Create a database on a fresh simulated cluster.

        ``fused=False`` turns off batch-at-a-time round fusion (the paired
        baseline of the operator-fusion benchmark); results and operation
        counts are identical either way.  ``resilience`` configures the
        client resilience policy (see :class:`PiqlDatabase`).
        """
        return cls(
            cluster=KeyValueCluster(config or ClusterConfig()),
            strategy=strategy,
            fused=fused,
            resilience=resilience,
        )

    def new_client(
        self,
        strategy: Optional[ExecutionStrategy] = None,
        clock: Optional[SimClock] = None,
    ) -> "PiqlDatabase":
        """A second application-server view onto the *same* cluster and schema.

        The new instance shares the cluster and catalog (so data and indexes
        are visible) but has its own simulated clock and statistics — this
        is how the benchmark harness models many stateless application
        servers issuing queries concurrently (Figure 2).  The serving tier's
        discrete-event kernel passes its own ``clock`` so it can interleave
        this client's timeline with every other client's.
        """
        clone = PiqlDatabase.__new__(PiqlDatabase)
        clone.cluster = self.cluster
        clone.catalog = self.catalog
        clone.client = StorageClient(cluster=self.cluster, clock=clock or SimClock())
        clone.views = ViewMaintenanceEngine(self.catalog, clone.client)
        clone.records = RecordManager(self.catalog, clone.client, views=clone.views)
        clone.optimizer = PiqlOptimizer(self.catalog)
        # All views of one logical database share the auditor, so bound
        # violations are counted (and policed) globally across app servers.
        clone.auditor = self.auditor
        clone.executor = QueryExecutor(
            clone.client,
            self.catalog,
            strategy=strategy or self.executor.config.strategy,
            fused=self.executor.config.fused,
            auditor=self.auditor,
        )
        clone.assistant = PerformanceInsightAssistant(self.catalog)
        # Telemetry watches the shared cluster, so every view reports the
        # same bundle (mirrors the shared auditor above).
        clone.telemetry = self.telemetry
        if self.client.tracer is not None:
            clone.client.enable_tracing()
        clone._prepared_cache = {}
        clone._default_session = None
        clone.unavailable_retries = self.unavailable_retries
        # Each view gets its own policy instance (per-client budget,
        # breakers, and jitter stream) sharing the parent's configuration.
        clone.resilience = (
            clone._build_resilience(self.resilience.config)
            if self.resilience is not None
            else None
        )
        return clone

    def session(self) -> Session:
        """Open an asynchronous session on this view's clock.

        The session's :meth:`~repro.engine.session.Session.submit` /
        :meth:`~repro.engine.session.Session.gather` let independent queries
        of one interaction overlap in simulated time; see
        :mod:`repro.engine.session`.  Sessions are stateless handles — all
        sessions of one view share its clock and statistics.
        """
        return Session(self)

    @property
    def default_session(self) -> Session:
        """The session backing the synchronous ``execute`` shims."""
        if self._default_session is None:
            self._default_session = Session(self)
        return self._default_session

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def execute_ddl(self, ddl: Union[str, Sequence[str]]) -> List[str]:
        """Execute one or more DDL statements (separated by ``;`` if a string).

        Returns the names of the tables and indexes created.
        """
        statements: List[str]
        if isinstance(ddl, str):
            statements = [s.strip() for s in ddl.split(";") if s.strip()]
        else:
            statements = [s for s in ddl if s.strip()]
        created: List[str] = []
        for text in statements:
            statement = parse(text)
            if isinstance(statement, ast.CreateTableStatement):
                self.create_table(statement.table)
                created.append(statement.table.name)
            elif isinstance(statement, ast.CreateIndexStatement):
                index = IndexDefinition(
                    name=statement.name,
                    table=statement.table,
                    columns=tuple(
                        IndexColumn(name, tokenized) for name, tokenized in statement.columns
                    ),
                    unique=statement.unique,
                )
                self.create_index(index)
                created.append(statement.name)
            elif isinstance(statement, ast.CreateMaterializedViewStatement):
                self.create_materialized_view(statement)
                created.append(statement.name)
            elif isinstance(statement, ast.InsertStatement):
                self.insert(statement.table, dict(zip(statement.columns, statement.values)))
            else:
                raise SchemaError(
                    f"execute_ddl only handles CREATE TABLE / CREATE INDEX / "
                    f"CREATE MATERIALIZED VIEW / INSERT, "
                    f"got {type(statement).__name__}"
                )
        return created

    def create_table(self, table: Table) -> Table:
        """Register a table, provision its storage, and its constraint indexes."""
        self.catalog.add_table(table)
        self.records.create_table_storage(table)
        # Cardinality constraints whose columns are not a primary-key prefix
        # need an index so the insert protocol can count matching rows.
        for limit in table.cardinality_limits:
            index = self.records.constraint_index(table, limit)
            if index is not None and not self.catalog.has_index(index.name):
                self.create_index(index)
        return table

    def create_index(
        self, index: IndexDefinition, auto_created: bool = False
    ) -> IndexDefinition:
        """Register a secondary index and backfill it from existing records.

        ``auto_created=True`` marks the index as invented by the optimizer's
        index selection (Section 5.3) rather than declared by the schema;
        the catalog remembers the distinction so re-compiling a query keeps
        reporting the index under ``required_indexes`` even once it exists
        (Table 1's "additional indexes" column).
        """
        registered = self.catalog.add_index(index, auto_created=auto_created)
        self.records.create_index_storage(registered)
        self._backfill_index(registered)
        return registered

    def create_materialized_view(
        self, statement: Union[str, ast.CreateMaterializedViewStatement]
    ) -> MaterializedView:
        """Register a materialized view and backfill it from existing data.

        Provisions the view's backing table (one row per group) and, for
        top-k views, its bounded ordered view index; existing driving-table
        rows are folded in through the latency-free load path.  From then on
        every insert/update/delete of the driving table maintains the view
        incrementally at a statically bounded cost, and the optimizer's
        precomputation phase may rewrite matching aggregate queries into
        bounded view scans.
        """
        if isinstance(statement, str):
            parsed = parse(statement)
            if not isinstance(parsed, ast.CreateMaterializedViewStatement):
                raise SchemaError(
                    "create_materialized_view expects CREATE MATERIALIZED VIEW"
                )
            statement = parsed
        view = analyze_view(statement, self.catalog)
        self.catalog.add_table(view.backing_table)
        self.records.create_table_storage(view.backing_table)
        if view.order_index is not None:
            self.catalog.add_index(view.order_index)
            self.records.create_index_storage(view.order_index)
        self.catalog.add_view(view)
        self.views.backfill(view)
        return view

    def materialized_views(self) -> List[MaterializedView]:
        """All registered materialized views."""
        return list(self.catalog.views())

    def _backfill_index(self, index: IndexDefinition) -> None:
        table = self.catalog.table(index.table)
        namespace = index_namespace(index)
        for _, payload in self.cluster.iter_namespace(table.namespace):
            row = self._deserialize(payload)
            for entry_key, entry_value in index_entries(index, table, row):
                self.cluster.load(namespace, entry_key, entry_value)

    @staticmethod
    def _deserialize(payload: bytes) -> Dict[str, Any]:
        from ..storage.rows import deserialize_row

        return deserialize_row(payload)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(self, table: str, row: Dict[str, Any], upsert: bool = False) -> Dict[str, Any]:
        """Insert one row (index maintenance + constraint checks included)."""
        return self.records.insert(table, row, upsert=upsert)

    def update(self, table: str, row: Dict[str, Any]) -> Dict[str, Any]:
        """Replace the row with the same primary key."""
        return self.records.update(table, row)

    def delete(self, table: str, pk_values: Sequence[Any]) -> bool:
        """Delete one row by primary key."""
        return self.records.delete(table, pk_values)

    def get(self, table: str, pk_values: Sequence[Any]) -> Optional[Dict[str, Any]]:
        """Point lookup by primary key."""
        return self.records.get(table, pk_values)

    def bulk_load(self, table: str, rows: Iterable[Dict[str, Any]]) -> int:
        """Bulk load rows without charging simulated latency."""
        return self.records.bulk_load(table, rows)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def prepare(self, sql: str) -> PreparedQuery:
        """Compile a PIQL SELECT into a scale-independent prepared query.

        Any secondary indexes the plan requires (Section 5.3) are created
        automatically and backfilled before the query is returned.
        """
        # Cache entries are stamped with the catalog version they were
        # compiled under.  The catalog is shared by every `new_client` view,
        # so DDL issued through *any* view invalidates stale plans here too.
        cached = self._prepared_cache.get(sql)
        if cached is not None and cached[0] == self.catalog.version:
            return cached[1]
        optimized = self.optimizer.optimize(sql)
        for index in optimized.required_indexes:
            if not self.catalog.has_index(index.name):
                self.create_index(index, auto_created=True)
        prepared = PreparedQuery(optimized, self.executor, session=self.default_session)
        self._prepared_cache[sql] = (self.catalog.version, prepared)
        return prepared

    def execute(self, sql: str, parameters: Optional[Dict[str, Any]] = None, **kwargs: Any) -> QueryResult:
        """Compile (with caching) and execute a query in one call.

        Executions that fail because a replica quorum could not be met are
        retried up to ``unavailable_retries`` times (see that attribute for
        what the retries model); a persistent outage surfaces as the typed
        :class:`~repro.errors.UnavailableError` (or its
        :class:`~repro.errors.QuorumNotMetError` subclass) so callers can
        distinguish "the store is degraded" from a query bug.
        """
        prepared = self.prepare(sql)
        if self.resilience is not None:
            # The policy retries at the per-page funnel every execution
            # path traverses (Session._execute_page), with the same
            # attempt count this loop would have used — retrying here too
            # would square it.
            return prepared.execute(parameters, **kwargs)
        attempts = max(0, self.unavailable_retries) + 1
        for attempt in range(attempts):
            try:
                return prepared.execute(parameters, **kwargs)
            except UnavailableError:
                if attempt == attempts - 1:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def diagnose(self, sql: str) -> QueryDiagnosis:
        """Run the Performance Insight Assistant on a query."""
        return self.assistant.diagnose(sql)

    # ------------------------------------------------------------------
    # Operational helpers
    # ------------------------------------------------------------------
    def set_offered_load(self, total_ops_per_second: float) -> None:
        """Model an aggregate offered load across the cluster (queueing delay)."""
        self.cluster.set_offered_load(total_ops_per_second)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Optional[Tracer]:
        """This view's tracer, or ``None`` while tracing is disabled."""
        return self.client.tracer

    def enable_tracing(self, keep: int = 64) -> Tracer:
        """Turn on span collection for this view's executions."""
        return self.client.enable_tracing(keep=keep)

    def disable_tracing(self) -> None:
        """Stop collecting spans and drop the tracer."""
        self.client.disable_tracing()

    def enable_telemetry(
        self,
        interval_seconds: float = 0.5,
        now_fn: Optional[Any] = None,
    ) -> "Any":
        """Attach a standalone fleet-telemetry bundle to this database.

        Builds a :class:`~repro.obs.telemetry.FleetTelemetry` (time-series
        store + collector over this view's cluster) that the caller scrapes
        manually via ``db.telemetry.collector.scrape(now)`` — serving runs
        instead use ``ServingConfig.telemetry_enabled``, which schedules the
        scrape loop on the event kernel and adds burn-rate alerting.  The
        bundle is shared by every ``new_client`` view (it watches the shared
        cluster), and a drift detector is included when the auditor carries
        a latency model.
        """
        from ..obs.drift import PredictionDriftDetector
        from ..obs.telemetry import FleetTelemetry, TelemetryCollector
        from ..obs.timeseries import TimeSeriesStore

        if self.telemetry is not None:
            return self.telemetry
        store = TimeSeriesStore(resolution_seconds=interval_seconds)
        collector = TelemetryCollector(store, cluster=self.cluster)
        drift = None
        if self.auditor.latency_model is not None:
            drift = PredictionDriftDetector(self.auditor.latency_model)
            self.auditor.drift = drift
        self.telemetry = FleetTelemetry(store, collector, drift=drift)
        return self.telemetry

    def dashboard(self, width: int = 72) -> str:
        """Render the fleet dashboard (requires :meth:`enable_telemetry`)."""
        if self.telemetry is None:
            raise PiqlError(
                "telemetry is not enabled; call db.enable_telemetry() first"
            )
        return self.telemetry.dashboard(width=width)

    def explain_analyze(
        self,
        sql: str,
        parameters: Optional[Dict[str, Any]] = None,
        latency_model: Optional[Any] = None,
    ) -> str:
        """Execute ``sql`` once and render its plan with live measurements."""
        from ..obs.explain import explain_analyze

        return explain_analyze(self, sql, parameters, latency_model)

    def reset_measurements(self) -> None:
        """Reset per-client and per-node statistics (not the data)."""
        self.client.stats = type(self.client.stats)()
        self.client.clock.reset()
        self.cluster.reset_stats()
        self.auditor.reset()
        if self.client.tracer is not None:
            self.client.tracer.clear()

    def storage_summary(self) -> Dict[str, int]:
        """Number of keys per namespace (diagnostics)."""
        return {
            namespace: self.cluster.namespace_size(namespace)
            for namespace in self.cluster.namespaces()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PiqlDatabase(nodes={self.cluster.config.storage_nodes}, "
            f"tables={[t.name for t in self.catalog.tables()]})"
        )
