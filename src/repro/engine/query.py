"""Prepared queries: the user-facing handle on a compiled PIQL query."""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..execution.context import ExecutionStrategy, QueryResult
from ..execution.executor import QueryExecutor
from ..optimizer.optimizer import OptimizedQuery
from ..plans.bounds import PlanBound


class PreparedQuery:
    """A compiled, scale-independent query bound to a database instance.

    Instances are created by :meth:`repro.engine.database.PiqlDatabase.prepare`
    and can be executed many times with different parameter bindings; for
    ``PAGINATE`` queries each execution returns one page plus a serialisable
    cursor for the next.
    """

    def __init__(self, optimized: OptimizedQuery, executor: QueryExecutor):
        self._optimized = optimized
        self._executor = executor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sql(self) -> str:
        return self._optimized.sql

    @property
    def optimized(self) -> OptimizedQuery:
        return self._optimized

    @property
    def physical_plan(self):
        return self._optimized.physical_plan

    @property
    def logical_plan(self):
        return self._optimized.logical_plan

    @property
    def bound(self) -> PlanBound:
        return self._optimized.bound

    @property
    def operation_bound(self) -> int:
        """Maximum number of key/value store operations per execution."""
        return self._optimized.operation_bound

    @property
    def is_paginated(self) -> bool:
        return self._optimized.is_paginated

    def describe(self) -> str:
        """Logical plan, physical plan, bounds, and required indexes."""
        return self._optimized.describe()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        parameters: Optional[Dict[str, Any]] = None,
        cursor: Optional[object] = None,
        strategy: Optional[ExecutionStrategy] = None,
        **kwargs: Any,
    ) -> QueryResult:
        """Execute the query.

        Parameters may be passed as a dictionary or as keyword arguments
        (``q.execute(uname="bob")``); keyword arguments win on conflict.
        """
        bound_parameters = dict(parameters or {})
        bound_parameters.update(kwargs)
        return self._executor.execute(
            self._optimized,
            parameters=bound_parameters,
            cursor=cursor,
            strategy=strategy,
        )

    def pages(
        self,
        parameters: Optional[Dict[str, Any]] = None,
        max_pages: int = 1000,
        strategy: Optional[ExecutionStrategy] = None,
        **kwargs: Any,
    ):
        """Iterate all pages of a PAGINATE query."""
        bound_parameters = dict(parameters or {})
        bound_parameters.update(kwargs)
        return self._executor.execute_all_pages(
            self._optimized,
            parameters=bound_parameters,
            max_pages=max_pages,
            strategy=strategy,
        )
