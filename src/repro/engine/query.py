"""Prepared queries: the user-facing handle on a compiled PIQL query."""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..execution.context import ExecutionStrategy, QueryResult
from ..execution.executor import QueryExecutor
from ..optimizer.optimizer import OptimizedQuery
from ..plans.bounds import PlanBound


def bind_parameters(
    parameters: Optional[Dict[str, Any]], kwargs: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Merge dict-style and keyword-style parameter bindings.

    The one binding rule of the client API, shared by the synchronous
    ``PreparedQuery`` entry points and the asynchronous session path:
    parameters may be passed as a dictionary, as keyword arguments, or both —
    keyword arguments win on conflict.
    """
    bound = dict(parameters or {})
    if kwargs:
        bound.update(kwargs)
    return bound


class PreparedQuery:
    """A compiled, scale-independent query bound to a database instance.

    Instances are created by :meth:`repro.engine.database.PiqlDatabase.prepare`
    and can be executed many times with different parameter bindings; for
    ``PAGINATE`` queries each execution returns one page plus a serialisable
    cursor for the next.

    The blocking entry points below are thin shims over the database's
    default :class:`~repro.engine.session.Session`; use
    :meth:`repro.engine.database.PiqlDatabase.session` to overlap several
    queries' latencies instead of paying them in sequence.
    """

    def __init__(
        self,
        optimized: OptimizedQuery,
        executor: QueryExecutor,
        session: Optional[object] = None,
    ):
        self._optimized = optimized
        self._executor = executor
        self._session = session

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sql(self) -> str:
        return self._optimized.sql

    @property
    def optimized(self) -> OptimizedQuery:
        return self._optimized

    @property
    def physical_plan(self):
        return self._optimized.physical_plan

    @property
    def logical_plan(self):
        return self._optimized.logical_plan

    @property
    def bound(self) -> PlanBound:
        return self._optimized.bound

    @property
    def operation_bound(self) -> int:
        """Maximum number of key/value store operations per execution."""
        return self._optimized.operation_bound

    @property
    def is_paginated(self) -> bool:
        return self._optimized.is_paginated

    def describe(self) -> str:
        """Logical plan, physical plan, bounds, and required indexes."""
        return self._optimized.describe()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        parameters: Optional[Dict[str, Any]] = None,
        cursor: Optional[object] = None,
        strategy: Optional[ExecutionStrategy] = None,
        **kwargs: Any,
    ) -> QueryResult:
        """Execute the query, blocking until its (simulated) completion.

        Parameters may be passed as a dictionary or as keyword arguments
        (``q.execute(uname="bob")``); keyword arguments win on conflict.
        """
        if self._session is not None:
            return self._session.execute(
                self, parameters, cursor=cursor, strategy=strategy, **kwargs
            ).to_query_result()
        return self._executor.execute(
            self._optimized,
            parameters=bind_parameters(parameters, kwargs),
            cursor=cursor,
            strategy=strategy,
        )

    def pages(
        self,
        parameters: Optional[Dict[str, Any]] = None,
        max_pages: int = 1000,
        strategy: Optional[ExecutionStrategy] = None,
        **kwargs: Any,
    ):
        """Iterate all pages of a PAGINATE query."""
        return self._executor.execute_all_pages(
            self._optimized,
            parameters=bind_parameters(parameters, kwargs),
            max_pages=max_pages,
            strategy=strategy,
        )
