"""Tiny shared statistics helpers (importable from every layer).

The nearest-rank percentile appears throughout the reproduction — client
stats, the benchmark reporting, the serving tier's SLO monitor — and its
edge-case behaviour (empty samples, fraction domain) must be identical
everywhere, so there is exactly one implementation.
"""

from __future__ import annotations

from typing import Sequence


def nearest_rank_percentile(values: Sequence[float], fraction: float) -> float:
    """Empirical nearest-rank percentile of a sample.

    ``fraction`` is in ``(0, 1]``; e.g. ``0.99`` returns the value at or
    above 99% of the sample.
    """
    if not values:
        raise ValueError("cannot take the percentile of an empty sample")
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(values)
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]
