"""Admission control: shed or queue work when SLO compliance is at risk.

The PIQL philosophy is *success-tolerant* scaling: it is better to refuse a
little work than to let every request's latency blow past the SLO.  The
controller here is a small proportional controller driven by the
:class:`~repro.serving.monitor.SLOMonitor`'s live quantile:

* every control tick, :meth:`update` compares the observed SLO quantile to
  the objective.  While the quantile is above the objective the shed
  probability ramps up (proportionally to how far above); once it falls
  below a recovery threshold the probability decays back to zero
  (hysteresis, so the controller does not chatter);
* every arriving request calls :meth:`decide`, which returns ``ADMIT``,
  ``QUEUE`` (admit, but the request will wait behind a backlog) or ``SHED``.
  Requests are shed probabilistically at the current shed probability, and
  unconditionally when the dispatch backlog exceeds ``queue_limit_seconds``
  — an overloaded system must not build an unbounded queue.

An offline :class:`~repro.prediction.slo.SLOPrediction` can warm-start the
controller: if the forecast already says the SLO will be violated in some
fraction of intervals, the controller begins with a matching non-zero shed
probability instead of waiting to observe the violation.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Optional

from ..prediction.slo import SLOPrediction
from .monitor import SLOMonitor


class AdmissionDecision(enum.Enum):
    ADMIT = "admit"
    QUEUE = "queue"
    SHED = "shed"


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning knobs of the proportional shedding controller."""

    #: Per-tick increase of shed probability per unit of relative overshoot
    #: (observed quantile / SLO latency − 1).
    gain: float = 0.25
    #: Per-tick decrease once the quantile is back under ``recover_fraction``
    #: of the SLO latency.
    decay: float = 0.10
    #: Shed probability never exceeds this (some traffic always gets through).
    max_shed_probability: float = 0.95
    #: Quantile must fall below ``recover_fraction * slo.latency`` to decay.
    recover_fraction: float = 0.8
    #: Dispatch backlog (seconds of queued work) beyond which requests are
    #: shed outright instead of queued.
    queue_limit_seconds: float = 2.0
    #: How strongly fleet-wide circuit-breaker pressure pre-arms shedding:
    #: the shed probability floor becomes ``gain * open_fraction`` where
    #: ``open_fraction`` is the fraction of (client, node) breaker pairs
    #: currently open.  Zero (the default) ignores breakers entirely.
    breaker_pressure_gain: float = 0.0
    seed: int = 17


@dataclass
class AdmissionCounters:
    admitted: int = 0
    queued: int = 0
    shed: int = 0

    @property
    def offered(self) -> int:
        return self.admitted + self.queued + self.shed

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0


class AdmissionController:
    """Probabilistic load shedding driven by observed (and predicted) SLOs."""

    def __init__(
        self,
        monitor: SLOMonitor,
        config: Optional[AdmissionConfig] = None,
        prediction: Optional[SLOPrediction] = None,
    ):
        self.monitor = monitor
        self.config = config or AdmissionConfig()
        self.counters = AdmissionCounters()
        self.shed_probability = 0.0
        self._rng = random.Random(self.config.seed)
        if prediction is not None:
            # Warm start: an offline forecast of violation risk becomes the
            # initial shed probability, clamped to the configured maximum.
            risk = prediction.violation_risk(self.monitor.slo)
            self.shed_probability = min(risk, self.config.max_shed_probability)

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def update(self, now: float) -> float:
        """One control tick; returns the new shed probability."""
        slo = self.monitor.slo
        config = self.config
        if self.monitor.total_observations < self.monitor.min_samples:
            # Cold start: nothing observed yet, so a prediction-seeded shed
            # probability must hold rather than decay away before the
            # forecast violation can even be measured.
            return self.shed_probability
        if self.monitor.recent_count(now) >= self.monitor.min_samples:
            observed = self.monitor.percentile(slo.quantile, now)
            ratio = observed / slo.latency_seconds
            if ratio > 1.0:
                self.shed_probability = min(
                    config.max_shed_probability,
                    self.shed_probability + config.gain * (ratio - 1.0),
                )
                return self.shed_probability
            if ratio > config.recover_fraction:
                # In the hysteresis band: hold steady.
                return self.shed_probability
        self.shed_probability = max(0.0, self.shed_probability - config.decay)
        return self.shed_probability

    def pre_arm(self, probability: float) -> float:
        """Seed a shed probability ahead of a measured violation.

        Called by the burn-rate alerter when the error budget starts
        burning faster than plan: a small probabilistic shed begins *before*
        the monitor's own quantile check trips, trading a sliver of traffic
        for a softer landing.  Never lowers an already-higher probability
        (the proportional controller stays in charge of recovery), and is
        clamped to the configured maximum.
        """
        self.shed_probability = min(
            self.config.max_shed_probability,
            max(self.shed_probability, probability),
        )
        return self.shed_probability

    def note_breaker_pressure(self, open_fraction: float) -> float:
        """Pre-arm shedding from fleet-wide circuit-breaker state.

        ``open_fraction`` is the fraction of (client, node) breaker pairs
        currently open — clients collectively refusing to talk to storage
        nodes is an earlier overload/fault signal than the SLO quantile,
        which only moves once slow requests *complete*.  Scaled by
        ``breaker_pressure_gain`` and fed through :meth:`pre_arm`, so the
        proportional controller still owns recovery.
        """
        gain = self.config.breaker_pressure_gain
        if gain <= 0.0 or open_fraction <= 0.0:
            return self.shed_probability
        return self.pre_arm(min(1.0, open_fraction) * gain)

    # ------------------------------------------------------------------
    # Per-request decisions
    # ------------------------------------------------------------------
    def decide(self, now: float, backlog_seconds: float = 0.0) -> AdmissionDecision:
        """Decide the fate of one request arriving at ``now``.

        ``backlog_seconds`` is how long the request would wait before an
        application server even starts it (dispatch queue depth).
        """
        if backlog_seconds > self.config.queue_limit_seconds:
            self.counters.shed += 1
            return AdmissionDecision.SHED
        if self.shed_probability > 0.0 and self._rng.random() < self.shed_probability:
            self.counters.shed += 1
            return AdmissionDecision.SHED
        if backlog_seconds > 0.0:
            self.counters.queued += 1
            return AdmissionDecision.QUEUE
        self.counters.admitted += 1
        return AdmissionDecision.ADMIT
