"""Load generators: fleets of application servers driving the cluster.

Two classic shapes of synthetic traffic, both replaying a
:class:`~repro.workloads.base.Workload` interaction mix (TPC-W's ordering
mix or SCADr's home-page render):

* **closed loop** — a fixed population of emulated application servers;
  each issues an interaction, waits for it to complete, thinks for an
  exponentially distributed pause, and repeats.  Throughput self-limits as
  latency grows (the paper's Section 8.4 harness is closed-loop).
* **open loop** — interactions arrive as a Poisson process at a configured
  rate regardless of how the system is doing, dispatched to the least-busy
  server of a fixed pool.  When the offered rate exceeds capacity the
  dispatch backlog grows and response times diverge — the regime where SLO
  violations, admission control, and autoscaling become visible.

Each emulated server is a ``PiqlDatabase.new_client`` view: shared cluster
and catalog, private clock and statistics.  Drivers run inside the
discrete-event kernel: a server's interaction advances its private clock,
and the driver schedules the server's next step at the simulated time that
clock reached, so all servers' requests interleave in global time order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..engine.database import PiqlDatabase
from ..errors import UnavailableError
from ..kvstore.simtime import SimClock
from ..obs.metrics import MetricsRegistry
from ..stats import nearest_rank_percentile
from ..workloads.base import Workload
from .admission import AdmissionController, AdmissionDecision
from .events import Simulation
from .monitor import SLOMonitor


@dataclass(frozen=True)
class RequestRecord:
    """One completed interaction as the serving tier saw it."""

    client_id: int
    name: str
    arrival_seconds: float
    start_seconds: float
    completion_seconds: float
    service_seconds: float
    #: Key/value operations the interaction issued (0 for legacy records).
    operations: int = 0
    #: Per-step operation counts, ``(label, operations)`` sorted by label —
    #: lets paired serial/pipelined experiments verify the work done per
    #: query is identical, only its latency composition differing.
    query_operations: Tuple[Tuple[str, int], ...] = ()

    @property
    def queue_wait_seconds(self) -> float:
        """Time between arrival and an application server picking it up."""
        return self.start_seconds - self.arrival_seconds

    @property
    def response_seconds(self) -> float:
        """End-to-end response time: dispatch wait + service."""
        return self.completion_seconds - self.arrival_seconds


class TrafficLog:
    """Everything that happened during one serving run.

    The scalar counters live on a :class:`~repro.obs.metrics.MetricsRegistry`
    under ``serving.*`` names; ``shed`` / ``failed`` remain available as
    attributes for existing callers.
    """

    __slots__ = ("records", "failures", "metrics")

    def __init__(self):
        self.records: List[RequestRecord] = []
        #: ``(time, interaction)`` of each failure, for timeline reports.
        self.failures: List[Tuple[float, str]] = []
        self.metrics = MetricsRegistry()

    @property
    def shed(self) -> int:
        """Requests turned away by admission control."""
        return int(self.metrics.value("serving.shed"))

    @shed.setter
    def shed(self, value: int) -> None:
        self.metrics.set_counter("serving.shed", value)

    @property
    def failed(self) -> int:
        """Interactions that errored because a replica quorum could not be
        met (a crashed node took the cluster below the consistency level)."""
        return int(self.metrics.value("serving.failed"))

    @failed.setter
    def failed(self, value: int) -> None:
        self.metrics.set_counter("serving.failed", value)

    @property
    def completed(self) -> int:
        return len(self.records)

    def record(self, record: RequestRecord) -> None:
        """Append a completed interaction, counting it for telemetry."""
        self.records.append(record)
        self.metrics.add("serving.completed")

    @property
    def availability(self) -> float:
        """Fraction of attempted interactions that completed successfully."""
        attempted = self.completed + self.failed
        return self.completed / attempted if attempted else 1.0

    def response_times(self) -> List[float]:
        return [record.response_seconds for record in self.records]

    def response_percentile(self, fraction: float) -> float:
        return nearest_rank_percentile(self.response_times(), fraction)


def _observe_at_completion(
    sim: Simulation, monitor: Optional[SLOMonitor], record: RequestRecord
) -> None:
    """Deliver a response-time observation to the monitor *at completion*.

    Interactions execute atomically inside the event that starts them, so
    their completion lies in that event's future.  Scheduling the
    observation as its own event keeps the monitor's input in global time
    order (and an interaction still in flight when the run's horizon ends is
    correctly never observed).
    """
    if monitor is None:
        return
    sim.schedule_at(
        record.completion_seconds,
        lambda s: monitor.record(s.now, record.response_seconds),
        name="observe",
    )


def _observe_failure_at(
    sim: Simulation, monitor: Optional[SLOMonitor], when: float
) -> None:
    """Deliver a failed-interaction observation at the time it surfaced.

    Scheduled like :func:`_observe_at_completion` so the monitor's input
    stays in global time order; the failure counts against the error
    budget without contributing a response time.
    """
    if monitor is None:
        return
    sim.schedule_at(
        when, lambda s: monitor.record_failure(s.now), name="observe-failure"
    )


class AppServer:
    """One emulated application server (a `new_client` view + its clock).

    With ``pipelined=True`` the server replays each interaction's plan
    through an asynchronous session, so the independent queries of a stage
    overlap in simulated time (max instead of sum) and duplicate point
    reads across them coalesce; the workload must implement
    ``interaction_plan``.  The default replays interactions serially — the
    classic blocking client.
    """

    def __init__(self, db: PiqlDatabase, client_id: int, pipelined: bool = False):
        # The kernel owns this clock and hands it to the database view, so
        # the server's whole timeline (queries, idle gaps) lives on a clock
        # the driver can read and advance.
        self.clock = SimClock()
        self.db = db.new_client(clock=self.clock)
        self.client_id = client_id
        self.pipelined = pipelined
        self.session = self.db.session() if pipelined else None
        self.interactions = 0

    @property
    def free_at(self) -> float:
        """Simulated time at which this server finishes its current work."""
        return self.clock.now

    def run_interaction(self, workload: Workload, rng: random.Random, at: float):
        """Run one interaction starting no earlier than ``at``.

        Advances the server's private clock to ``at`` first (idle time), then
        lets the workload execute against this server's database view; the
        clock ends at the interaction's completion time.
        """
        if self.clock.now < at:
            self.clock.advance(at - self.clock.now)
        if self.pipelined:
            plan = workload.interaction_plan(self.db, rng)
            result = workload.run_plan(self.db, plan, session=self.session)
        else:
            result = workload.interaction(self.db, rng)
        self.interactions += 1
        return result


class ClosedLoopDriver:
    """A fixed population of think-time clients (one server each)."""

    def __init__(
        self,
        sim: Simulation,
        db: PiqlDatabase,
        workload: Workload,
        clients: int = 50,
        think_time_seconds: float = 1.0,
        seed: int = 0,
        monitor: Optional[SLOMonitor] = None,
        admission: Optional[AdmissionController] = None,
        log: Optional[TrafficLog] = None,
        pipelined: bool = False,
    ):
        if clients < 1:
            raise ValueError("need at least one client")
        if think_time_seconds < 0:
            raise ValueError("think time must be non-negative")
        self.sim = sim
        self.workload = workload
        self.think_time_seconds = think_time_seconds
        self.monitor = monitor
        self.admission = admission
        self.log = log if log is not None else TrafficLog()
        self.servers = [AppServer(db, client_id, pipelined=pipelined)
                        for client_id in range(clients)]
        self._rngs = [random.Random((seed, i).__hash__() & 0x7FFFFFFF)
                      for i in range(clients)]

    def _think(self, rng: random.Random) -> float:
        if self.think_time_seconds == 0:
            return 0.0
        return rng.expovariate(1.0 / self.think_time_seconds)

    def start(self) -> None:
        """Stagger each client's first request across one think time."""
        for server, rng in zip(self.servers, self._rngs):
            offset = rng.uniform(0.0, self.think_time_seconds) \
                if self.think_time_seconds > 0 else 0.0
            self.sim.schedule_at(
                self.sim.now + offset,
                self._make_tick(server, rng),
                name=f"closed-client-{server.client_id}",
            )

    def _make_tick(self, server: AppServer, rng: random.Random):
        def tick(sim: Simulation) -> None:
            arrival = sim.now
            if self.admission is not None:
                decision = self.admission.decide(arrival)
                if decision is AdmissionDecision.SHED:
                    # The client backs off a full think time and retries.
                    self.log.shed += 1
                    sim.schedule_at(
                        arrival + max(self._think(rng), 1e-3), tick,
                        name=f"closed-client-{server.client_id}",
                    )
                    return
            try:
                result = server.run_interaction(self.workload, rng, arrival)
            except UnavailableError as exc:
                # A replica quorum could not be met mid-interaction.  The
                # work already charged stays on the server's clock; the
                # client backs off a think time and tries a fresh one.
                self.log.failed += 1
                self.log.failures.append((arrival, type(exc).__name__))
                _observe_failure_at(
                    sim, self.monitor, max(server.free_at, arrival)
                )
                sim.schedule_at(
                    max(server.free_at, arrival) + max(self._think(rng), 1e-3),
                    tick,
                    name=f"closed-client-{server.client_id}",
                )
                return
            completion = server.free_at
            record = RequestRecord(
                client_id=server.client_id,
                name=result.name,
                arrival_seconds=arrival,
                start_seconds=arrival,
                completion_seconds=completion,
                service_seconds=result.latency_seconds,
                operations=result.operations,
                query_operations=tuple(sorted(result.query_operations.items())),
            )
            self.log.record(record)
            _observe_at_completion(sim, self.monitor, record)
            sim.schedule_at(
                completion + self._think(rng), tick,
                name=f"closed-client-{server.client_id}",
            )

        return tick


class OpenLoopDriver:
    """Poisson arrivals dispatched to a pool of application servers."""

    def __init__(
        self,
        sim: Simulation,
        db: PiqlDatabase,
        workload: Workload,
        arrival_rate_per_second: float,
        servers: int = 50,
        seed: int = 0,
        monitor: Optional[SLOMonitor] = None,
        admission: Optional[AdmissionController] = None,
        log: Optional[TrafficLog] = None,
        pipelined: bool = False,
    ):
        if arrival_rate_per_second <= 0:
            raise ValueError("arrival rate must be positive")
        if servers < 1:
            raise ValueError("need at least one server")
        self.sim = sim
        self.workload = workload
        self.arrival_rate_per_second = arrival_rate_per_second
        self.monitor = monitor
        self.admission = admission
        self.log = log if log is not None else TrafficLog()
        self.servers = [AppServer(db, client_id, pipelined=pipelined)
                        for client_id in range(servers)]
        self._rng = random.Random(seed)

    def set_rate(self, arrival_rate_per_second: float) -> None:
        """Change the offered rate mid-run (traffic surges in scenarios)."""
        if arrival_rate_per_second <= 0:
            raise ValueError("arrival rate must be positive")
        self.arrival_rate_per_second = arrival_rate_per_second

    def start(self) -> None:
        self.sim.schedule_at(
            self.sim.now + self._rng.expovariate(self.arrival_rate_per_second),
            self._arrival,
            name="open-arrival",
        )

    def _arrival(self, sim: Simulation) -> None:
        arrival = sim.now
        # Perpetuate the arrival process first so shedding never stops it.
        sim.schedule_at(
            arrival + self._rng.expovariate(self.arrival_rate_per_second),
            self._arrival,
            name="open-arrival",
        )
        server = min(self.servers, key=lambda s: (s.free_at, s.client_id))
        backlog = max(0.0, server.free_at - arrival)
        if self.admission is not None:
            decision = self.admission.decide(arrival, backlog_seconds=backlog)
            if decision is AdmissionDecision.SHED:
                self.log.shed += 1
                return
        start = max(arrival, server.free_at)
        try:
            result = server.run_interaction(self.workload, self._rng, start)
        except UnavailableError as exc:
            self.log.failed += 1
            self.log.failures.append((arrival, type(exc).__name__))
            _observe_failure_at(sim, self.monitor, max(server.free_at, start))
            return
        record = RequestRecord(
            client_id=server.client_id,
            name=result.name,
            arrival_seconds=arrival,
            start_seconds=start,
            completion_seconds=server.free_at,
            service_seconds=result.latency_seconds,
            operations=result.operations,
            query_operations=tuple(sorted(result.query_operations.items())),
        )
        self.log.record(record)
        _observe_at_completion(sim, self.monitor, record)
