"""End-to-end serving simulation: traffic, contention, and control loops.

:class:`ServingSimulation` wires the pieces of the serving tier together
over an already-loaded :class:`~repro.engine.database.PiqlDatabase`:

1. installs per-node request queues on the cluster (queue-aware latency),
2. builds an :class:`~repro.serving.monitor.SLOMonitor` for the configured
   objective,
3. optionally an admission controller and/or autoscaler,
4. a closed- or open-loop driver replaying the workload's interaction mix,
5. a periodic **control tick** that feeds measured per-node arrival rates
   back into node utilisation, steps the admission controller, and lets the
   autoscaler act,

then runs the discrete-event kernel for a configured amount of simulated
time and returns a :class:`ServingReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..engine.database import PiqlDatabase
from ..obs.drift import PredictionDriftDetector
from ..obs.flightrec import ForensicsConfig
from ..obs.incident import IncidentReport, LatencyForensics
from ..obs.slo import BurnRateAlerter, BurnRateRule
from ..obs.telemetry import FleetTelemetry, TelemetryCollector
from ..obs.timeseries import TimeSeriesStore
from ..prediction.slo import SLOPrediction, ServiceLevelObjective
from ..replication.faults import FaultEvent, FaultInjector, FaultSpec
from ..replication.manager import RepairReport
from ..workloads.base import Workload
from .admission import AdmissionConfig, AdmissionController, AdmissionCounters
from .autoscale import AutoscaleConfig, Autoscaler, ScalingAction
from .drivers import ClosedLoopDriver, OpenLoopDriver, TrafficLog
from .events import Simulation
from .monitor import SLOMonitor, WindowReport
from .queueing import install_queues, refresh_utilization, remove_queues


@dataclass
class ServingConfig:
    """Shape and duration of one serving simulation."""

    #: "closed" (think-time population) or "open" (Poisson arrivals).
    mode: str = "closed"
    clients: int = 50
    think_time_seconds: float = 1.0
    #: Only used in open mode.
    arrival_rate_per_second: float = 50.0
    duration_seconds: float = 30.0
    slo: ServiceLevelObjective = field(
        default_factory=lambda: ServiceLevelObjective(
            quantile=0.99, latency_seconds=0.5, interval_seconds=10.0
        )
    )
    control_interval_seconds: float = 0.5
    #: How often the event kernel runs background storage-engine
    #: maintenance (LSM compaction).  Only scheduled when the cluster has
    #: at least one durable engine; the in-memory dict engine never needs
    #: it and pays nothing.
    engine_maintenance_interval_seconds: float = 0.25
    monitor_window_seconds: float = 5.0
    rate_smoothing_seconds: float = 2.0
    admission_enabled: bool = False
    admission: Optional[AdmissionConfig] = None
    #: Offline forecast used to warm-start the admission controller.
    prediction: Optional[SLOPrediction] = None
    autoscale_enabled: bool = False
    autoscale: Optional[AutoscaleConfig] = None
    #: Failure timeline: crash / recover / slow / restore events applied to
    #: storage nodes through the event kernel mid-run.
    faults: Sequence[FaultSpec] = ()
    #: Replay interactions through asynchronous sessions: the independent
    #: queries of each interaction-plan stage overlap in simulated time
    #: (requires the workload to implement ``interaction_plan``).
    pipelined: bool = False
    #: Bound-auditor policy for the run.  By default the shared auditor is
    #: flipped to ``serving`` mode — a query exceeding its static bound is
    #: recorded and fed to the SLO monitor, but the request completes (a
    #: live service degrades observably rather than crashing).  With
    #: ``strict_audit=True`` the auditor keeps strict mode and violations
    #: raise mid-run (CI smoke jobs use this).
    strict_audit: bool = False
    #: Fleet telemetry: when enabled the run scrapes cluster/node/SLO state
    #: into a time-series store every ``telemetry_interval_seconds``, runs
    #: the burn-rate alerter after each scrape, and — when the shared
    #: auditor carries a latency model — feeds the prediction-drift
    #: detector.  The assembled bundle lands on ``ServingReport.telemetry``.
    telemetry_enabled: bool = False
    telemetry_interval_seconds: float = 0.5
    #: Burn-rate rule ladder; ``None`` uses :data:`~repro.obs.slo.DEFAULT_RULES`.
    burn_rules: Optional[Sequence[BurnRateRule]] = None
    #: Requests required inside a rule's fast window before it may fire.
    burn_min_events: int = 10
    #: Shed probability the alerter seeds into the admission controller.
    pre_arm_probability: float = 0.1
    #: Latency forensics: when set, the run enables tracing on the
    #: database (app servers inherit it), attaches a tail-based flight
    #: recorder + critical-path aggregator to the shared auditor, polls
    #: breaker transitions from the control tick, and pre-registers the
    #: configured fault timeline as trace-retention windows.  The bundle
    #: lands on ``ServingReport.forensics``.
    forensics: Optional[ForensicsConfig] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if self.control_interval_seconds <= 0:
            raise ValueError("control interval must be positive")
        if self.engine_maintenance_interval_seconds <= 0:
            raise ValueError("engine maintenance interval must be positive")
        if self.telemetry_interval_seconds <= 0:
            raise ValueError("telemetry interval must be positive")


@dataclass
class ServingReport:
    """Everything a scenario needs to judge one serving run."""

    duration_seconds: float
    log: TrafficLog
    windows: List[WindowReport]
    overall_compliance: float
    admission: Optional[AdmissionCounters]
    scaling_actions: List[ScalingAction]
    final_nodes: int
    mean_utilization: float
    #: Failure timeline as applied (empty when no faults were configured).
    fault_events: List[FaultEvent] = field(default_factory=list)
    #: Aggregate anti-entropy work done by recoveries during the run.
    repair: Optional[RepairReport] = None
    #: Queries the runtime bound auditor checked during the run.
    audited: int = 0
    #: Static-bound violations the auditor observed (should be zero).
    bound_violations: int = 0
    #: The run's telemetry bundle (``None`` unless telemetry was enabled).
    telemetry: Optional[FleetTelemetry] = None
    #: The run's forensics bundle (``None`` unless forensics was enabled).
    forensics: Optional[LatencyForensics] = None

    def incident_report(
        self, title: str = "serving run", grace_seconds: float = 2.0
    ) -> IncidentReport:
        """Correlate this run's faults/breakers/alerts/traces (requires
        ``ServingConfig.forensics``)."""
        if self.forensics is None:
            raise ValueError(
                "forensics was not enabled for this run "
                "(set ServingConfig.forensics)"
            )
        alerts = self.telemetry.alerts if self.telemetry is not None else []
        drift_reports = []
        if self.telemetry is not None and self.telemetry.drift is not None:
            drift_reports = self.telemetry.drift.report()
        return self.forensics.incident_report(
            title,
            self.duration_seconds,
            fault_events=self.fault_events,
            alerts=alerts,
            drift_reports=drift_reports,
            grace_seconds=grace_seconds,
        )

    def dashboard(self, width: int = 72) -> str:
        """The rendered fleet dashboard (requires telemetry_enabled)."""
        if self.telemetry is None:
            raise ValueError(
                "telemetry was not enabled for this run "
                "(set ServingConfig.telemetry_enabled)"
            )
        return self.telemetry.dashboard(width=width)

    @property
    def completed(self) -> int:
        return self.log.completed

    @property
    def failed(self) -> int:
        return self.log.failed

    @property
    def availability(self) -> float:
        """Fraction of attempted interactions that completed successfully."""
        return self.log.availability

    @property
    def throughput(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.log.completed / self.duration_seconds

    def response_percentile_ms(self, fraction: float) -> float:
        return self.log.response_percentile(fraction) * 1000.0


class ServingSimulation:
    """One configured serving run over an already-loaded database."""

    def __init__(self, db: PiqlDatabase, workload: Workload, config: ServingConfig):
        self.db = db
        self.workload = workload
        self.config = config
        self.sim = Simulation()
        self.queues = install_queues(db.cluster, config.rate_smoothing_seconds)
        self.monitor = SLOMonitor(
            config.slo, control_window_seconds=config.monitor_window_seconds
        )
        self.admission: Optional[AdmissionController] = None
        if config.admission_enabled:
            self.admission = AdmissionController(
                self.monitor,
                config=config.admission,
                prediction=config.prediction,
            )
        self.autoscaler: Optional[Autoscaler] = None
        if config.autoscale_enabled:
            self.autoscaler = Autoscaler(db.cluster, config.autoscale)
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults:
            self.fault_injector = FaultInjector(db.cluster)
        self.telemetry: Optional[FleetTelemetry] = None
        if config.telemetry_enabled:
            store = TimeSeriesStore(
                resolution_seconds=config.telemetry_interval_seconds
            )
            alerter = BurnRateAlerter(
                store,
                config.slo,
                rules=config.burn_rules,
                min_events=config.burn_min_events,
                sink=self.monitor.record_alert,
                admission=self.admission,
                pre_arm_probability=config.pre_arm_probability,
            )
            drift = None
            if db.auditor.latency_model is not None:
                drift = PredictionDriftDetector(db.auditor.latency_model)
            collector = TelemetryCollector(
                store,
                cluster=db.cluster,
                monitor=self.monitor,
                admission=self.admission,
                registries_fn=self._server_registries,
                alerter=alerter,
                breakers_fn=self._breaker_boards,
            )
            self.telemetry = FleetTelemetry(store, collector, alerter, drift)
        self.forensics: Optional[LatencyForensics] = None
        if config.forensics is not None:
            # Tracing must be live before the driver builds its app-server
            # clients — ``new_client`` views inherit the parent's tracer
            # state at construction.
            if db.tracer is None:
                db.enable_tracing()
            forensics_drift = (
                self.telemetry.drift if self.telemetry is not None else None
            )
            if forensics_drift is None and db.auditor.latency_model is not None:
                # Envelope prediction alone (no residual feed needed), so a
                # private detector works even without telemetry.
                forensics_drift = PredictionDriftDetector(
                    db.auditor.latency_model
                )
            self.forensics = LatencyForensics(
                config.forensics, drift=forensics_drift, tracer=db.tracer
            )
            self.forensics.register_fault_windows(
                config.faults, config.duration_seconds
            )
        self.log = TrafficLog()
        if config.mode == "closed":
            self.driver = ClosedLoopDriver(
                self.sim,
                db,
                workload,
                clients=config.clients,
                think_time_seconds=config.think_time_seconds,
                seed=config.seed,
                monitor=self.monitor,
                admission=self.admission,
                log=self.log,
                pipelined=config.pipelined,
            )
        else:
            self.driver = OpenLoopDriver(
                self.sim,
                db,
                workload,
                arrival_rate_per_second=config.arrival_rate_per_second,
                servers=config.clients,
                seed=config.seed,
                monitor=self.monitor,
                admission=self.admission,
                log=self.log,
                pipelined=config.pipelined,
            )

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _server_registries(self):
        """The live metric registries rolled up each scrape: the traffic
        log's ``serving.*`` counters plus every app server's client stats
        (``client.*``, ``views.deltas.*``)."""
        registries = [self.log.metrics]
        registries.extend(
            server.db.client.stats.metrics for server in self.driver.servers
        )
        return registries

    def _breaker_boards(self):
        """Every app server's live circuit-breaker board (if any).

        Resolved through the drivers each call so autoscaled fleets stay
        covered; empty when resilience breakers are not enabled.
        """
        boards = []
        for server in self.driver.servers:
            board = getattr(server.db.client, "breakers", None)
            if board is not None:
                boards.append(board)
        return boards

    def _breaker_open_fraction(self, now: float) -> float:
        """Fraction of (client, node) breaker pairs currently open."""
        boards = self._breaker_boards()
        nodes = len(self.db.cluster.nodes)
        if not boards or nodes == 0:
            return 0.0
        open_pairs = sum(board.open_count(now) for board in boards)
        return open_pairs / (len(boards) * nodes)

    def _control_tick(self, sim: Simulation) -> None:
        now = sim.now
        refresh_utilization(self.db.cluster, now)
        if self.admission is not None:
            # Breaker pressure first: clients fencing off storage nodes is
            # an earlier fault signal than the SLO quantile the update
            # step reads, so the pre-armed floor is visible to it.
            self.admission.note_breaker_pressure(
                self._breaker_open_fraction(now)
            )
            self.admission.update(now)
        if self.autoscaler is not None:
            self.autoscaler.evaluate(now)
        if self.forensics is not None:
            self.forensics.tick(
                now,
                boards=self._breaker_boards(),
                store=(
                    self.telemetry.store
                    if self.telemetry is not None
                    else None
                ),
            )
        next_tick = now + self.config.control_interval_seconds
        if next_tick <= self.config.duration_seconds:
            sim.schedule_at(next_tick, self._control_tick, name="control-tick")

    def _engine_maintenance_tick(self, sim: Simulation) -> None:
        self.db.cluster.run_engine_maintenance()
        next_tick = sim.now + self.config.engine_maintenance_interval_seconds
        if next_tick <= self.config.duration_seconds:
            sim.schedule_at(
                next_tick, self._engine_maintenance_tick,
                name="engine-maintenance",
            )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self) -> ServingReport:
        """Run the scenario for ``duration_seconds`` of simulated time."""
        # The auditor is shared by every app-server view (`new_client`), so
        # flipping its policy here covers the whole fleet.  Mode and sink
        # are restored afterwards: the database may host tests or further
        # scenarios with different policies.
        auditor = self.db.auditor
        audited_before = auditor.audited
        violations_before = auditor.violations
        saved_mode, saved_sink = auditor.mode, auditor.sink
        saved_drift = auditor.drift
        saved_recorder = auditor.recorder
        if not self.config.strict_audit:
            auditor.mode = "serving"
        auditor.sink = self.monitor.record_bound_violation
        if self.telemetry is not None and self.telemetry.drift is not None:
            auditor.drift = self.telemetry.drift
        if self.forensics is not None:
            auditor.recorder = self.forensics.recorder
        try:
            self.driver.start()
            if self.fault_injector is not None:
                self.fault_injector.schedule(self.sim, self.config.faults)
            self.sim.schedule_at(
                self.config.control_interval_seconds, self._control_tick,
                name="control-tick",
            )
            if any(
                engine.durable
                for engine in self.db.cluster.engines.values()
            ):
                self.sim.schedule_at(
                    self.config.engine_maintenance_interval_seconds,
                    self._engine_maintenance_tick,
                    name="engine-maintenance",
                )
            if self.telemetry is not None:
                self.telemetry.collector.schedule(
                    self.sim,
                    self.config.telemetry_interval_seconds,
                    self.config.duration_seconds,
                )
            self.sim.run(until=self.config.duration_seconds)
            if self.telemetry is not None:
                # One closing scrape so the artifact covers the very end of
                # the run (the loop stops short of the horizon).
                self.telemetry.collector.scrape(self.sim.now)
            if self.forensics is not None:
                # Closing forensics tick (final breaker diff + gauge
                # scrape), then close any still-open breaker windows.
                self.forensics.tick(
                    self.sim.now,
                    boards=self._breaker_boards(),
                    store=(
                        self.telemetry.store
                        if self.telemetry is not None
                        else None
                    ),
                )
                self.forensics.finalize(self.sim.now)
        finally:
            auditor.mode, auditor.sink = saved_mode, saved_sink
            auditor.drift = saved_drift
            auditor.recorder = saved_recorder
        mean_utilization = refresh_utilization(self.db.cluster, self.sim.now)
        windows = list(self.monitor.finalize())
        report = ServingReport(
            duration_seconds=self.config.duration_seconds,
            log=self.log,
            windows=windows,
            overall_compliance=self.monitor.overall_compliance,
            admission=self.admission.counters if self.admission else None,
            scaling_actions=list(self.autoscaler.actions) if self.autoscaler else [],
            final_nodes=len(self.db.cluster.nodes),
            mean_utilization=mean_utilization,
            fault_events=(
                list(self.fault_injector.events) if self.fault_injector else []
            ),
            repair=(
                self.fault_injector.total_repair() if self.fault_injector else None
            ),
            audited=auditor.audited - audited_before,
            bound_violations=auditor.violations - violations_before,
            telemetry=self.telemetry,
            forensics=self.forensics,
        )
        # Detach the run's measurement state (queues, offered load) so the
        # same database can host several scenarios back to back.  Autoscaler
        # topology changes deliberately persist — they *are* the run's
        # provisioning decision, reported via ``final_nodes`` and
        # ``scaling_actions``; start from a fresh database (or resize the
        # cluster yourself) when scenarios must not inherit them.
        remove_queues(self.db.cluster)
        self.db.cluster.set_offered_load(0.0)
        return report


def run_serving_simulation(
    db: PiqlDatabase, workload: Workload, config: Optional[ServingConfig] = None
) -> ServingReport:
    """Convenience wrapper: build and run one :class:`ServingSimulation`."""
    return ServingSimulation(db, workload, config or ServingConfig()).run()
