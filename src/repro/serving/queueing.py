"""Per-storage-node request queues: latency that degrades under load.

Without a queue, a storage node charges each request an independent sample
from its service-time model — two requests arriving in the same microsecond
cost the same as two requests an hour apart.  With a queue the node becomes
a FIFO single server: a request arriving while an earlier one is still in
service waits until the server frees up, so response time is

    ``wait (behind in-flight requests) + service (latency-model sample)``.

As the merged arrival rate from all clients approaches the node's capacity,
the backlog — and therefore the wait — grows without bound, which is exactly
the saturation behaviour the PIQL paper's SLO methodology guards against.

The queue also measures two load signals, sampled each control tick as
counter deltas and smoothed with an exponential moving average (time
constant ``smoothing_seconds``):

* **arrival rate** (requests/second), fed back into
  ``StorageNode.set_offered_load`` so the analytic M/M/1 utilisation factor
  in the latency model tracks actual traffic instead of a static knob;
* **busy fraction** (service-seconds charged per second), the saturation
  indicator the admission controller and autoscaler act on — unlike the
  arrival rate, which plateaus at whatever a saturated server still
  manages to serve, it pins at 1.0 in overload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..kvstore.cluster import KeyValueCluster
from ..kvstore.node import StorageNode


@dataclass
class QueueStats:
    """Aggregate counters for one node's request queue."""

    arrivals: int = 0
    waited: int = 0
    total_wait_seconds: float = 0.0
    total_service_seconds: float = 0.0
    max_backlog_seconds: float = 0.0

    @property
    def mean_wait_seconds(self) -> float:
        return self.total_wait_seconds / self.arrivals if self.arrivals else 0.0


class NodeRequestQueue:
    """Single-server queue attached to one :class:`StorageNode`.

    The node calls :meth:`on_request` from its ``charge_*`` methods (see the
    ``request_queue`` hook) with the request's arrival time and sampled
    service time; the returned wait is added to the charged latency.

    The server is modelled as a **capacity calendar**: simulated time is cut
    into buckets of ``bucket_seconds``, each able to absorb exactly
    ``bucket_seconds`` of service.  A request packs its service time into
    the first free capacity at or after its arrival, and its wait is how far
    that start lies past the arrival.  A plain scalar ``busy-until`` FIFO
    would be simpler, but the serving tier charges requests on many
    *private* client clocks that the event kernel interleaves only at
    interaction granularity — with out-of-order arrivals a scalar frontier
    never drains and a standing phantom backlog builds up.  The calendar
    stays work-conserving under that interleaving: waits appear exactly
    when nearby capacity is genuinely exhausted.

    Each bucket tracks only its total used capacity, not request positions,
    so waits are quantised to bucket granularity and sub-bucket queueing is
    left to the latency model's analytic utilisation factor.  The calendar's
    job is the macroscopic part: a hard throughput ceiling and an overload
    backlog that grows — and drains — like the real thing.
    """

    def __init__(
        self,
        smoothing_seconds: float = 2.0,
        bucket_seconds: float = 0.05,
        now: float = 0.0,
    ):
        if smoothing_seconds <= 0:
            raise ValueError("smoothing_seconds must be positive")
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.smoothing_seconds = smoothing_seconds
        self.bucket_seconds = bucket_seconds
        self.stats = QueueStats()
        self.smoothed_rate = 0.0
        self.smoothed_busy_fraction = 0.0
        self._buckets: Dict[int, float] = {}
        # Baseline for rate sampling: the installation time.  A queue the
        # autoscaler attaches mid-run must not average its first counters
        # over the whole simulation so far.
        self._sample_time = now
        self._sample_arrivals = 0
        self._sample_service = 0.0

    def on_request(self, sim_time: float, service_seconds: float) -> float:
        """Admit one request; return the time it spends waiting in queue."""
        width = self.bucket_seconds
        bucket = int(sim_time // width)
        remaining = service_seconds
        start_time: float = sim_time
        started = False
        while remaining > 1e-12:
            used = self._buckets.get(bucket, 0.0)
            free = width - used
            if free > 1e-12:
                if not started:
                    start_time = max(sim_time, bucket * width)
                    started = True
                take = min(free, remaining)
                self._buckets[bucket] = used + take
                remaining -= take
            bucket += 1
        wait = max(0.0, start_time - sim_time)
        self.stats.arrivals += 1
        if wait > 0:
            self.stats.waited += 1
        self.stats.total_wait_seconds += wait
        self.stats.total_service_seconds += service_seconds
        self.stats.max_backlog_seconds = max(self.stats.max_backlog_seconds, wait)
        return wait

    # ------------------------------------------------------------------
    # Signals for the control loop
    # ------------------------------------------------------------------
    def backlog_seconds(self, now: float) -> float:
        """Service seconds already committed at or after ``now``."""
        width = self.bucket_seconds
        horizon = int(now // width)
        total = 0.0
        for bucket, used in self._buckets.items():
            if bucket > horizon:
                total += used
            elif bucket == horizon:
                total += max(0.0, bucket * width + used - now)
        return total

    def sample(self, now: float) -> Tuple[float, float]:
        """Advance the load signals to ``now``; return (rate, busy fraction).

        Counter deltas since the previous sample are turned into rates and
        folded into the exponential moving averages.  Sampling twice at the
        same instant is idempotent (returns the current smoothed values).
        """
        elapsed = now - self._sample_time
        if elapsed > 0:
            rate = (self.stats.arrivals - self._sample_arrivals) / elapsed
            busy = (self.stats.total_service_seconds - self._sample_service) / elapsed
            alpha = 1.0 - math.exp(-elapsed / self.smoothing_seconds)
            self.smoothed_rate += alpha * (rate - self.smoothed_rate)
            self.smoothed_busy_fraction += alpha * (
                min(busy, 1.0) - self.smoothed_busy_fraction
            )
            self._sample_time = now
            self._sample_arrivals = self.stats.arrivals
            self._sample_service = self.stats.total_service_seconds
            self._prune(now)
        return self.smoothed_rate, self.smoothed_busy_fraction

    def measured_rate(self, now: float) -> float:
        """Smoothed recent arrival rate (requests per second)."""
        return self.sample(now)[0]

    def measured_busy_fraction(self, now: float) -> float:
        """Smoothed fraction of recent time spent serving (1.0 = saturated)."""
        return self.sample(now)[1]

    def _prune(self, now: float) -> None:
        """Forget calendar buckets far enough in the past to be immutable."""
        horizon = int((now - 10.0 * self.smoothing_seconds) // self.bucket_seconds)
        if horizon <= 0:
            return
        stale = [bucket for bucket in self._buckets if bucket < horizon]
        for bucket in stale:
            del self._buckets[bucket]

    def reset(self) -> None:
        self.stats = QueueStats()
        self.smoothed_rate = 0.0
        self.smoothed_busy_fraction = 0.0
        self._buckets.clear()
        self._sample_time = 0.0
        self._sample_arrivals = 0
        self._sample_service = 0.0


# ----------------------------------------------------------------------
# Cluster-level helpers
# ----------------------------------------------------------------------
def install_queues(
    cluster: KeyValueCluster, smoothing_seconds: float = 2.0
) -> Dict[int, NodeRequestQueue]:
    """Attach a fresh request queue to every node; return them by node id."""
    queues: Dict[int, NodeRequestQueue] = {}
    for node in cluster.nodes:
        node.request_queue = NodeRequestQueue(smoothing_seconds)
        queues[node.node_id] = node.request_queue
    return queues


def install_queue(
    node: StorageNode, smoothing_seconds: float = 2.0, now: float = 0.0
) -> NodeRequestQueue:
    """Attach a request queue to one node (used when the autoscaler grows)."""
    node.request_queue = NodeRequestQueue(smoothing_seconds, now=now)
    return node.request_queue


def remove_queues(cluster: KeyValueCluster) -> None:
    """Detach all request queues (back to the contention-free model)."""
    for node in cluster.nodes:
        node.request_queue = None


def refresh_utilization(cluster: KeyValueCluster, now: float) -> float:
    """Refresh per-node utilisation from queue measurements; return the mean.

    Two deliberately different signals:

    * the node's latency model gets the measured **arrival rate** (its
      analytic M/M/1 factor models sub-saturation degradation; feeding the
      busy time back in would double-count the queueing the FIFO wait
      already charges, and the feedback loop would saturate on its own);
    * the returned control signal is the mean **busy fraction**, which goes
      to 1.0 in overload, giving the autoscaler and admission controller an
      honest saturation indicator.

    Nodes without a queue keep their statically configured utilisation and
    contribute it to the mean.  Crashed nodes serve nothing — their signal
    is excluded so the control loops react to the *surviving* capacity
    (whose measured rates rise as traffic concentrates on fewer replicas).
    """
    signals = []
    for node in cluster.nodes:
        queue = node.request_queue
        if not node.up:
            node.set_offered_load(0.0)
            continue
        if isinstance(queue, NodeRequestQueue):
            rate, busy = queue.sample(now)
            node.set_offered_load(rate)
            signals.append(busy)
        else:
            signals.append(node.utilization)
    return sum(signals) / len(signals) if signals else 0.0
