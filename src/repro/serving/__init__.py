"""Serving tier: event-driven multi-client traffic simulation.

This package turns the single-query reproduction into a served system: a
discrete-event kernel interleaves many application servers' simulated
clocks, per-node request queues make latency degrade as offered load
approaches capacity, open/closed-loop drivers replay the benchmark
interaction mixes, an SLO monitor tracks p50/p99 over sliding windows, and
admission control plus an autoscaler close the loop when compliance drops.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionCounters,
    AdmissionDecision,
)
from .autoscale import AutoscaleConfig, Autoscaler, ScalingAction
from .drivers import (
    AppServer,
    ClosedLoopDriver,
    OpenLoopDriver,
    RequestRecord,
    TrafficLog,
)
from .events import Event, EventQueue, Simulation
from .monitor import PredictionComparison, SLOMonitor, WindowReport
from .queueing import (
    NodeRequestQueue,
    QueueStats,
    install_queues,
    refresh_utilization,
    remove_queues,
)
from .simulator import (
    ServingConfig,
    ServingReport,
    ServingSimulation,
    run_serving_simulation,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionCounters",
    "AdmissionDecision",
    "AppServer",
    "AutoscaleConfig",
    "Autoscaler",
    "ClosedLoopDriver",
    "Event",
    "EventQueue",
    "NodeRequestQueue",
    "OpenLoopDriver",
    "PredictionComparison",
    "QueueStats",
    "RequestRecord",
    "SLOMonitor",
    "ScalingAction",
    "ServingConfig",
    "ServingReport",
    "ServingSimulation",
    "Simulation",
    "TrafficLog",
    "WindowReport",
    "install_queues",
    "refresh_utilization",
    "remove_queues",
    "run_serving_simulation",
]
