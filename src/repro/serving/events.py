"""Discrete-event simulation kernel for the serving tier.

The rest of the reproduction advances one :class:`~repro.kvstore.simtime.SimClock`
at a time: a client runs an interaction to completion, its private clock
advances, and the next client starts from zero.  That is fine for measuring
per-query cost but cannot model *contention*: fifty application servers
whose requests land on the same storage nodes at overlapping times.

This kernel provides the missing interleaving.  It keeps a single global
event queue ordered by simulated time (ties broken by scheduling order, so
runs are deterministic) and a global ``now``.  Client drivers schedule their
next step at the simulated time their private clock has reached, so the
kernel processes all clients' steps in global time order and per-node
request queues observe a realistic merged arrival process.

Events are plain callbacks ``action(sim)``; an action may schedule further
events, which is how drivers perpetuate themselves.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

Action = Callable[["Simulation"], None]


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled callback.

    Ordering is ``(time, seq)``: earlier simulated time first, and among
    events at the same instant, first-scheduled runs first (FIFO).  The
    action never participates in comparisons.
    """

    time: float
    seq: int
    action: Action = field(compare=False)
    name: str = field(default="", compare=False)


class EventQueue:
    """A priority queue of :class:`Event` objects (a binary heap)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, action: Action, name: str = "") -> Event:
        if time < 0:
            raise ValueError(f"cannot schedule an event at negative time: {time}")
        event = Event(time=time, seq=next(self._seq), action=action, name=name)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class Simulation:
    """The event loop: pops events in time order and runs their actions."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self.events_processed = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, action: Action, name: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``.

        Scheduling in the past is rejected: simulated time only moves
        forward, and an event behind ``now`` would silently reorder history.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time:.6f}, simulation is already at "
                f"{self.now:.6f}"
            )
        return self.queue.push(time, action, name)

    def schedule_in(self, delay: float, action: Action, name: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds after the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.now + delay, action, name)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event's action."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Process events in order; return how many were processed.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (the clock is then advanced to ``until`` exactly), after
        ``max_events`` events, or when an action calls :meth:`stop`.
        """
        self._stopped = False
        processed = 0
        while self.queue and not self._stopped:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self.now = max(self.now, until)
                break
            event = self.queue.pop()
            self.now = event.time
            event.action(self)
            processed += 1
            self.events_processed += 1
        else:
            if until is not None and not self.queue and not self._stopped:
                self.now = max(self.now, until)
        return processed
