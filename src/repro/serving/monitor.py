"""SLO monitoring over sliding windows (the serving tier's eyes).

The paper states SLOs over fixed intervals — "99% of queries during each
ten-minute interval complete within 500 ms" — and Figures 8–11 compare a
prediction of those per-interval quantiles against observation.  The monitor
implements both views:

* **interval reports** bin every observation by the SLO's interval index and
  report p50 / p99 / compliance per interval (the paper's methodology), and
* a short **control window** (a sliding deque of recent observations) that
  gives the admission controller and autoscaler a responsive live signal.

It can also compare what it observed against an offline
:class:`~repro.prediction.slo.SLOPrediction`, closing the loop between the
prediction framework and the serving tier.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

from ..prediction.slo import SLOPrediction, ServiceLevelObjective
from ..stats import nearest_rank_percentile


@dataclass(frozen=True)
class WindowReport:
    """Latency summary of one completed SLO interval."""

    index: int
    start_seconds: float
    count: int
    p50_seconds: float
    quantile_seconds: float
    compliance: float
    violated: bool

    @property
    def p50_ms(self) -> float:
        return self.p50_seconds * 1000.0

    @property
    def quantile_ms(self) -> float:
        return self.quantile_seconds * 1000.0


@dataclass(frozen=True)
class PredictionComparison:
    """How observed per-interval quantiles line up with an offline forecast."""

    predicted_max_seconds: float
    observed_max_seconds: float
    intervals_compared: int
    intervals_over_prediction: int

    @property
    def fraction_over_prediction(self) -> float:
        if self.intervals_compared == 0:
            return 0.0
        return self.intervals_over_prediction / self.intervals_compared


class SLOMonitor:
    """Tracks response-time observations against a service level objective."""

    def __init__(
        self,
        slo: ServiceLevelObjective,
        control_window_seconds: float = 5.0,
        min_samples: int = 20,
    ):
        if control_window_seconds <= 0:
            raise ValueError("control_window_seconds must be positive")
        self.slo = slo
        self.control_window_seconds = control_window_seconds
        self.min_samples = min_samples
        self.total_observations = 0
        self.total_compliant = 0
        #: Interactions that failed outright (no response to time at all).
        #: Kept separate from ``total_observations`` so latency percentiles
        #: and :attr:`overall_compliance` stay statements about *completed*
        #: requests (availability covers failures), while the scraped SLO
        #: error-budget counters include them — a failed request burns
        #: budget exactly like an over-latency one.
        self.total_failed = 0
        self._samples_by_interval: Dict[int, List[float]] = {}
        self._recent: Deque[Tuple[float, float]] = deque()
        self._latest = 0.0
        #: Bound-violation events delivered by a serving-mode
        #: :class:`~repro.obs.audit.BoundAuditor` (oldest first, bounded).
        self.bound_violations: List[object] = []
        #: Burn-rate alerts delivered by a telemetry
        #: :class:`~repro.obs.slo.BurnRateAlerter` (oldest first, bounded).
        self.alerts: List[object] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, now: float, latency_seconds: float) -> None:
        """Record one completed request's response time at time ``now``.

        Interval binning is by ``now``'s own interval index, so it is
        correct even if observations arrive slightly out of time order
        (drivers deliver them through kernel events, but robustness here is
        cheap).
        """
        index = int(now // self.slo.interval_seconds)
        self._samples_by_interval.setdefault(index, []).append(latency_seconds)
        self.total_observations += 1
        if latency_seconds <= self.slo.latency_seconds:
            self.total_compliant += 1
        self._recent.append((now, latency_seconds))
        self._trim_recent(now)

    def record_failure(self, now: float) -> None:
        """Record one interaction that failed outright at time ``now``.

        There is no latency to bin, so failures never enter the interval
        reports or the control window; they only count against the error
        budget (via the scraped ``serving.slo.total`` counter), which is
        what lets burn-rate alerting see a quorum-loss window where every
        request dies quickly instead of slowly.
        """
        self.total_failed += 1

    def record_bound_violation(self, event: object) -> None:
        """Sink for the runtime bound auditor in serving mode.

        A query that exceeded its static bound is a correctness regression
        of the scale-independence story, not just a latency blip — the
        monitor keeps the structured events so serving reports can surface
        them even though the requests themselves completed.
        """
        if len(self.bound_violations) < 256:
            self.bound_violations.append(event)

    def record_alert(self, alert: object) -> None:
        """Sink for the burn-rate alerter: keeps the run's alert timeline.

        The alert objects are mutated in place by the alerter as they peak
        and clear, so the list reflects the final timeline at report time.
        """
        if len(self.alerts) < 256:
            self.alerts.append(alert)

    def _summarise(self, index: int, samples: List[float]) -> WindowReport:
        quantile = nearest_rank_percentile(samples, self.slo.quantile)
        compliant = sum(1 for s in samples if s <= self.slo.latency_seconds)
        return WindowReport(
            index=index,
            start_seconds=index * self.slo.interval_seconds,
            count=len(samples),
            p50_seconds=nearest_rank_percentile(samples, 0.50),
            quantile_seconds=quantile,
            compliance=compliant / len(samples),
            violated=quantile > self.slo.latency_seconds,
        )

    def _trim_recent(self, now: float) -> None:
        # The horizon only moves forward: a single early-recorded straggler
        # (an observation stamped ahead of its siblings) must not evict the
        # control window that the admission controller is acting on.
        self._latest = max(self._latest, now)
        horizon = self._latest - self.control_window_seconds
        while self._recent and self._recent[0][0] < horizon:
            self._recent.popleft()

    # ------------------------------------------------------------------
    # Live control signals
    # ------------------------------------------------------------------
    def recent_count(self, now: float) -> int:
        self._trim_recent(now)
        return len(self._recent)

    def percentile(self, fraction: float, now: float) -> float:
        """Nearest-rank percentile over the recent control window."""
        self._trim_recent(now)
        if not self._recent:
            raise ValueError("no recent observations")
        return nearest_rank_percentile(
            [latency for _, latency in self._recent], fraction
        )

    def recent_compliance(self, now: float) -> float:
        """Fraction of recent observations inside the SLO latency."""
        self._trim_recent(now)
        if not self._recent:
            return 1.0
        compliant = sum(
            1 for _, latency in self._recent
            if latency <= self.slo.latency_seconds
        )
        return compliant / len(self._recent)

    def violated(self, now: float) -> bool:
        """Whether the live SLO quantile currently exceeds the objective.

        Conservative: returns ``False`` until ``min_samples`` recent
        observations exist, so cold starts never trigger shedding.
        """
        if self.recent_count(now) < self.min_samples:
            return False
        return self.percentile(self.slo.quantile, now) > self.slo.latency_seconds

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def finalize(self) -> List[WindowReport]:
        """Summarise every interval observed so far, in interval order."""
        return [
            self._summarise(index, samples)
            for index, samples in sorted(self._samples_by_interval.items())
        ]

    @property
    def overall_compliance(self) -> float:
        if self.total_observations == 0:
            return 1.0
        return self.total_compliant / self.total_observations

    def compare_to_prediction(
        self, prediction: SLOPrediction
    ) -> PredictionComparison:
        """Line observed interval quantiles up against an offline forecast.

        Matches the paper's Table 1 reading: the forecast's most conservative
        per-interval quantile versus the worst interval actually observed.
        """
        reports = self.finalize()
        if not reports:
            raise ValueError("no completed intervals to compare")
        predicted_max = prediction.max_seconds
        observed = [report.quantile_seconds for report in reports]
        over = sum(1 for value in observed if value > predicted_max)
        return PredictionComparison(
            predicted_max_seconds=predicted_max,
            observed_max_seconds=max(observed),
            intervals_compared=len(observed),
            intervals_over_prediction=over,
        )
