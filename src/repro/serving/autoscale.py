"""Autoscaler: grow or shrink the storage tier to protect the SLO.

Admission control protects latency by refusing work; the autoscaler
protects it by buying capacity, the provisioning-for-load methodology of
Lang et al.'s energy-efficient cluster design work.  The policy is the
classic utilisation-band controller with hysteresis and a cooldown:

* when mean measured node utilisation stays above ``high_utilization``, add
  a storage node (the new node joins the placement ring and anti-entropy
  re-replicates the key ranges it now owns onto it);
* when it falls below ``low_utilization`` and the cluster is above its
  floor — never below the replication factor, in provisioned *or* up
  nodes — remove the most recently added node, re-replicating its records
  onto the survivors first;
* after any action, wait ``cooldown_seconds`` before acting again so the
  measured rate window can catch up with the new topology.

Every action is logged with its trigger so benchmark reports can show the
violation → scale-out → recovery timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..kvstore.cluster import KeyValueCluster
from .queueing import NodeRequestQueue, install_queue, refresh_utilization


@dataclass(frozen=True)
class AutoscaleConfig:
    """Utilisation band and pacing of the scaling policy."""

    high_utilization: float = 0.75
    low_utilization: float = 0.30
    cooldown_seconds: float = 10.0
    #: No scale-*down* before this much simulated time: the smoothed busy
    #: signal starts at zero, and shedding capacity on a cold signal is the
    #: one mistake this controller must never make.  Scale-up is always
    #: allowed.
    warmup_seconds: float = 5.0
    min_nodes: Optional[int] = None  # defaults to the replication factor
    max_nodes: int = 64

    def __post_init__(self) -> None:
        if not (0.0 <= self.low_utilization < self.high_utilization):
            raise ValueError("need 0 <= low_utilization < high_utilization")


@dataclass(frozen=True)
class ScalingAction:
    """One executed scaling decision (for reports and tests)."""

    time: float
    action: str  # "add" or "remove"
    utilization: float
    nodes_after: int


class Autoscaler:
    """Adds/removes cluster nodes based on measured utilisation."""

    def __init__(
        self, cluster: KeyValueCluster, config: Optional[AutoscaleConfig] = None
    ):
        self.cluster = cluster
        self.config = config or AutoscaleConfig()
        self.actions: List[ScalingAction] = []
        self._last_action_time: Optional[float] = None

    @property
    def min_nodes(self) -> int:
        if self.config.min_nodes is not None:
            return max(self.config.min_nodes, self.cluster.config.replication)
        return self.cluster.config.replication

    def evaluate(self, now: float) -> Optional[ScalingAction]:
        """One control tick: maybe scale; returns the action taken, if any."""
        if (
            self._last_action_time is not None
            and now - self._last_action_time < self.config.cooldown_seconds
        ):
            return None
        utilization = refresh_utilization(self.cluster, now)
        action: Optional[str] = None
        if (
            utilization > self.config.high_utilization
            and len(self.cluster.nodes) < self.config.max_nodes
        ):
            node = self.cluster.add_node()
            # Match the queueing discipline of the existing nodes so the new
            # node participates in rate measurement immediately.
            template = next(
                (
                    n.request_queue
                    for n in self.cluster.nodes
                    if isinstance(n.request_queue, NodeRequestQueue)
                ),
                None,
            )
            if template is not None:
                install_queue(node, template.smoothing_seconds, now=now)
            action = "add"
        elif (
            utilization < self.config.low_utilization
            and len(self.cluster.nodes) > self.min_nodes
            and now >= self.config.warmup_seconds
            # Never shed capacity that the replication invariant needs:
            # with a node crashed, removing another could leave fewer up
            # replicas than the replication factor.
            and self.cluster.can_remove_node()
        ):
            self.cluster.remove_node()
            action = "remove"
        if action is None:
            return None
        self._last_action_time = now
        record = ScalingAction(
            time=now,
            action=action,
            utilization=utilization,
            nodes_after=len(self.cluster.nodes),
        )
        self.actions.append(record)
        return record
