"""Common infrastructure shared by the TPC-W and SCADr benchmark workloads."""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine.database import PiqlDatabase


@dataclass
class InteractionResult:
    """Cost of one simulated web interaction (one "page render")."""

    name: str
    latency_seconds: float
    operations: int
    query_latencies: Dict[str, float] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1000.0


@dataclass
class WorkloadScale:
    """How much data to load, expressed per storage node as in the paper.

    The paper keeps the amount of data per server constant while varying the
    number of servers (Section 8.4); the generators multiply the per-node
    quantities by the cluster size.  The default per-node quantities are
    scaled down from the paper's (60,000 SCADr users per node, 75 emulated
    browsers of TPC-W data per node) so experiments complete quickly in the
    simulator; the scaling *shape* does not depend on the absolute sizes.
    """

    storage_nodes: int = 10
    users_per_node: int = 200
    items_total: int = 1000
    seed: int = 42


class Workload(abc.ABC):
    """A benchmark: schema + data generator + interaction mix."""

    #: Human-readable benchmark name ("TPC-W" or "SCADr").
    name: str = "workload"

    @abc.abstractmethod
    def setup(self, db: PiqlDatabase, scale: WorkloadScale) -> None:
        """Create the schema and bulk load data sized for ``scale``."""

    @abc.abstractmethod
    def query_names(self) -> List[str]:
        """Names of the read queries (the rows of Table 1)."""

    @abc.abstractmethod
    def query_sql(self, name: str) -> str:
        """The PIQL text of one named query."""

    @abc.abstractmethod
    def sample_parameters(self, name: str, rng: random.Random) -> Dict[str, object]:
        """Random parameter bindings for one named query."""

    @abc.abstractmethod
    def interaction(
        self, db: PiqlDatabase, rng: random.Random
    ) -> InteractionResult:
        """Run one web interaction against ``db`` and report its cost."""

    # ------------------------------------------------------------------
    # Convenience helpers shared by the harness
    # ------------------------------------------------------------------
    def run_query(
        self,
        db: PiqlDatabase,
        name: str,
        rng: random.Random,
        parameters: Optional[Dict[str, object]] = None,
    ):
        """Execute one named query with random (or given) parameters."""
        prepared = db.prepare(self.query_sql(name))
        bound = parameters or self.sample_parameters(name, rng)
        return prepared.execute(bound)

    def prepare_all(self, db: PiqlDatabase) -> None:
        """Compile every query (and create required indexes) ahead of time."""
        for name in self.query_names():
            db.prepare(self.query_sql(name))
