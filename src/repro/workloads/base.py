"""Common infrastructure shared by the TPC-W and SCADr benchmark workloads.

Interactions are modelled as small **DAGs of query steps**: an
:class:`InteractionPlan` is a sequence of *stages*, each stage a set of
steps that are independent of one another (they may only depend on results
of earlier stages).  The same plan can be replayed two ways:

* **serially** (:meth:`Workload.run_plan` with no session) — steps execute
  one after another and their latencies add, the behaviour of the classic
  blocking client API;
* **pipelined** (``run_plan(db, plan, session=...)``) — the steps of a
  stage are submitted to an asynchronous
  :class:`~repro.engine.session.Session` and gathered, so each stage costs
  the *maximum* of its branches instead of the sum, and duplicate point
  reads across branches coalesce.

Both replays issue exactly the same queries with exactly the same
parameters, so per-query operation counts (and the static bounds backing
them) are identical — only the latency composition changes.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from ..engine.database import PiqlDatabase
from ..engine.session import Session


@dataclass
class InteractionResult:
    """Cost of one simulated web interaction (one "page render")."""

    name: str
    latency_seconds: float
    operations: int
    #: Physical RPC batches the interaction issued, and how many of those
    #: were base-record dereference rounds.  Unlike ``operations`` (logical
    #: work, identical across executor configurations) these measure round
    #: structure — the quantity the operator-fusion benchmark compares.
    rpcs: int = 0
    dereference_rounds: int = 0
    query_latencies: Dict[str, float] = field(default_factory=dict)
    #: Key/value operations issued by each step, keyed like
    #: ``query_latencies``.  Serial and pipelined replays of the same plan
    #: produce identical values here (pipelining changes latency
    #: composition, never the work done).
    query_operations: Dict[str, int] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1000.0


@dataclass
class WorkloadScale:
    """How much data to load, expressed per storage node as in the paper.

    The paper keeps the amount of data per server constant while varying the
    number of servers (Section 8.4); the generators multiply the per-node
    quantities by the cluster size.  The default per-node quantities are
    scaled down from the paper's (60,000 SCADr users per node, 75 emulated
    browsers of TPC-W data per node) so experiments complete quickly in the
    simulator; the scaling *shape* does not depend on the absolute sizes.
    """

    storage_nodes: int = 10
    users_per_node: int = 200
    items_total: int = 1000
    seed: int = 42


# ----------------------------------------------------------------------
# Interaction DAGs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryStep:
    """One named read query of an interaction (independent within its stage)."""

    label: str
    sql: str
    parameters: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class WriteStep:
    """One block of writes of an interaction.

    ``write(db, results)`` receives the database view and the results of
    every already-completed step (label -> result object with ``.rows`` for
    query steps), and performs its writes through the normal DML API.
    """

    label: str
    write: Callable[[PiqlDatabase, Dict[str, object]], None]


Step = Union[QueryStep, WriteStep]
#: A stage is either a literal list of steps, or a callable evaluated when
#: the stage is reached — ``builder(db, results) -> steps`` — for stages
#: whose steps depend on earlier results (e.g. TPC-W buy-confirm writes the
#: order lines it just read from the cart).
StageSpec = Union[Sequence[Step], Callable[[PiqlDatabase, Dict[str, object]], Sequence[Step]]]


@dataclass
class InteractionPlan:
    """One web interaction as sequential stages of independent steps."""

    name: str
    stages: List[StageSpec]


class Workload(abc.ABC):
    """A benchmark: schema + data generator + interaction mix."""

    #: Human-readable benchmark name ("TPC-W" or "SCADr").
    name: str = "workload"

    @abc.abstractmethod
    def setup(self, db: PiqlDatabase, scale: WorkloadScale) -> None:
        """Create the schema and bulk load data sized for ``scale``."""

    @abc.abstractmethod
    def query_names(self) -> List[str]:
        """Names of the read queries (the rows of Table 1)."""

    @abc.abstractmethod
    def query_sql(self, name: str) -> str:
        """The PIQL text of one named query."""

    @abc.abstractmethod
    def sample_parameters(self, name: str, rng: random.Random) -> Dict[str, object]:
        """Random parameter bindings for one named query."""

    # ------------------------------------------------------------------
    # Interactions
    # ------------------------------------------------------------------
    def interaction_plan(
        self, db: PiqlDatabase, rng: random.Random
    ) -> InteractionPlan:
        """Sample one web interaction as a DAG of query steps.

        Workloads that model their interactions as plans implement this;
        drivers running in pipelined mode replay the plan through a session
        so independent steps overlap.  The default raises — a workload that
        only overrides :meth:`interaction` cannot be pipelined.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not model its interactions as plans"
        )

    def interaction(
        self, db: PiqlDatabase, rng: random.Random
    ) -> InteractionResult:
        """Run one web interaction serially and report its cost.

        Default implementation: sample a plan and replay it without a
        session (stage latencies add) — the classic blocking behaviour.
        """
        return self.run_plan(db, self.interaction_plan(db, rng))

    def run_plan(
        self,
        db: PiqlDatabase,
        plan: InteractionPlan,
        session: Optional[Session] = None,
    ) -> InteractionResult:
        """Replay one interaction plan, serially or through a session.

        With ``session=None`` every step executes sequentially on the view's
        clock.  With a session, stages of two or more steps are submitted
        and gathered so the stage costs the max of its branches; single-step
        stages take the inline path either way (identical charging).

        The steps of one stage are independent *by contract*: ``results``
        exposes only the results of earlier stages to a stage's steps and
        stage builders, identically in both replay modes (query steps yield
        an object with ``.rows``; write steps yield ``None``).
        """
        client = db.client
        started = client.clock.now
        operations_before = client.stats.operations
        rpcs_before = client.stats.rpcs
        rounds_before = client.stats.dereference_rounds
        results: Dict[str, object] = {}
        query_latencies: Dict[str, float] = {}
        query_operations: Dict[str, int] = {}

        for stage in plan.stages:
            steps = list(stage(db, results) if callable(stage) else stage)
            stage_results: Dict[str, object] = {}
            if session is not None and len(steps) > 1:
                futures = [self._submit_step(session, db, step, results)
                           for step in steps]
                session.gather(*futures)
                for step, future in zip(steps, futures):
                    value = future.result()
                    stage_results[step.label] = (
                        None if isinstance(step, WriteStep) else value
                    )
                    query_latencies[step.label] = future.latency_seconds
                    query_operations[step.label] = future.operations
            else:
                for step in steps:
                    value, latency, operations = self._run_step(db, step, results)
                    stage_results[step.label] = value
                    query_latencies[step.label] = latency
                    query_operations[step.label] = operations
            # Merge only once the stage completes, so same-stage siblings are
            # invisible to one another in the serial replay exactly as they
            # are in the pipelined one.
            results.update(stage_results)

        return InteractionResult(
            name=plan.name,
            latency_seconds=client.clock.now - started,
            operations=client.stats.operations - operations_before,
            rpcs=client.stats.rpcs - rpcs_before,
            dereference_rounds=client.stats.dereference_rounds - rounds_before,
            query_latencies=query_latencies,
            query_operations=query_operations,
        )

    @staticmethod
    def _submit_step(
        session: Session,
        db: PiqlDatabase,
        step: Step,
        results: Dict[str, object],
    ):
        if isinstance(step, QueryStep):
            return session.submit(
                db.prepare(step.sql), dict(step.parameters), label=step.label
            )
        return session.call(
            lambda view, step=step: step.write(view, results), label=step.label
        )

    @staticmethod
    def _run_step(db: PiqlDatabase, step: Step, results: Dict[str, object]):
        """Execute one step inline; returns ``(result, latency, operations)``."""
        if isinstance(step, QueryStep):
            result = db.prepare(step.sql).execute(dict(step.parameters))
            return result, result.latency_seconds, result.operations
        client = db.client
        operations_before = client.stats.operations
        started = client.clock.now
        step.write(db, results)
        return (
            None,
            client.clock.now - started,
            client.stats.operations - operations_before,
        )

    # ------------------------------------------------------------------
    # Convenience helpers shared by the harness
    # ------------------------------------------------------------------
    def run_query(
        self,
        db: PiqlDatabase,
        name: str,
        rng: random.Random,
        parameters: Optional[Dict[str, object]] = None,
    ):
        """Execute one named query with random (or given) parameters."""
        prepared = db.prepare(self.query_sql(name))
        bound = parameters or self.sample_parameters(name, rng)
        return prepared.execute(bound)

    def prepare_all(self, db: PiqlDatabase) -> None:
        """Compile every query (and create required indexes) ahead of time."""
        for name in self.query_names():
            db.prepare(self.query_sql(name))
