"""The TPC-W workload: web interactions and the ordering mix (Section 8.1.1).

Each web interaction is modelled as an :class:`InteractionPlan` — the DAG of
queries needed to render one page of the online bookstore.  Pages whose
queries are independent declare them in one stage, so a pipelined replay
(through an asynchronous session) overlaps them; pages with data
dependencies (buy-confirm writes the order lines it just read from the
cart) use sequential stages.

Browse-style pages additionally carry the TPC-W specification's
*promotional processing*: a banner of randomly chosen items rendered
alongside the page's primary query.  The seed-era interactions collapsed
each page to its primary queries only; the banner lookups are exactly the
kind of independent per-page work the paper's parallel execution argument
(Section 7.1) is about, so they are modelled as explicit parallel branches.

The *ordering* mix is used throughout the paper's experiments because it is
the most update-intensive (roughly 30% of the interactions lead to
updates); the weights below follow the TPC-W specification's ordering mix
restricted to the interactions the paper implements (Best Sellers and Admin
Confirm are omitted).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List

from ...engine.database import PiqlDatabase
from ..base import InteractionPlan, QueryStep, Workload, WorkloadScale, WriteStep
from .data import TpcwDataConfig, TpcwDataGenerator
from .queries import QUERIES, VIEW_QUERIES
from .schema import SUBJECTS, TPCW_DDL, TPCW_VIEWS_DDL

#: Ordering-mix interaction weights (normalised at use).  Derived from the
#: TPC-W specification's ordering mix with the omitted interactions' weight
#: folded into browsing.
ORDERING_MIX: Dict[str, float] = {
    "home": 0.14,
    "new_products": 0.02,
    "product_detail": 0.16,
    "search_by_author": 0.065,
    "search_by_title": 0.065,
    "order_display": 0.01,
    "shopping_cart": 0.135,
    "customer_registration": 0.128,
    "buy_request": 0.127,
    "buy_confirm": 0.10,
}

#: How many promotional-banner items browse pages render (TPC-W §2's
#: promotional processing, scaled down like the rest of the workload).
PROMOTIONAL_ITEMS = 2

#: Ordering-mix weight of the restored Best Sellers interaction (the TPC-W
#: specification's ordering mix gives Best Sellers 0.46%).
BEST_SELLERS_WEIGHT = 0.0046


class TpcwWorkload(Workload):
    """Schema + data + ordering-mix interaction plans for TPC-W.

    ``materialized_views=True`` additionally provisions the
    ``best_sellers_by_subject`` view, restores the Best Sellers web
    interaction (a bounded view-index scan) into the ordering mix, and pays
    the statically bounded view-maintenance cost on every order-line insert.
    The default is off so the paper's original Table 1 / Figure 8 workload
    is reproduced bit-for-bit; the view benchmarks, examples, and the
    Table 1 reproduction enable it.
    """

    name = "TPC-W"

    def __init__(self, mix: Dict[str, float] = None,
                 promotional_items: int = PROMOTIONAL_ITEMS,
                 materialized_views: bool = False):
        self.materialized_views = materialized_views
        mix = dict(ORDERING_MIX if mix is None else mix)
        if materialized_views:
            # Restore Best Sellers into whatever mix was supplied; pass an
            # explicit "best_sellers" weight (0 to exclude it) to override.
            mix.setdefault("best_sellers", BEST_SELLERS_WEIGHT)
        self.mix = {name: weight for name, weight in mix.items() if weight > 0}
        self.promotional_items = promotional_items
        self._unames: List[str] = []
        self._item_ids: List[int] = []
        self._order_ids: List[int] = []
        self._cart_ids: List[int] = []
        self._author_names: List[str] = []
        self._title_words: List[str] = []
        self._order_counter = itertools.count(10_000_000)
        self._customer_counter = itertools.count(10_000_000)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self, db: PiqlDatabase, scale: WorkloadScale) -> None:
        db.execute_ddl(TPCW_DDL)
        if self.materialized_views:
            # Views are declared before the bulk load so the loader maintains
            # them through the latency-free load path as data streams in.
            db.execute_ddl(TPCW_VIEWS_DDL)
        config = TpcwDataConfig(
            customers=scale.users_per_node * scale.storage_nodes,
            items=scale.items_total,
            seed=scale.seed,
        )
        generator = TpcwDataGenerator(config)
        generator.load(db)
        self._unames = generator.customer_unames()
        self._item_ids = generator.item_ids()
        self._order_ids = generator.order_ids()
        self._cart_ids = generator.cart_ids()
        self._author_names = generator.author_last_names()
        self._title_words = generator.title_words()
        self.prepare_all(db)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_names(self) -> List[str]:
        names = list(QUERIES)
        if self.materialized_views:
            names.extend(VIEW_QUERIES)
        return names

    def query_sql(self, name: str) -> str:
        if name in QUERIES:
            return QUERIES[name]
        return VIEW_QUERIES[name]

    def sample_parameters(self, name: str, rng: random.Random) -> Dict[str, object]:
        if name in ("home_wi", "order_display_get_customer",
                    "order_display_get_last_order"):
            return {"uname": rng.choice(self._unames)}
        if name in ("new_products_wi", "best_sellers_wi"):
            return {"subject": rng.choice(SUBJECTS)}
        if name == "product_detail_wi":
            return {"item_id": rng.choice(self._item_ids)}
        if name == "search_by_author_wi":
            return {"author_name": rng.choice(self._author_names)}
        if name == "search_by_title_wi":
            return {"title_word": rng.choice(self._title_words)}
        if name == "order_display_get_order_lines":
            return {"order_id": rng.choice(self._order_ids)}
        if name == "buy_request_wi":
            return {"cart_id": rng.choice(self._cart_ids)}
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Web interactions (plans)
    # ------------------------------------------------------------------
    def interaction_plan(
        self, db: PiqlDatabase, rng: random.Random
    ) -> InteractionPlan:
        """Sample one web interaction from the ordering mix as a plan."""
        names = list(self.mix)
        weights = [self.mix[n] for n in names]
        choice = rng.choices(names, weights=weights, k=1)[0]
        builder = getattr(self, f"_plan_{choice}")
        return builder(db, rng)

    # -- shared page elements -------------------------------------------
    def _query_step(self, label: str, query_name: str, parameters) -> QueryStep:
        return QueryStep(label, self.query_sql(query_name), parameters)

    def _promotional_steps(self, rng: random.Random) -> List[QueryStep]:
        """The page's promotional banner: independent item lookups."""
        return [
            self._query_step(
                f"promo_item_{position}",
                "product_detail_wi",
                {"item_id": rng.choice(self._item_ids)},
            )
            for position in range(1, self.promotional_items + 1)
        ]

    # -- read-dominant interactions ------------------------------------
    def _plan_home(self, db, rng) -> InteractionPlan:
        uname = rng.choice(self._unames)
        return InteractionPlan(
            "home",
            [[self._query_step("home_wi", "home_wi", {"uname": uname}),
              *self._promotional_steps(rng)]],
        )

    def _plan_new_products(self, db, rng) -> InteractionPlan:
        return InteractionPlan(
            "new_products",
            [[self._query_step("new_products_wi", "new_products_wi",
                               {"subject": rng.choice(SUBJECTS)}),
              *self._promotional_steps(rng)]],
        )

    def _plan_product_detail(self, db, rng) -> InteractionPlan:
        return InteractionPlan(
            "product_detail",
            [[self._query_step("product_detail_wi", "product_detail_wi",
                               {"item_id": rng.choice(self._item_ids)})]],
        )

    def _plan_search_by_author(self, db, rng) -> InteractionPlan:
        return InteractionPlan(
            "search_by_author",
            [[self._query_step("search_by_author_wi", "search_by_author_wi",
                               {"author_name": rng.choice(self._author_names)}),
              *self._promotional_steps(rng)]],
        )

    def _plan_search_by_title(self, db, rng) -> InteractionPlan:
        return InteractionPlan(
            "search_by_title",
            [[self._query_step("search_by_title_wi", "search_by_title_wi",
                               {"title_word": rng.choice(self._title_words)}),
              *self._promotional_steps(rng)]],
        )

    def _plan_best_sellers(self, db, rng) -> InteractionPlan:
        """The restored Best Sellers page: a bounded view-index scan."""
        return InteractionPlan(
            "best_sellers",
            [[self._query_step("best_sellers_wi", "best_sellers_wi",
                               {"subject": rng.choice(SUBJECTS)}),
              *self._promotional_steps(rng)]],
        )

    def _plan_order_display(self, db, rng) -> InteractionPlan:
        uname = rng.choice(self._unames)
        order_id = rng.choice(self._order_ids)
        return InteractionPlan(
            "order_display",
            [[
                self._query_step("order_display_get_customer",
                                 "order_display_get_customer", {"uname": uname}),
                self._query_step("order_display_get_last_order",
                                 "order_display_get_last_order", {"uname": uname}),
                self._query_step("order_display_get_order_lines",
                                 "order_display_get_order_lines",
                                 {"order_id": order_id}),
            ]],
        )

    def _plan_buy_request(self, db, rng) -> InteractionPlan:
        uname = rng.choice(self._unames)
        cart_id = rng.choice(self._cart_ids)
        return InteractionPlan(
            "buy_request",
            [[
                self._query_step("order_display_get_customer",
                                 "order_display_get_customer", {"uname": uname}),
                self._query_step("buy_request_wi", "buy_request_wi",
                                 {"cart_id": cart_id}),
            ]],
        )

    # -- updating interactions ------------------------------------------
    def _plan_shopping_cart(self, db, rng) -> InteractionPlan:
        cart_id = rng.choice(self._cart_ids)
        item_id = rng.choice(self._item_ids)
        quantity = rng.randrange(1, 4)

        def add_line(database: PiqlDatabase, _results) -> None:
            database.insert(
                "shopping_cart_line",
                {"SCL_SC_ID": cart_id, "SCL_I_ID": item_id, "SCL_QTY": quantity},
                upsert=True,
            )

        return InteractionPlan(
            "shopping_cart",
            [[WriteStep("shopping_cart", add_line),
              *self._promotional_steps(rng)]],
        )

    def _plan_customer_registration(self, db, rng) -> InteractionPlan:
        index = next(self._customer_counter)
        uname = f"newcust{index:09d}"

        def register(database: PiqlDatabase, _results) -> None:
            database.insert(
                "customer",
                {
                    "C_UNAME": uname,
                    "C_PASSWD": "pw",
                    "C_FNAME": "new",
                    "C_LNAME": "customer",
                    "C_EMAIL": f"{uname}@example.com",
                    "C_PHONE": "510-555-0000",
                    "C_ADDR_ID": 1,
                    "C_DISCOUNT": 0.0,
                    "C_BALANCE": 0.0,
                    "C_YTD_PMT": 0.0,
                    "C_SINCE": 1_330_000_000,
                    "C_LAST_VISIT": 1_330_000_000,
                },
                upsert=True,
            )

        self._unames.append(uname)
        return InteractionPlan(
            "customer_registration",
            [[WriteStep("customer_registration", register)]],
        )

    def _plan_buy_confirm(self, db, rng) -> InteractionPlan:
        """Create an order from a cart: the most write-heavy interaction.

        Stage 1 reads the cart; stage 2 — built once the cart rows are known
        — issues three independent write branches (the order row, its lines
        plus the payment record, and the cart cleanup TPC-W mandates once an
        order is placed).
        """
        uname = rng.choice(self._unames)
        order_id = next(self._order_counter)
        cart_id = rng.choice(self._cart_ids)
        read_stage = [
            self._query_step("buy_request_wi", "buy_request_wi",
                             {"cart_id": cart_id})
        ]

        def write_stage(database: PiqlDatabase, results):
            cart_rows = results["buy_request_wi"].rows
            date_time = 1_330_000_000 + order_id

            def place_order(db_: PiqlDatabase, _results) -> None:
                db_.insert(
                    "orders",
                    {
                        "O_ID": order_id,
                        "O_C_UNAME": uname,
                        "O_DATE_TIME": date_time,
                        "O_SUB_TOTAL": 100.0,
                        "O_TAX": 8.25,
                        "O_TOTAL": 108.25,
                        "O_SHIP_TYPE": "GROUND",
                        "O_SHIP_DATE": date_time + 86_400,
                        "O_SHIP_ADDR_ID": 1,
                        "O_STATUS": "PENDING",
                    },
                    upsert=True,
                )

            def record_lines(db_: PiqlDatabase, _results) -> None:
                for line_number, row in enumerate(cart_rows[:10], start=1):
                    db_.insert(
                        "order_line",
                        {
                            "OL_O_ID": order_id,
                            "OL_ID": line_number,
                            "OL_I_ID": row.get("SCL_I_ID", rng.choice(self._item_ids)),
                            "OL_QTY": row.get("SCL_QTY", 1),
                            "OL_DISCOUNT": 0.0,
                            "OL_COMMENT": "",
                        },
                        upsert=True,
                    )
                db_.insert(
                    "cc_xacts",
                    {
                        "CX_O_ID": order_id,
                        "CX_TYPE": "VISA",
                        "CX_NUM": "4111-0000",
                        "CX_NAME": uname,
                        "CX_EXPIRE": 1_400_000_000,
                        "CX_XACT_AMT": 108.25,
                        "CX_XACT_DATE": date_time,
                        "CX_CO_ID": 1,
                    },
                    upsert=True,
                )

            def clear_cart(db_: PiqlDatabase, _results) -> None:
                # TPC-W empties the cart once the order is placed.  Without
                # this the cart grows with every SHOPPING_CART interaction
                # and the per-interaction cost of reading it climbs for the
                # whole run, destabilising long serving simulations.
                for row in cart_rows:
                    if "SCL_I_ID" in row:
                        db_.delete("shopping_cart_line", [cart_id, row["SCL_I_ID"]])
                self._order_ids.append(order_id)

            return [
                WriteStep("place_order", place_order),
                WriteStep("record_lines", record_lines),
                WriteStep("clear_cart", clear_cart),
            ]

        return InteractionPlan("buy_confirm", [read_stage, write_stage])
