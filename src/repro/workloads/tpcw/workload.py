"""The TPC-W workload: web interactions and the ordering mix (Section 8.1.1).

Each web interaction executes the queries needed to render one page of the
online bookstore.  The *ordering* mix is used throughout the paper's
experiments because it is the most update-intensive (roughly 30% of the
interactions lead to updates); the weights below follow the TPC-W
specification's ordering mix restricted to the interactions the paper
implements (Best Sellers and Admin Confirm are omitted).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List

from ...engine.database import PiqlDatabase
from ..base import InteractionResult, Workload, WorkloadScale
from .data import TpcwDataConfig, TpcwDataGenerator
from .queries import QUERIES
from .schema import SUBJECTS, TPCW_DDL

#: Ordering-mix interaction weights (normalised at use).  Derived from the
#: TPC-W specification's ordering mix with the omitted interactions' weight
#: folded into browsing.
ORDERING_MIX: Dict[str, float] = {
    "home": 0.14,
    "new_products": 0.02,
    "product_detail": 0.16,
    "search_by_author": 0.065,
    "search_by_title": 0.065,
    "order_display": 0.01,
    "shopping_cart": 0.135,
    "customer_registration": 0.128,
    "buy_request": 0.127,
    "buy_confirm": 0.10,
}


class TpcwWorkload(Workload):
    """Schema + data + ordering-mix interactions for TPC-W."""

    name = "TPC-W"

    def __init__(self, mix: Dict[str, float] = None):
        self.mix = dict(mix or ORDERING_MIX)
        self._unames: List[str] = []
        self._item_ids: List[int] = []
        self._order_ids: List[int] = []
        self._cart_ids: List[int] = []
        self._author_names: List[str] = []
        self._title_words: List[str] = []
        self._order_counter = itertools.count(10_000_000)
        self._customer_counter = itertools.count(10_000_000)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self, db: PiqlDatabase, scale: WorkloadScale) -> None:
        db.execute_ddl(TPCW_DDL)
        config = TpcwDataConfig(
            customers=scale.users_per_node * scale.storage_nodes,
            items=scale.items_total,
            seed=scale.seed,
        )
        generator = TpcwDataGenerator(config)
        generator.load(db)
        self._unames = generator.customer_unames()
        self._item_ids = generator.item_ids()
        self._order_ids = generator.order_ids()
        self._cart_ids = generator.cart_ids()
        self._author_names = generator.author_last_names()
        self._title_words = generator.title_words()
        self.prepare_all(db)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_names(self) -> List[str]:
        return list(QUERIES)

    def query_sql(self, name: str) -> str:
        return QUERIES[name]

    def sample_parameters(self, name: str, rng: random.Random) -> Dict[str, object]:
        if name in ("home_wi", "order_display_get_customer",
                    "order_display_get_last_order"):
            return {"uname": rng.choice(self._unames)}
        if name == "new_products_wi":
            return {"subject": rng.choice(SUBJECTS)}
        if name == "product_detail_wi":
            return {"item_id": rng.choice(self._item_ids)}
        if name == "search_by_author_wi":
            return {"author_name": rng.choice(self._author_names)}
        if name == "search_by_title_wi":
            return {"title_word": rng.choice(self._title_words)}
        if name == "order_display_get_order_lines":
            return {"order_id": rng.choice(self._order_ids)}
        if name == "buy_request_wi":
            return {"cart_id": rng.choice(self._cart_ids)}
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Web interactions
    # ------------------------------------------------------------------
    def interaction(self, db: PiqlDatabase, rng: random.Random) -> InteractionResult:
        """Run one web interaction chosen from the ordering mix."""
        names = list(self.mix)
        weights = [self.mix[n] for n in names]
        choice = rng.choices(names, weights=weights, k=1)[0]
        handler = getattr(self, f"_wi_{choice}")
        return handler(db, rng)

    # -- read-dominant interactions ------------------------------------
    def _run_queries(
        self, db: PiqlDatabase, rng: random.Random, name: str, queries: List[tuple]
    ) -> InteractionResult:
        latencies: Dict[str, float] = {}
        operations = 0
        total = 0.0
        for query_name, parameters in queries:
            result = db.prepare(self.query_sql(query_name)).execute(parameters)
            latencies[query_name] = result.latency_seconds
            operations += result.operations
            total += result.latency_seconds
        return InteractionResult(
            name=name,
            latency_seconds=total,
            operations=operations,
            query_latencies=latencies,
        )

    def _wi_home(self, db: PiqlDatabase, rng: random.Random) -> InteractionResult:
        uname = rng.choice(self._unames)
        return self._run_queries(db, rng, "home", [("home_wi", {"uname": uname})])

    def _wi_new_products(self, db, rng) -> InteractionResult:
        return self._run_queries(
            db, rng, "new_products",
            [("new_products_wi", {"subject": rng.choice(SUBJECTS)})],
        )

    def _wi_product_detail(self, db, rng) -> InteractionResult:
        return self._run_queries(
            db, rng, "product_detail",
            [("product_detail_wi", {"item_id": rng.choice(self._item_ids)})],
        )

    def _wi_search_by_author(self, db, rng) -> InteractionResult:
        return self._run_queries(
            db, rng, "search_by_author",
            [("search_by_author_wi", {"author_name": rng.choice(self._author_names)})],
        )

    def _wi_search_by_title(self, db, rng) -> InteractionResult:
        return self._run_queries(
            db, rng, "search_by_title",
            [("search_by_title_wi", {"title_word": rng.choice(self._title_words)})],
        )

    def _wi_order_display(self, db, rng) -> InteractionResult:
        uname = rng.choice(self._unames)
        order_id = rng.choice(self._order_ids)
        return self._run_queries(
            db, rng, "order_display",
            [
                ("order_display_get_customer", {"uname": uname}),
                ("order_display_get_last_order", {"uname": uname}),
                ("order_display_get_order_lines", {"order_id": order_id}),
            ],
        )

    def _wi_buy_request(self, db, rng) -> InteractionResult:
        uname = rng.choice(self._unames)
        cart_id = rng.choice(self._cart_ids)
        return self._run_queries(
            db, rng, "buy_request",
            [
                ("order_display_get_customer", {"uname": uname}),
                ("buy_request_wi", {"cart_id": cart_id}),
            ],
        )

    # -- updating interactions ------------------------------------------
    def _timed_writes(self, db: PiqlDatabase, name: str, write) -> InteractionResult:
        stats_before = db.client.stats.snapshot()
        before = db.client.clock.now
        write()
        latency = db.client.clock.now - before
        operations = db.client.stats.snapshot().delta(stats_before).operations
        return InteractionResult(
            name=name,
            latency_seconds=latency,
            operations=operations,
            query_latencies={name: latency},
        )

    def _wi_shopping_cart(self, db, rng) -> InteractionResult:
        cart_id = rng.choice(self._cart_ids)
        item_id = rng.choice(self._item_ids)

        def write() -> None:
            db.insert(
                "shopping_cart_line",
                {"SCL_SC_ID": cart_id, "SCL_I_ID": item_id, "SCL_QTY": rng.randrange(1, 4)},
                upsert=True,
            )

        return self._timed_writes(db, "shopping_cart", write)

    def _wi_customer_registration(self, db, rng) -> InteractionResult:
        index = next(self._customer_counter)
        uname = f"newcust{index:09d}"

        def write() -> None:
            db.insert(
                "customer",
                {
                    "C_UNAME": uname,
                    "C_PASSWD": "pw",
                    "C_FNAME": "new",
                    "C_LNAME": "customer",
                    "C_EMAIL": f"{uname}@example.com",
                    "C_PHONE": "510-555-0000",
                    "C_ADDR_ID": 1,
                    "C_DISCOUNT": 0.0,
                    "C_BALANCE": 0.0,
                    "C_YTD_PMT": 0.0,
                    "C_SINCE": 1_330_000_000,
                    "C_LAST_VISIT": 1_330_000_000,
                },
                upsert=True,
            )

        self._unames.append(uname)
        return self._timed_writes(db, "customer_registration", write)

    def _wi_buy_confirm(self, db, rng) -> InteractionResult:
        """Create an order from a cart: the most write-heavy interaction."""
        uname = rng.choice(self._unames)
        order_id = next(self._order_counter)
        cart_id = rng.choice(self._cart_ids)
        cart_result = db.prepare(self.query_sql("buy_request_wi")).execute(
            cart_id=cart_id
        )

        def write() -> None:
            date_time = 1_330_000_000 + order_id
            db.insert(
                "orders",
                {
                    "O_ID": order_id,
                    "O_C_UNAME": uname,
                    "O_DATE_TIME": date_time,
                    "O_SUB_TOTAL": 100.0,
                    "O_TAX": 8.25,
                    "O_TOTAL": 108.25,
                    "O_SHIP_TYPE": "GROUND",
                    "O_SHIP_DATE": date_time + 86_400,
                    "O_SHIP_ADDR_ID": 1,
                    "O_STATUS": "PENDING",
                },
                upsert=True,
            )
            for line_number, row in enumerate(cart_result.rows[:10], start=1):
                db.insert(
                    "order_line",
                    {
                        "OL_O_ID": order_id,
                        "OL_ID": line_number,
                        "OL_I_ID": row.get("SCL_I_ID", rng.choice(self._item_ids)),
                        "OL_QTY": row.get("SCL_QTY", 1),
                        "OL_DISCOUNT": 0.0,
                        "OL_COMMENT": "",
                    },
                    upsert=True,
                )
            db.insert(
                "cc_xacts",
                {
                    "CX_O_ID": order_id,
                    "CX_TYPE": "VISA",
                    "CX_NUM": "4111-0000",
                    "CX_NAME": uname,
                    "CX_EXPIRE": 1_400_000_000,
                    "CX_XACT_AMT": 108.25,
                    "CX_XACT_DATE": date_time,
                    "CX_CO_ID": 1,
                },
                upsert=True,
            )
            # TPC-W empties the cart once the order is placed.  Without this
            # the cart grows with every SHOPPING_CART interaction and the
            # per-interaction cost of reading it climbs for the whole run,
            # destabilising long serving simulations.
            for row in cart_result.rows:
                if "SCL_I_ID" in row:
                    db.delete("shopping_cart_line", [cart_id, row["SCL_I_ID"]])

        result = self._timed_writes(db, "buy_confirm", write)
        result.latency_seconds += cart_result.latency_seconds
        result.operations += cart_result.operations
        result.query_latencies["buy_request_wi"] = cart_result.latency_seconds
        self._order_ids.append(order_id)
        return result
