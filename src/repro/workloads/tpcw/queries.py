"""The TPC-W customer web-interaction queries (the rows of Table 1).

The SQL here is the PIQL form of each query after the modifications listed
in Table 1: ``LIKE`` predicates are rewritten as tokenised keyword searches,
and the shopping-cart / order-line relationships carry a cardinality limit
in the schema.  The paper omits the analytical Best Sellers interaction
because it has no bounded base-table plan; this reproduction restores it as
``best_sellers_wi``, served by the ``best_sellers_by_subject`` materialized
view (see :mod:`repro.views`) when the workload enables views.
"""

from __future__ import annotations

from typing import Dict

HOME_WI = """
SELECT C_FNAME, C_LNAME, C_EMAIL, C_DISCOUNT
FROM customer
WHERE C_UNAME = <uname>
"""

NEW_PRODUCTS_WI = """
SELECT i.I_ID, i.I_TITLE, i.I_PUB_DATE, a.A_FNAME, a.A_LNAME
FROM item i JOIN author a
WHERE i.I_SUBJECT LIKE [1: subject]
  AND a.A_ID = i.I_A_ID
ORDER BY i.I_PUB_DATE DESC
LIMIT 50
"""

PRODUCT_DETAIL_WI = """
SELECT i.*, a.A_FNAME, a.A_LNAME
FROM item i JOIN author a
WHERE i.I_ID = <item_id>
  AND a.A_ID = i.I_A_ID
"""

SEARCH_BY_AUTHOR_WI = """
SELECT i.I_TITLE, i.I_ID, a.A_FNAME, a.A_LNAME
FROM author a JOIN item i
WHERE a.A_LNAME LIKE [1: author_name]
  AND i.I_A_ID = a.A_ID
ORDER BY i.I_TITLE ASC
LIMIT 50
"""

SEARCH_BY_TITLE_WI = """
SELECT i.I_TITLE, i.I_ID, i.I_A_ID
FROM item i
WHERE i.I_TITLE LIKE [1: title_word]
ORDER BY i.I_TITLE ASC
LIMIT 50
"""

ORDER_DISPLAY_GET_CUSTOMER = """
SELECT *
FROM customer
WHERE C_UNAME = <uname>
"""

ORDER_DISPLAY_GET_LAST_ORDER = """
SELECT *
FROM orders
WHERE O_C_UNAME = <uname>
ORDER BY O_DATE_TIME DESC
LIMIT 1
"""

ORDER_DISPLAY_GET_ORDER_LINES = """
SELECT ol.*, i.I_TITLE, i.I_COST
FROM order_line ol JOIN item i
WHERE ol.OL_O_ID = <order_id>
  AND i.I_ID = ol.OL_I_ID
"""

BUY_REQUEST_WI = """
SELECT scl.*, i.I_TITLE, i.I_COST, i.I_SRP
FROM shopping_cart_line scl JOIN item i
WHERE scl.SCL_SC_ID = <cart_id>
  AND i.I_ID = scl.SCL_I_ID
"""

#: The restored Best Sellers interaction: total quantity sold per item in a
#: subject, top 50.  Unbounded over base tables (it ranks every item ever
#: ordered); the optimizer's precomputation phase rewrites it into a bounded
#: scan of the ``best_sellers_by_subject`` view's ordered index.
BEST_SELLERS_WI = """
SELECT ol.OL_I_ID, SUM(ol.OL_QTY) AS total_sold
FROM order_line ol JOIN item i
WHERE i.I_ID = ol.OL_I_ID
  AND i.I_SUBJECT = [1: subject]
GROUP BY ol.OL_I_ID
ORDER BY total_sold DESC
LIMIT 50
"""

#: Query name -> SQL, following the order of Table 1 in the paper.
QUERIES: Dict[str, str] = {
    "home_wi": HOME_WI,
    "new_products_wi": NEW_PRODUCTS_WI,
    "product_detail_wi": PRODUCT_DETAIL_WI,
    "search_by_author_wi": SEARCH_BY_AUTHOR_WI,
    "search_by_title_wi": SEARCH_BY_TITLE_WI,
    "order_display_get_customer": ORDER_DISPLAY_GET_CUSTOMER,
    "order_display_get_last_order": ORDER_DISPLAY_GET_LAST_ORDER,
    "order_display_get_order_lines": ORDER_DISPLAY_GET_ORDER_LINES,
    "buy_request_wi": BUY_REQUEST_WI,
}

#: Queries served by materialized views; included in the workload's query
#: list only when the workload is constructed with views enabled.
VIEW_QUERIES: Dict[str, str] = {
    "best_sellers_wi": BEST_SELLERS_WI,
}

#: Table 1's "Query Modifications" column for reporting purposes.  The
#: paper's table silently omits Best Sellers; it is listed here with the
#: modification that makes it executable.
QUERY_MODIFICATIONS: Dict[str, str] = {
    "home_wi": "-",
    "new_products_wi": "Tokenized search",
    "product_detail_wi": "-",
    "search_by_author_wi": "Tokenized search; cardinality limit on authors per name",
    "search_by_title_wi": "Tokenized search",
    "order_display_get_customer": "-",
    "order_display_get_last_order": "-",
    "order_display_get_order_lines": "Cardinality constraint on #order lines",
    "buy_request_wi": "Cardinality constraint on #items in cart",
    "best_sellers_wi": "Precomputed via materialized view (best_sellers_by_subject)",
}
