"""TPC-W schema (customer-facing subset, Section 8.1.1).

The paper evaluates the user-facing web interactions of TPC-W, an online
bookstore.  This module declares the tables those interactions touch.  Two
PIQL-specific schema elements appear:

* a ``CARDINALITY LIMIT`` on the number of lines in a shopping cart — the
  paper notes this is "the only real change required from the developer",
  and that TPC-W's specification already allows such a limit; and
* the same limit on order lines per order, which follows from the cart limit
  (an order is created from a cart at BuyConfirm time).

The paper omits the analytical "Best Sellers" and "Admin Confirm"
interactions (Section 8.2) because no bounded base-table plan exists for
them — and names *precomputation* as the intended escape hatch.  This
reproduction supplies that hatch: ``TPCW_VIEWS_DDL`` declares the
``best_sellers_by_subject`` materialized view (total quantity sold per item,
top ``BEST_SELLERS_LIMIT`` per subject, maintained incrementally on
order-line inserts), which restores the Best Sellers web interaction as a
bounded view-index scan.
"""

from __future__ import annotations

#: Maximum number of distinct items in a shopping cart / order.  TPC-W's
#: specification caps the cart at 100 distinct items.
MAX_CART_LINES = 100

#: How many best-selling items per subject the materialized view keeps (the
#: TPC-W Best Sellers page shows the top 50).
BEST_SELLERS_LIMIT = 50

#: Materialized views backing the restored analytical interactions.  The
#: ranking partitions by subject (the leading GROUP BY column); order-line
#: inserts maintain the per-(subject, item) quantity counters and the
#: bounded top-k view index at a constant per-write cost.
TPCW_VIEWS_DDL = f"""
CREATE MATERIALIZED VIEW best_sellers_by_subject AS
SELECT i.I_SUBJECT, ol.OL_I_ID, SUM(ol.OL_QTY) AS total_sold
FROM order_line ol JOIN item i
WHERE i.I_ID = ol.OL_I_ID
GROUP BY i.I_SUBJECT, ol.OL_I_ID
ORDER BY total_sold DESC LIMIT {BEST_SELLERS_LIMIT}
"""

TPCW_DDL = f"""
CREATE TABLE country (
    CO_ID        INT,
    CO_NAME      VARCHAR(50),
    CO_EXCHANGE  FLOAT,
    CO_CURRENCY  VARCHAR(18),
    PRIMARY KEY (CO_ID)
);

CREATE TABLE address (
    ADDR_ID      INT,
    ADDR_STREET1 VARCHAR(40),
    ADDR_STREET2 VARCHAR(40),
    ADDR_CITY    VARCHAR(30),
    ADDR_STATE   VARCHAR(20),
    ADDR_ZIP     VARCHAR(10),
    ADDR_CO_ID   INT,
    PRIMARY KEY (ADDR_ID),
    FOREIGN KEY (ADDR_CO_ID) REFERENCES country (CO_ID)
);

CREATE TABLE customer (
    C_UNAME      VARCHAR(20),
    C_PASSWD     VARCHAR(20),
    C_FNAME      VARCHAR(17),
    C_LNAME      VARCHAR(17),
    C_EMAIL      VARCHAR(50),
    C_PHONE      VARCHAR(16),
    C_ADDR_ID    INT,
    C_DISCOUNT   FLOAT,
    C_BALANCE    FLOAT,
    C_YTD_PMT    FLOAT,
    C_SINCE      INT,
    C_LAST_VISIT INT,
    PRIMARY KEY (C_UNAME),
    FOREIGN KEY (C_ADDR_ID) REFERENCES address (ADDR_ID)
);

CREATE TABLE author (
    A_ID         INT,
    A_FNAME      VARCHAR(20),
    A_LNAME      VARCHAR(20),
    A_MNAME      VARCHAR(20),
    A_BIO        VARCHAR(255),
    PRIMARY KEY (A_ID),
    CARDINALITY LIMIT 100 (A_LNAME)
);

CREATE TABLE item (
    I_ID         INT,
    I_TITLE      VARCHAR(60),
    I_A_ID       INT,
    I_PUB_DATE   INT,
    I_PUBLISHER  VARCHAR(60),
    I_SUBJECT    VARCHAR(60),
    I_DESC       VARCHAR(255),
    I_SRP        FLOAT,
    I_COST       FLOAT,
    I_STOCK      INT,
    I_PAGE       INT,
    I_BACKING    VARCHAR(15),
    PRIMARY KEY (I_ID),
    FOREIGN KEY (I_A_ID) REFERENCES author (A_ID)
);

CREATE TABLE orders (
    O_ID           INT,
    O_C_UNAME      VARCHAR(20),
    O_DATE_TIME    INT,
    O_SUB_TOTAL    FLOAT,
    O_TAX          FLOAT,
    O_TOTAL        FLOAT,
    O_SHIP_TYPE    VARCHAR(10),
    O_SHIP_DATE    INT,
    O_SHIP_ADDR_ID INT,
    O_STATUS       VARCHAR(15),
    PRIMARY KEY (O_ID),
    FOREIGN KEY (O_C_UNAME) REFERENCES customer (C_UNAME),
    FOREIGN KEY (O_SHIP_ADDR_ID) REFERENCES address (ADDR_ID)
);

CREATE TABLE order_line (
    OL_O_ID      INT,
    OL_ID        INT,
    OL_I_ID      INT,
    OL_QTY       INT,
    OL_DISCOUNT  FLOAT,
    OL_COMMENT   VARCHAR(110),
    PRIMARY KEY (OL_O_ID, OL_ID),
    FOREIGN KEY (OL_O_ID) REFERENCES orders (O_ID),
    FOREIGN KEY (OL_I_ID) REFERENCES item (I_ID),
    CARDINALITY LIMIT {MAX_CART_LINES} (OL_O_ID)
);

CREATE TABLE cc_xacts (
    CX_O_ID      INT,
    CX_TYPE      VARCHAR(10),
    CX_NUM       VARCHAR(20),
    CX_NAME      VARCHAR(30),
    CX_EXPIRE    INT,
    CX_XACT_AMT  FLOAT,
    CX_XACT_DATE INT,
    CX_CO_ID     INT,
    PRIMARY KEY (CX_O_ID),
    FOREIGN KEY (CX_O_ID) REFERENCES orders (O_ID)
);

CREATE TABLE shopping_cart (
    SC_ID        INT,
    SC_TIME      INT,
    SC_C_UNAME   VARCHAR(20),
    PRIMARY KEY (SC_ID)
);

CREATE TABLE shopping_cart_line (
    SCL_SC_ID    INT,
    SCL_I_ID     INT,
    SCL_QTY      INT,
    PRIMARY KEY (SCL_SC_ID, SCL_I_ID),
    FOREIGN KEY (SCL_SC_ID) REFERENCES shopping_cart (SC_ID),
    FOREIGN KEY (SCL_I_ID) REFERENCES item (I_ID),
    CARDINALITY LIMIT {MAX_CART_LINES} (SCL_SC_ID)
)
"""

#: The 16 book subjects of the TPC-W specification, used both by the data
#: generator and by the New Products / Search by Subject interactions.
SUBJECTS = [
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NONFICTION", "PARENTING", "POLITICS", "REFERENCE",
]
