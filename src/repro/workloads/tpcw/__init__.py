"""TPC-W: the paper's online-bookstore benchmark (customer-facing subset)."""

from .data import TpcwDataConfig, TpcwDataGenerator
from .queries import QUERIES, QUERY_MODIFICATIONS
from .schema import MAX_CART_LINES, SUBJECTS, TPCW_DDL
from .workload import ORDERING_MIX, TpcwWorkload

__all__ = [
    "MAX_CART_LINES",
    "ORDERING_MIX",
    "QUERIES",
    "QUERY_MODIFICATIONS",
    "SUBJECTS",
    "TPCW_DDL",
    "TpcwDataConfig",
    "TpcwDataGenerator",
    "TpcwWorkload",
]
