"""Synthetic data generator for the TPC-W customer-facing subset.

The paper loads "75 Emulated Browsers' worth of user data for each storage
node" while holding the number of items constant at 10,000 (Section 8.4.1).
The generator follows the same layout — customer-derived data grows with the
cluster, the catalogue (items, authors) stays fixed — with configurable,
scaled-down absolute sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List

from ...engine.database import PiqlDatabase
from .schema import SUBJECTS

_FIRST_NAMES = [
    "ada", "grace", "alan", "edsger", "barbara", "donald", "leslie", "tim",
    "radia", "vint", "frances", "john", "margaret", "dennis", "ken", "linus",
]
_LAST_NAMES = [
    "lovelace", "hopper", "turing", "dijkstra", "liskov", "knuth", "lamport",
    "berners", "perlman", "cerf", "allen", "backus", "hamilton", "ritchie",
    "thompson", "torvalds",
]
_TITLE_WORDS = [
    "distributed", "systems", "cloud", "scalable", "database", "query",
    "storage", "consistency", "latency", "throughput", "adventure", "garden",
    "midnight", "river", "mountain", "secret", "journey", "algorithm",
    "performance", "design",
]
_CITIES = ["berkeley", "seattle", "austin", "boston", "chicago", "portland"]


@dataclass
class TpcwDataConfig:
    """Sizing knobs for the TPC-W dataset."""

    customers: int = 2000
    items: int = 1000
    orders_per_customer: int = 2
    lines_per_order: int = 3
    cart_lines_per_customer: int = 3
    countries: int = 20
    seed: int = 42

    @property
    def authors(self) -> int:
        return max(1, self.items // 4)

    def customer_uname(self, index: int) -> str:
        return f"cust{index:08d}"


class TpcwDataGenerator:
    """Generates and bulk loads the TPC-W dataset."""

    def __init__(self, config: TpcwDataConfig):
        self.config = config
        self._rng = random.Random(config.seed)

    # ------------------------------------------------------------------
    # Row generators
    # ------------------------------------------------------------------
    def countries(self) -> Iterator[Dict[str, object]]:
        for index in range(self.config.countries):
            yield {
                "CO_ID": index + 1,
                "CO_NAME": f"country{index + 1}",
                "CO_EXCHANGE": 1.0 + index / 10.0,
                "CO_CURRENCY": "credits",
            }

    def addresses(self) -> Iterator[Dict[str, object]]:
        for index in range(self.config.customers):
            yield {
                "ADDR_ID": index + 1,
                "ADDR_STREET1": f"{index + 1} main street",
                "ADDR_STREET2": "",
                "ADDR_CITY": self._rng.choice(_CITIES),
                "ADDR_STATE": "CA",
                "ADDR_ZIP": f"{94700 + index % 100}",
                "ADDR_CO_ID": self._rng.randrange(self.config.countries) + 1,
            }

    def customers(self) -> Iterator[Dict[str, object]]:
        for index in range(self.config.customers):
            yield {
                "C_UNAME": self.config.customer_uname(index),
                "C_PASSWD": f"pw{index % 1009}",
                "C_FNAME": self._rng.choice(_FIRST_NAMES),
                "C_LNAME": self._rng.choice(_LAST_NAMES),
                "C_EMAIL": f"user{index}@example.com",
                "C_PHONE": f"510-555-{index % 10000:04d}",
                "C_ADDR_ID": index + 1,
                "C_DISCOUNT": round(self._rng.random() / 2, 2),
                "C_BALANCE": 0.0,
                "C_YTD_PMT": round(self._rng.random() * 500, 2),
                "C_SINCE": 1_200_000_000 + index,
                "C_LAST_VISIT": 1_300_000_000 + index,
            }

    def authors(self) -> Iterator[Dict[str, object]]:
        for index in range(self.config.authors):
            yield {
                "A_ID": index + 1,
                "A_FNAME": self._rng.choice(_FIRST_NAMES),
                "A_LNAME": self._rng.choice(_LAST_NAMES),
                "A_MNAME": "",
                "A_BIO": "wrote several well regarded books",
            }

    def items(self) -> Iterator[Dict[str, object]]:
        for index in range(self.config.items):
            words = self._rng.sample(_TITLE_WORDS, 3)
            yield {
                "I_ID": index + 1,
                "I_TITLE": " ".join(words),
                "I_A_ID": self._rng.randrange(self.config.authors) + 1,
                "I_PUB_DATE": 1_000_000_000 + self._rng.randrange(300_000_000),
                "I_PUBLISHER": "piql press",
                "I_SUBJECT": self._rng.choice(SUBJECTS),
                "I_DESC": "a fine book about " + words[0],
                "I_SRP": round(10 + self._rng.random() * 90, 2),
                "I_COST": round(5 + self._rng.random() * 80, 2),
                "I_STOCK": self._rng.randrange(10, 1000),
                "I_PAGE": self._rng.randrange(100, 900),
                "I_BACKING": self._rng.choice(["HARDBACK", "PAPERBACK", "AUDIO"]),
            }

    def orders_and_lines(self):
        """Yield (orders, order_lines, cc_xacts) row iterators as lists."""
        orders: List[Dict[str, object]] = []
        lines: List[Dict[str, object]] = []
        xacts: List[Dict[str, object]] = []
        order_id = 0
        for index in range(self.config.customers):
            uname = self.config.customer_uname(index)
            for sequence in range(self.config.orders_per_customer):
                order_id += 1
                date_time = 1_310_000_000 + index * 100 + sequence
                total = 0.0
                for line_number in range(1, self.config.lines_per_order + 1):
                    item_id = self._rng.randrange(self.config.items) + 1
                    quantity = self._rng.randrange(1, 4)
                    total += quantity * 20.0
                    lines.append(
                        {
                            "OL_O_ID": order_id,
                            "OL_ID": line_number,
                            "OL_I_ID": item_id,
                            "OL_QTY": quantity,
                            "OL_DISCOUNT": 0.0,
                            "OL_COMMENT": "",
                        }
                    )
                orders.append(
                    {
                        "O_ID": order_id,
                        "O_C_UNAME": uname,
                        "O_DATE_TIME": date_time,
                        "O_SUB_TOTAL": total,
                        "O_TAX": round(total * 0.0825, 2),
                        "O_TOTAL": round(total * 1.0825, 2),
                        "O_SHIP_TYPE": "GROUND",
                        "O_SHIP_DATE": date_time + 86_400,
                        "O_SHIP_ADDR_ID": index + 1,
                        "O_STATUS": "SHIPPED",
                    }
                )
                xacts.append(
                    {
                        "CX_O_ID": order_id,
                        "CX_TYPE": "VISA",
                        "CX_NUM": f"4111-{order_id % 10000:04d}",
                        "CX_NAME": uname,
                        "CX_EXPIRE": 1_400_000_000,
                        "CX_XACT_AMT": round(total * 1.0825, 2),
                        "CX_XACT_DATE": date_time,
                        "CX_CO_ID": 1,
                    }
                )
        return orders, lines, xacts

    def carts_and_lines(self):
        carts: List[Dict[str, object]] = []
        lines: List[Dict[str, object]] = []
        for index in range(self.config.customers):
            cart_id = index + 1
            carts.append(
                {
                    "SC_ID": cart_id,
                    "SC_TIME": 1_320_000_000 + index,
                    "SC_C_UNAME": self.config.customer_uname(index),
                }
            )
            item_ids = self._rng.sample(
                range(1, self.config.items + 1),
                min(self.config.cart_lines_per_customer, self.config.items),
            )
            for item_id in item_ids:
                lines.append(
                    {
                        "SCL_SC_ID": cart_id,
                        "SCL_I_ID": item_id,
                        "SCL_QTY": self._rng.randrange(1, 4),
                    }
                )
        return carts, lines

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, db: PiqlDatabase) -> Dict[str, int]:
        """Bulk load the full dataset; returns per-table row counts."""
        counts = {
            "country": db.bulk_load("country", self.countries()),
            "address": db.bulk_load("address", self.addresses()),
            "customer": db.bulk_load("customer", self.customers()),
            "author": db.bulk_load("author", self.authors()),
            "item": db.bulk_load("item", self.items()),
        }
        orders, order_lines, xacts = self.orders_and_lines()
        counts["orders"] = db.bulk_load("orders", orders)
        counts["order_line"] = db.bulk_load("order_line", order_lines)
        counts["cc_xacts"] = db.bulk_load("cc_xacts", xacts)
        carts, cart_lines = self.carts_and_lines()
        counts["shopping_cart"] = db.bulk_load("shopping_cart", carts)
        counts["shopping_cart_line"] = db.bulk_load("shopping_cart_line", cart_lines)
        return counts

    # ------------------------------------------------------------------
    # Parameter pools for the workload
    # ------------------------------------------------------------------
    def customer_unames(self) -> List[str]:
        return [self.config.customer_uname(i) for i in range(self.config.customers)]

    def item_ids(self) -> List[int]:
        return list(range(1, self.config.items + 1))

    def order_ids(self) -> List[int]:
        return list(
            range(1, self.config.customers * self.config.orders_per_customer + 1)
        )

    def cart_ids(self) -> List[int]:
        return list(range(1, self.config.customers + 1))

    def author_last_names(self) -> List[str]:
        return list(_LAST_NAMES)

    def title_words(self) -> List[str]:
        return list(_TITLE_WORDS)
