"""Benchmark workloads used in the paper's evaluation: TPC-W and SCADr."""

from .base import (
    InteractionPlan,
    InteractionResult,
    QueryStep,
    Workload,
    WorkloadScale,
    WriteStep,
)
from .scadr.workload import ScadrWorkload
from .tpcw.workload import TpcwWorkload

__all__ = [
    "InteractionPlan",
    "InteractionResult",
    "QueryStep",
    "ScadrWorkload",
    "TpcwWorkload",
    "Workload",
    "WorkloadScale",
    "WriteStep",
]
