"""Benchmark workloads used in the paper's evaluation: TPC-W and SCADr."""

from .base import InteractionResult, Workload, WorkloadScale
from .scadr.workload import ScadrWorkload
from .tpcw.workload import TpcwWorkload

__all__ = [
    "InteractionResult",
    "ScadrWorkload",
    "TpcwWorkload",
    "Workload",
    "WorkloadScale",
]
