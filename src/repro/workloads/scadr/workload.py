"""The SCADr benchmark workload (Section 8.1.2).

Each simulated request renders the SCADr "home page": it executes the four
read queries (users followed, recent thoughts, thoughtstream, find user) for
a randomly selected user and measures the overall response time.  "Post a
new thought" — a single put — occurs with 1% probability, exactly as in the
paper.

The four queries are independent of one another (they all key off the
rendered user), so the interaction plan declares them in a single stage —
the flagship pipelining case: replayed through an asynchronous session the
page costs the *slowest* of the four queries instead of their sum.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ...engine.database import PiqlDatabase
from ..base import InteractionPlan, QueryStep, Workload, WorkloadScale, WriteStep
from .data import ScadrDataConfig, ScadrDataGenerator
from .queries import EXTRA_QUERIES, QUERIES, VIEW_QUERIES
from .schema import SCADR_VIEWS_DDL, scadr_ddl


class ScadrWorkload(Workload):
    """Schema + data + interaction mix for SCADr.

    ``materialized_views=True`` provisions the per-user thought- and
    subscription-count views and adds the two profile-statistics point
    queries to the home page render (one extra branch each, one bounded
    point read each).  Off by default so the paper's original workload is
    reproduced unchanged; the view benchmarks, examples, and the Table 1
    reproduction enable it.
    """

    name = "SCADr"

    def __init__(
        self,
        max_subscriptions: int = 10,
        subscriptions_per_user: int = 10,
        thoughts_per_user: int = 20,
        post_probability: float = 0.01,
        materialized_views: bool = False,
    ):
        # The scale experiment sets both the cardinality limit and the actual
        # number of subscriptions per user to 10 (Section 8.2).
        self.max_subscriptions = max_subscriptions
        self.subscriptions_per_user = min(subscriptions_per_user, max_subscriptions)
        self.thoughts_per_user = thoughts_per_user
        self.post_probability = post_probability
        self.materialized_views = materialized_views
        self._usernames: List[str] = []
        self._next_timestamp = 2_000_000_000

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self, db: PiqlDatabase, scale: WorkloadScale) -> None:
        db.execute_ddl(scadr_ddl(self.max_subscriptions))
        if self.materialized_views:
            db.execute_ddl(SCADR_VIEWS_DDL)
        config = ScadrDataConfig(
            users=scale.users_per_node * scale.storage_nodes,
            thoughts_per_user=self.thoughts_per_user,
            subscriptions_per_user=self.subscriptions_per_user,
            seed=scale.seed,
        )
        generator = ScadrDataGenerator(config)
        generator.load(db)
        self._usernames = generator.usernames()
        self.prepare_all(db)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_names(self) -> List[str]:
        names = list(QUERIES)
        if self.materialized_views:
            names.extend(VIEW_QUERIES)
        return names

    def query_sql(self, name: str) -> str:
        if name in QUERIES:
            return QUERIES[name]
        if name in VIEW_QUERIES:
            return VIEW_QUERIES[name]
        return EXTRA_QUERIES[name]

    def sample_parameters(self, name: str, rng: random.Random) -> Dict[str, object]:
        uname = rng.choice(self._usernames)
        if name == "subscriber_intersection":
            friends = [rng.choice(self._usernames) for _ in range(50)]
            return {"target_user": uname, "friends": friends}
        return {"uname": uname}

    # ------------------------------------------------------------------
    # Interactions
    # ------------------------------------------------------------------
    def interaction_plan(
        self, db: PiqlDatabase, rng: random.Random
    ) -> InteractionPlan:
        """One SCADr home-page render as a single stage of independent steps.

        The four read queries all key off the rendered user and nothing
        else; the occasional "post a new thought" write is likewise
        independent of the reads, so it joins the same stage as a fifth
        branch.
        """
        uname = rng.choice(self._usernames)
        steps = [
            QueryStep(name, self.query_sql(name), {"uname": uname})
            for name in self.query_names()
        ]
        if rng.random() < self.post_probability:
            self._next_timestamp += 1
            timestamp = self._next_timestamp

            def post_thought(database: PiqlDatabase, _results) -> None:
                database.insert(
                    "thoughts",
                    {
                        "owner": uname,
                        "timestamp": timestamp,
                        "text": "a fresh thought",
                    },
                    upsert=True,
                )

            steps.append(WriteStep("post_thought", post_thought))
        return InteractionPlan("home_page", [steps])

    # ------------------------------------------------------------------
    # Helpers used by specific experiments
    # ------------------------------------------------------------------
    @property
    def usernames(self) -> List[str]:
        return self._usernames
