"""The five SCADr queries (Section 8.1.2).

Four read queries are executed for every simulated "home page" rendering;
"Post a new thought" is the single updating interaction and occurs for 1% of
requests.
"""

from __future__ import annotations

from typing import Dict

#: Default page size used by the scale experiment (10 results per page,
#: Section 8.2).
DEFAULT_PAGE_SIZE = 10

USERS_FOLLOWED = """
SELECT u.*
FROM subscriptions s JOIN users u
WHERE s.owner = <uname>
  AND u.username = s.target
"""

RECENT_THOUGHTS = """
SELECT *
FROM thoughts
WHERE owner = <uname>
ORDER BY timestamp DESC
LIMIT 10
"""

THOUGHTSTREAM = """
SELECT t.*
FROM subscriptions s JOIN thoughts t
WHERE t.owner = s.target
  AND s.owner = <uname>
  AND s.approved = true
ORDER BY t.timestamp DESC
LIMIT 10
"""

FIND_USER = """
SELECT *
FROM users
WHERE username = <uname>
"""

#: "My thoughts, one page at a time" — the pagination example of Section 4.1.
MY_THOUGHTS_PAGINATED = """
SELECT *
FROM thoughts
WHERE owner = <uname>
ORDER BY timestamp DESC
PAGINATE 10
"""

#: The subscriber intersection query of Section 8.3: which of my friends are
#: subscribed to the user whose profile I am viewing?  ``friends`` is a
#: list-valued parameter with a declared maximum cardinality of 50, matching
#: the experiment.
SUBSCRIBER_INTERSECTION = """
SELECT *
FROM subscriptions
WHERE target = <target_user>
  AND owner IN [1: friends(50)]
"""

#: Profile statistics rendered on the home page: how many thoughts the user
#: has posted and how many approved *followers* they have.  Both are
#: unbounded as base-table aggregates — thoughts per owner have no
#: cardinality limit, and the subscription limit constrains ``owner`` (who
#: you follow), never ``target`` (who follows you) — so both are served as
#: single point reads of the per-user count views when views are enabled.
THOUGHT_COUNT = """
SELECT owner, COUNT(*) AS thought_count
FROM thoughts
WHERE owner = <uname>
GROUP BY owner
"""

FOLLOWER_COUNT = """
SELECT target, COUNT(*) AS follower_count
FROM subscriptions
WHERE target = <uname> AND approved = true
GROUP BY target
"""

#: Query name -> SQL, in the order they appear in Table 1.
QUERIES: Dict[str, str] = {
    "users_followed": USERS_FOLLOWED,
    "recent_thoughts": RECENT_THOUGHTS,
    "thoughtstream": THOUGHTSTREAM,
    "find_user": FIND_USER,
}

#: Queries served by materialized views; included in the workload's query
#: list (and the home-page interaction) only when views are enabled.
VIEW_QUERIES: Dict[str, str] = {
    "thought_count": THOUGHT_COUNT,
    "follower_count": FOLLOWER_COUNT,
}

#: Queries that exist for specific experiments rather than the Table 1 list.
EXTRA_QUERIES: Dict[str, str] = {
    "my_thoughts_paginated": MY_THOUGHTS_PAGINATED,
    "subscriber_intersection": SUBSCRIBER_INTERSECTION,
}
