"""The five SCADr queries (Section 8.1.2).

Four read queries are executed for every simulated "home page" rendering;
"Post a new thought" is the single updating interaction and occurs for 1% of
requests.
"""

from __future__ import annotations

from typing import Dict

#: Default page size used by the scale experiment (10 results per page,
#: Section 8.2).
DEFAULT_PAGE_SIZE = 10

USERS_FOLLOWED = """
SELECT u.*
FROM subscriptions s JOIN users u
WHERE s.owner = <uname>
  AND u.username = s.target
"""

RECENT_THOUGHTS = """
SELECT *
FROM thoughts
WHERE owner = <uname>
ORDER BY timestamp DESC
LIMIT 10
"""

THOUGHTSTREAM = """
SELECT t.*
FROM subscriptions s JOIN thoughts t
WHERE t.owner = s.target
  AND s.owner = <uname>
  AND s.approved = true
ORDER BY t.timestamp DESC
LIMIT 10
"""

FIND_USER = """
SELECT *
FROM users
WHERE username = <uname>
"""

#: "My thoughts, one page at a time" — the pagination example of Section 4.1.
MY_THOUGHTS_PAGINATED = """
SELECT *
FROM thoughts
WHERE owner = <uname>
ORDER BY timestamp DESC
PAGINATE 10
"""

#: The subscriber intersection query of Section 8.3: which of my friends are
#: subscribed to the user whose profile I am viewing?  ``friends`` is a
#: list-valued parameter with a declared maximum cardinality of 50, matching
#: the experiment.
SUBSCRIBER_INTERSECTION = """
SELECT *
FROM subscriptions
WHERE target = <target_user>
  AND owner IN [1: friends(50)]
"""

#: Query name -> SQL, in the order they appear in Table 1.
QUERIES: Dict[str, str] = {
    "users_followed": USERS_FOLLOWED,
    "recent_thoughts": RECENT_THOUGHTS,
    "thoughtstream": THOUGHTSTREAM,
    "find_user": FIND_USER,
}

#: Queries that exist for specific experiments rather than the Table 1 list.
EXTRA_QUERIES: Dict[str, str] = {
    "my_thoughts_paginated": MY_THOUGHTS_PAGINATED,
    "subscriber_intersection": SUBSCRIBER_INTERSECTION,
}
