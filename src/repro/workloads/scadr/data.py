"""Synthetic data generator for SCADr.

The paper's scale experiment loads 60,000 users per storage node, 100
thoughts per user, and 10 random subscriptions per user (Section 8.4.2).
The generator reproduces that layout with configurable (scaled-down)
per-node quantities; the resulting dataset grows linearly with the number of
storage nodes, exactly like the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List

from ...engine.database import PiqlDatabase

_HOMETOWNS = [
    "berkeley", "seattle", "austin", "boston", "chicago",
    "portland", "denver", "atlanta", "madison", "pittsburgh",
]

_WORDS = [
    "coffee", "cloud", "database", "scaling", "lunch", "paper", "deadline",
    "music", "weekend", "keyboard", "bicycle", "sunshine", "query", "index",
    "latency", "berkeley", "hack", "release", "bug", "ship",
]


@dataclass
class ScadrDataConfig:
    """Sizing knobs for the SCADr dataset."""

    users: int = 2000
    thoughts_per_user: int = 20
    subscriptions_per_user: int = 10
    seed: int = 42

    def username(self, index: int) -> str:
        return f"user{index:08d}"


class ScadrDataGenerator:
    """Generates and bulk loads the SCADr dataset."""

    def __init__(self, config: ScadrDataConfig):
        self.config = config
        self._rng = random.Random(config.seed)

    # ------------------------------------------------------------------
    # Row generators
    # ------------------------------------------------------------------
    def users(self) -> Iterator[Dict[str, object]]:
        for index in range(self.config.users):
            yield {
                "username": self.config.username(index),
                "password": f"secret{index % 997}",
                "hometown": self._rng.choice(_HOMETOWNS),
                "created": 1_300_000_000 + index,
            }

    def subscriptions(self) -> Iterator[Dict[str, object]]:
        total = self.config.users
        per_user = min(self.config.subscriptions_per_user, max(total - 1, 0))
        for index in range(total):
            owner = self.config.username(index)
            targets = set()
            while len(targets) < per_user:
                target_index = self._rng.randrange(total)
                if target_index != index:
                    targets.add(target_index)
            for target_index in sorted(targets):
                yield {
                    "owner": owner,
                    "target": self.config.username(target_index),
                    # Most subscriptions are approved; a few are pending so
                    # the thoughtstream's approval filter has work to do.
                    "approved": self._rng.random() > 0.05,
                }

    def thoughts(self) -> Iterator[Dict[str, object]]:
        base_timestamp = 1_300_000_000
        for index in range(self.config.users):
            owner = self.config.username(index)
            for sequence in range(self.config.thoughts_per_user):
                words = self._rng.sample(_WORDS, 4)
                yield {
                    "owner": owner,
                    "timestamp": base_timestamp + sequence * 60 + index,
                    "text": " ".join(words)[:140],
                }

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, db: PiqlDatabase) -> Dict[str, int]:
        """Bulk load the full dataset; returns per-table row counts."""
        counts = {
            "users": db.bulk_load("users", self.users()),
            "subscriptions": db.bulk_load("subscriptions", self.subscriptions()),
            "thoughts": db.bulk_load("thoughts", self.thoughts()),
        }
        return counts

    def usernames(self) -> List[str]:
        """All generated usernames (used by workloads to pick random users)."""
        return [self.config.username(i) for i in range(self.config.users)]
