"""SCADr schema (Section 8.1.2).

SCADr is the paper's simplified micro-blogging benchmark: users post
"thoughts" of at most 140 characters and subscribe to other users.  The
schema has three tables; the one PIQL-specific element is the
``CARDINALITY LIMIT`` on the number of subscriptions a user may own, which
is what makes the thoughtstream query scale-independent.
"""

from __future__ import annotations

DEFAULT_MAX_SUBSCRIPTIONS = 100


def scadr_ddl(max_subscriptions: int = DEFAULT_MAX_SUBSCRIPTIONS) -> str:
    """The CREATE TABLE statements for SCADr.

    ``max_subscriptions`` is the relationship cardinality limit discussed in
    Sections 4.2 and 6.4; the scale experiment of Section 8.4.2 uses 10,
    while the Figure 6 heatmap explores values up to 500.
    """
    return f"""
CREATE TABLE users (
    username   VARCHAR(32),
    password   VARCHAR(32),
    hometown   VARCHAR(64),
    created    INT,
    PRIMARY KEY (username)
);

CREATE TABLE subscriptions (
    owner      VARCHAR(32),
    target     VARCHAR(32),
    approved   BOOLEAN,
    PRIMARY KEY (owner, target),
    FOREIGN KEY (owner) REFERENCES users (username),
    FOREIGN KEY (target) REFERENCES users (username),
    CARDINALITY LIMIT {max_subscriptions} (owner)
);

CREATE TABLE thoughts (
    owner      VARCHAR(32),
    timestamp  INT,
    text       VARCHAR(140),
    PRIMARY KEY (owner, timestamp),
    FOREIGN KEY (owner) REFERENCES users (username)
)
"""


#: Per-user count views backing the home page's profile statistics.  Both
#: are plain counter views (no top-k ordering): one backing record per user,
#: maintained at two extra operations per thought post / subscription write
#: and read back with a single bounded point get.  The follower count groups
#: by ``target`` — the direction the schema's CARDINALITY LIMIT does *not*
#: bound — so no base-table plan exists for it without the view.
SCADR_VIEWS_DDL = """
CREATE MATERIALIZED VIEW user_thought_counts AS
SELECT owner, COUNT(*) AS thought_count
FROM thoughts
GROUP BY owner;

CREATE MATERIALIZED VIEW user_follower_counts AS
SELECT target, COUNT(*) AS follower_count
FROM subscriptions
WHERE approved = true
GROUP BY target
"""

#: Approximate serialised sizes used by the prediction examples (the paper
#: quotes 40-byte subscription tuples in Section 6.1).
SUBSCRIPTION_TUPLE_BYTES = 40
THOUGHT_TUPLE_BYTES = 160
USER_TUPLE_BYTES = 80
