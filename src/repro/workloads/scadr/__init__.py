"""SCADr: the paper's Twitter-like micro-blogging benchmark."""

from .data import ScadrDataConfig, ScadrDataGenerator
from .queries import EXTRA_QUERIES, QUERIES
from .schema import (
    DEFAULT_MAX_SUBSCRIPTIONS,
    SUBSCRIPTION_TUPLE_BYTES,
    THOUGHT_TUPLE_BYTES,
    USER_TUPLE_BYTES,
    scadr_ddl,
)
from .workload import ScadrWorkload

__all__ = [
    "DEFAULT_MAX_SUBSCRIPTIONS",
    "EXTRA_QUERIES",
    "QUERIES",
    "SUBSCRIPTION_TUPLE_BYTES",
    "ScadrDataConfig",
    "ScadrDataGenerator",
    "ScadrWorkload",
    "THOUGHT_TUPLE_BYTES",
    "USER_TUPLE_BYTES",
    "scadr_ddl",
]
