"""Cardinality heatmaps for the Performance Insight Assistant (Figure 6).

The assistant helps a developer choose cardinality limits by showing how the
predicted 99th-percentile latency of a query varies with the candidate
limits.  For SCADr's thoughtstream query the two knobs are the maximum
number of subscriptions per user and the number of records returned per
page; Figure 6 of the paper is exactly that grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .model import OperatorModelKey, OperatorRequirement, QueryLatencyModel
from .slo import ServiceLevelObjective


@dataclass
class Heatmap:
    """A 2-D grid of predicted high-quantile latencies (seconds)."""

    row_label: str
    column_label: str
    row_values: List[int]
    column_values: List[int]
    cells_seconds: List[List[float]]        # cells[row][column]

    def cell_ms(self, row_value: int, column_value: int) -> float:
        row = self.row_values.index(row_value)
        column = self.column_values.index(column_value)
        return self.cells_seconds[row][column] * 1000.0

    def meets_slo(self, slo: ServiceLevelObjective) -> List[List[bool]]:
        """Boolean grid of which settings keep the prediction within the SLO."""
        return [
            [cell <= slo.latency_seconds for cell in row]
            for row in self.cells_seconds
        ]

    def acceptable_settings(
        self, slo: ServiceLevelObjective
    ) -> List[tuple]:
        """(row_value, column_value) pairs whose prediction meets the SLO."""
        acceptable = []
        for i, row_value in enumerate(self.row_values):
            for j, column_value in enumerate(self.column_values):
                if self.cells_seconds[i][j] <= slo.latency_seconds:
                    acceptable.append((row_value, column_value))
        return acceptable

    def render(self, as_milliseconds: bool = True) -> str:
        """Plain-text rendering in the same layout as the paper's Figure 6."""
        lines = [f"{self.row_label} (rows) x {self.column_label} (columns)"]
        header = "      " + " ".join(f"{c:>6}" for c in self.column_values)
        lines.append(header)
        for row_value, row in zip(self.row_values, self.cells_seconds):
            cells = " ".join(
                f"{(cell * 1000.0 if as_milliseconds else cell):>6.0f}" for cell in row
            )
            lines.append(f"{row_value:>5} {cells}")
        return "\n".join(lines)


def prediction_heatmap(
    predict: Callable[[int, int], float],
    row_values: Sequence[int],
    column_values: Sequence[int],
    row_label: str = "cardinality",
    column_label: str = "page size",
) -> Heatmap:
    """Build a heatmap by calling ``predict(row_value, column_value)``."""
    cells = [
        [predict(row_value, column_value) for column_value in column_values]
        for row_value in row_values
    ]
    return Heatmap(
        row_label=row_label,
        column_label=column_label,
        row_values=list(row_values),
        column_values=list(column_values),
        cells_seconds=cells,
    )


def thoughtstream_heatmap(
    model: QueryLatencyModel,
    subscription_counts: Sequence[int] = (100, 150, 200, 250, 300, 350, 400, 450, 500),
    page_sizes: Sequence[int] = (10, 15, 20, 25, 30, 35, 40, 45, 50),
    subscription_bytes: int = 40,
    thought_bytes: int = 160,
    quantile: float = 0.99,
) -> Heatmap:
    """Predicted 99th-percentile latency for SCADr's thoughtstream query.

    The query plan is the one of Figure 3(d): an IndexScan over the
    subscriptions of a user (bounded by the subscription cardinality limit)
    followed by a SortedIndexJoin fetching the most recent ``page_size``
    thoughts per subscription; its latency model is

        Θ_IndexScan(subs, subscription_bytes) *
        Θ_SortedJoin(subs, page, thought_bytes)

    exactly as written in Section 6.2.
    """

    def predict(subscriptions: int, page_size: int) -> float:
        requirements = [
            OperatorRequirement(
                OperatorModelKey("index_scan", subscriptions, 0, subscription_bytes),
                f"IndexScan(subscriptions, {subscriptions})",
            ),
            OperatorRequirement(
                OperatorModelKey(
                    "sorted_index_join", subscriptions, page_size, thought_bytes
                ),
                f"SortedIndexJoin(thoughts, {subscriptions}x{page_size})",
            ),
        ]
        return model.predict_from_requirements(requirements, quantile).max_seconds

    return prediction_heatmap(
        predict,
        row_values=subscription_counts,
        column_values=page_sizes,
        row_label="subscriptions per user",
        column_label="records per page",
    )
