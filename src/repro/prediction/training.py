"""Operator model training (Section 6.1).

"As part of the model training, we sample the response time behavior for
every operator by repeatedly executing the operator with varying cardinality
and tuple sizes.  This training is typically done once by setting up a
production system in the cloud for a short period of time."

The trainer reproduces that procedure against the simulated cluster: for
every parameter setting it issues the *same request patterns* the execution
engine's remote operators issue —

* ``index_scan``       — one range request returning α entries of β bytes,
* ``lookup``           — a parallel batch of α point gets (IndexFKJoin,
  IndexLookup, and secondary-index dereferencing),
* ``sorted_index_join``— α parallel range requests of αj entries each,

spread over a configurable number of SLO intervals so that the per-interval
"cloud weather" variation is captured (Section 6.3).  Because the statistics
depend only on the request shape and not on the stored data (exactly the
paper's observation that the models are not application specific), the
trainer charges the requests directly against the cluster's storage-node
latency models instead of materialising synthetic tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..kvstore.cluster import ClusterConfig, KeyValueCluster
from .model import OperatorModelKey, OperatorModelStore


@dataclass(frozen=True)
class TrainingConfig:
    """Grid and sampling schedule for operator model training.

    The defaults cover the parameter ranges the paper's experiments need
    (cardinalities up to 500 for the Figure 6 heatmap, tuple sizes from the
    40-byte subscriptions to TPC-W items) while keeping training fast.
    """

    alphas: Tuple[int, ...] = (1, 10, 25, 50, 100, 150, 300, 500)
    join_cardinalities: Tuple[int, ...] = (1, 10, 25, 50)
    tuple_sizes: Tuple[int, ...] = (40, 160, 400)
    intervals: int = 12
    samples_per_interval: int = 6
    #: Low-fan-out settings (small alpha) get proportionally more samples per
    #: interval: their latency distribution is dominated by the rare
    #: straggler tail, which only shows up with enough observations, whereas
    #: high-fan-out operators hit stragglers on almost every execution.
    oversample_factor: int = 50
    max_samples_per_interval: int = 300
    interval_seconds: float = 600.0
    utilization: float = 0.3
    seed: int = 7

    def samples_for(self, alpha: int) -> int:
        """Number of samples per interval for a setting with fan-out ``alpha``."""
        scaled = int(round(self.samples_per_interval * self.oversample_factor / max(alpha, 1)))
        return max(self.samples_per_interval, min(self.max_samples_per_interval, scaled))


class OperatorModelTrainer:
    """Benchmarks the three remote operators against a (simulated) cluster."""

    def __init__(
        self,
        cluster: Optional[KeyValueCluster] = None,
        config: Optional[TrainingConfig] = None,
    ):
        # The paper trains on a 10-node cluster with two-fold replication
        # (Section 8.6); default to the same setup.
        self.cluster = cluster or KeyValueCluster(
            ClusterConfig(storage_nodes=10, replication=2)
        )
        self.config = config or TrainingConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self) -> OperatorModelStore:
        """Run the full training schedule and return the populated store."""
        store = OperatorModelStore()
        config = self.config
        nodes = self.cluster.nodes
        for node in nodes:
            node.set_offered_load(node.capacity_ops_per_second * config.utilization)

        for interval in range(config.intervals):
            sim_time = interval * config.interval_seconds
            for beta in config.tuple_sizes:
                for alpha in config.alphas:
                    samples = config.samples_for(alpha)
                    for _ in range(samples):
                        store.record(
                            OperatorModelKey("index_scan", alpha, 0, beta),
                            interval,
                            self._sample_index_scan(alpha, beta, sim_time),
                        )
                        store.record(
                            OperatorModelKey("lookup", alpha, 0, beta),
                            interval,
                            self._sample_lookup(alpha, beta, sim_time),
                        )
                    for cardinality in config.join_cardinalities:
                        for _ in range(samples):
                            store.record(
                                OperatorModelKey(
                                    "sorted_index_join", alpha, cardinality, beta
                                ),
                                interval,
                                self._sample_sorted_join(
                                    alpha, cardinality, beta, sim_time
                                ),
                            )
        return store

    # ------------------------------------------------------------------
    # Request-pattern samplers (mirror the execution engine's behaviour)
    # ------------------------------------------------------------------
    def _random_node(self):
        return self._rng.choice(self.cluster.nodes)

    def _sample_index_scan(self, alpha: int, beta: int, sim_time: float) -> float:
        """One range request returning ``alpha`` entries of ``beta`` bytes."""
        node = self._random_node()
        return node.charge_range(alpha, alpha * beta, sim_time)

    def _sample_lookup(self, alpha: int, beta: int, sim_time: float) -> float:
        """A parallel batched multi-get of ``alpha`` keys.

        Keys are spread over the cluster the same way the client's
        ``multi_get`` spreads them: one RPC per node holding part of the
        batch, and the batch completes when the slowest RPC does.
        """
        groups = min(alpha, len(self.cluster.nodes))
        per_group = max(1, alpha // groups)
        latency = 0.0
        for _ in range(groups):
            node = self._random_node()
            latency = max(
                latency, node.charge_read(per_group, per_group * beta, sim_time)
            )
        return latency

    def _sample_sorted_join(
        self, alpha: int, cardinality: int, beta: int, sim_time: float
    ) -> float:
        """``alpha`` parallel range requests of ``cardinality`` entries each."""
        latency = 0.0
        for _ in range(alpha):
            node = self._random_node()
            latency = max(
                latency,
                node.charge_range(cardinality, cardinality * beta, sim_time),
            )
        return latency


def train_default_model(
    cluster: Optional[KeyValueCluster] = None,
    config: Optional[TrainingConfig] = None,
) -> OperatorModelStore:
    """Convenience wrapper used by examples and benchmarks."""
    return OperatorModelTrainer(cluster=cluster, config=config).train()
