"""Per-operator latency models and whole-plan SLO compliance prediction.

Following Section 6 of the paper:

* every remote operator is modelled as a random variable Θ parameterised by
  the number of tuples it touches (α, and for joins the per-key bound αj)
  and the tuple size β (:class:`OperatorModelKey`);
* model training collects an empirical latency histogram per parameter
  setting *per SLO interval* (:class:`OperatorModelStore`);
* a query's latency distribution is the convolution of its operators'
  distributions (blocking-operator assumption), computed per interval; and
* the prediction reported to the developer is the distribution of
  per-interval high quantiles (:class:`~repro.prediction.slo.SLOPrediction`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PredictionError
from ..plans import physical as P
from ..plans.bounds import compute_bound, estimated_index_entries
from ..schema.catalog import Catalog
from .histogram import LatencyHistogram, convolve_all
from .slo import SLOPrediction

#: Operator kinds the model distinguishes.  ``lookup`` covers both the
#: IndexFKJoin / IndexLookup point-get pattern and the dereference step of
#: secondary-index scans (they issue exactly the same request shape).
OPERATOR_KINDS = ("index_scan", "lookup", "sorted_index_join")


@dataclass(frozen=True)
class OperatorModelKey:
    """Parameters of one operator model Θ (Section 6.1)."""

    operator: str              # one of OPERATOR_KINDS
    alpha: int                 # tuples from the child / expected tuples
    cardinality: int = 0       # per-join-key bound (αj); 0 for non-joins
    tuple_bytes: int = 0       # β

    def dominates(self, other: "OperatorModelKey") -> bool:
        """True if this stored key is a conservative stand-in for ``other``."""
        return (
            self.operator == other.operator
            and self.alpha >= other.alpha
            and self.cardinality >= other.cardinality
            and self.tuple_bytes >= other.tuple_bytes
        )


@dataclass(frozen=True)
class OperatorRequirement:
    """What a plan needs from the model store for one remote operator."""

    key: OperatorModelKey
    description: str = ""


class OperatorModelStore:
    """Trained per-operator, per-interval latency histograms."""

    def __init__(
        self, bin_width_seconds: float = 0.001, max_latency_seconds: float = 10.0
    ):
        self.bin_width_seconds = bin_width_seconds
        self.max_latency_seconds = max_latency_seconds
        self._histograms: Dict[OperatorModelKey, Dict[int, LatencyHistogram]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self, key: OperatorModelKey, interval: int, latency_seconds: float
    ) -> None:
        """Record one sampled operator latency for one SLO interval."""
        intervals = self._histograms.setdefault(key, {})
        histogram = intervals.get(interval)
        if histogram is None:
            histogram = LatencyHistogram(
                bin_width_seconds=self.bin_width_seconds,
                max_latency_seconds=self.max_latency_seconds,
            )
            intervals[interval] = histogram
        histogram.add(latency_seconds)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def keys(self) -> List[OperatorModelKey]:
        return sorted(
            self._histograms,
            key=lambda k: (k.operator, k.alpha, k.cardinality, k.tuple_bytes),
        )

    def intervals(self) -> List[int]:
        """All interval indexes for which at least one model has data."""
        seen = set()
        for intervals in self._histograms.values():
            seen.update(intervals)
        return sorted(seen)

    def resolve_key(self, requested: OperatorModelKey) -> OperatorModelKey:
        """Pick the stored key used to answer a request (Section 6.1).

        The closest stored setting that is **at least as large** in every
        dimension is chosen, to avoid underestimating; if none dominates the
        request, the largest stored setting for the operator is used.
        """
        candidates = [k for k in self._histograms if k.operator == requested.operator]
        if not candidates:
            raise PredictionError(
                f"no trained model for operator {requested.operator!r}; "
                "run the OperatorModelTrainer first"
            )
        dominating = [k for k in candidates if k.dominates(requested)]
        if dominating:
            return min(
                dominating, key=lambda k: (k.alpha, k.cardinality, k.tuple_bytes)
            )
        return max(candidates, key=lambda k: (k.alpha, k.cardinality, k.tuple_bytes))

    def histogram(
        self, requested: OperatorModelKey, interval: Optional[int] = None
    ) -> LatencyHistogram:
        """The trained histogram for a requested setting.

        With ``interval=None`` the per-interval histograms are pooled.
        """
        key = self.resolve_key(requested)
        intervals = self._histograms[key]
        if interval is not None:
            histogram = intervals.get(interval)
            if histogram is None or histogram.is_empty:
                # Fall back to the pooled distribution for unseen intervals.
                return self.histogram(requested, interval=None)
            return histogram
        pooled: Optional[LatencyHistogram] = None
        for histogram in intervals.values():
            pooled = histogram if pooled is None else pooled.merge(histogram)
        if pooled is None or pooled.is_empty:
            raise PredictionError(f"model for {key} has no samples")
        return pooled


class QueryLatencyModel:
    """Composes operator models along a physical plan (Sections 6.2/6.3)."""

    def __init__(self, store: OperatorModelStore, catalog: Catalog):
        self.store = store
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Plan -> operator requirements
    # ------------------------------------------------------------------
    def operator_requirements(
        self, plan: P.PhysicalOperator
    ) -> List[OperatorRequirement]:
        """The Θ settings a plan needs, from its annotations and the schema."""
        return [req for _, req in self.requirements_with_operators(plan)]

    def requirements_with_operators(
        self, plan: P.PhysicalOperator
    ) -> List[Tuple[P.PhysicalOperator, OperatorRequirement]]:
        """Like :meth:`operator_requirements`, keyed by the plan node charged.

        A node may carry several requirements (a secondary-index scan is an
        ``index_scan`` plus its dereference ``lookup``); the runtime bound
        auditor sums their predicted latencies per node to compute
        predicted-vs-observed residuals span by span.
        """
        pairs: List[Tuple[P.PhysicalOperator, OperatorRequirement]] = []
        for operator in P.walk(plan):
            if isinstance(operator, P.PhysicalIndexScan):
                alpha = operator.static_limit_hint()
                if alpha is None:
                    raise PredictionError(
                        f"index scan over {operator.table} has no static bound"
                    )
                beta = self._row_bytes(operator.table)
                pairs.append((
                    operator,
                    OperatorRequirement(
                        OperatorModelKey("index_scan", alpha, 0, beta),
                        f"IndexScan({operator.table}, {alpha}x{beta}B)",
                    ),
                ))
                if operator.needs_dereference:
                    pairs.append((
                        operator,
                        OperatorRequirement(
                            OperatorModelKey("lookup", alpha, 0, beta),
                            f"Dereference({operator.table}, {alpha}x{beta}B)",
                        ),
                    ))
            elif isinstance(operator, P.PhysicalIndexLookup):
                alpha = operator.bound or 1
                beta = self._row_bytes(operator.table)
                pairs.append((
                    operator,
                    OperatorRequirement(
                        OperatorModelKey("lookup", alpha, 0, beta),
                        f"IndexLookup({operator.table}, {alpha}x{beta}B)",
                    ),
                ))
            elif isinstance(operator, P.PhysicalIndexFKJoin):
                alpha = compute_bound(operator.child).max_tuples
                beta = self._row_bytes(operator.table)
                pairs.append((
                    operator,
                    OperatorRequirement(
                        OperatorModelKey("lookup", alpha, 0, beta),
                        f"IndexFKJoin({operator.table}, {alpha}x{beta}B)",
                    ),
                ))
            elif isinstance(operator, P.PhysicalSortedIndexJoin):
                alpha_child = compute_bound(operator.child).max_tuples
                alpha_join = operator.limit_hint or 1
                beta = self._row_bytes(operator.table)
                pairs.append((
                    operator,
                    OperatorRequirement(
                        OperatorModelKey(
                            "sorted_index_join", alpha_child, alpha_join, beta
                        ),
                        f"SortedIndexJoin({operator.table}, "
                        f"{alpha_child}x{alpha_join}x{beta}B)",
                    ),
                ))
                if operator.needs_dereference:
                    # The executor fuses the dereference of all children
                    # into one bulk lookup round, and when the join carries
                    # a stop it puts entries in output order first and stops
                    # fetching at the stop — so the latency-relevant fan-out
                    # is min(children x per-key bound, stop), even though
                    # the *operation* bound still counts every entry.
                    deref_alpha = alpha_child * alpha_join
                    stop = operator.static_stop_count()
                    if stop is not None:
                        deref_alpha = min(deref_alpha, stop)
                    pairs.append((
                        operator,
                        OperatorRequirement(
                            OperatorModelKey("lookup", deref_alpha, 0, beta),
                            f"Dereference({operator.table}, {deref_alpha}x{beta}B)",
                        ),
                    ))
        if not pairs:
            raise PredictionError("plan contains no remote operators to model")
        return pairs

    def _row_bytes(self, table_name: str) -> int:
        return self.catalog.table(table_name).estimated_row_bytes()

    # ------------------------------------------------------------------
    # Write-side requirements (index + materialized-view maintenance)
    # ------------------------------------------------------------------
    def write_requirements(self, table_name: str) -> List[OperatorRequirement]:
        """The Θ settings one insert into ``table_name`` charges.

        The write-side counterpart of :meth:`operator_requirements`: the
        base-record write and each secondary-index entry write share the
        ``lookup`` model (identical point request shape), a cardinality
        constraint adds one bounded ``index_scan`` (its ``count_range``),
        and a materialized view driven by this table adds its delta —
        dimension point fetches, the group record's read-modify-write, and
        for top-k views the boundary check (bounded scan) plus the entry
        rewrite.  Every requirement is statically sized, so predicted write
        latency, like predicted read latency, is independent of table
        cardinality.
        """
        table = self.catalog.table(table_name)
        beta = table.estimated_row_bytes()
        requirements: List[OperatorRequirement] = [
            OperatorRequirement(
                OperatorModelKey("lookup", 1, 0, beta),
                f"RecordPut({table.name}, 1x{beta}B)",
            )
        ]
        for index in self.catalog.indexes_for_table(table.name):
            # Tokenized indexes fan one row out to ~one entry per token;
            # the estimate is shared with bounds.write_operation_bound.
            entries = estimated_index_entries(table, index)
            requirements.append(
                OperatorRequirement(
                    OperatorModelKey("lookup", entries, 0, beta),
                    f"IndexEntryPut({index.name}, {entries})",
                )
            )
        for limit in table.cardinality_limits:
            requirements.append(
                OperatorRequirement(
                    OperatorModelKey("index_scan", limit.limit, 0, beta),
                    f"ConstraintCount({table.name}[{', '.join(limit.columns)}], "
                    f"{limit.limit})",
                )
            )
        for view in self.catalog.views_for_table(table.name):
            view_beta = view.backing_table.estimated_row_bytes()
            for dimension in view.dimensions:
                # Sized by the dimension table's rows — that is what the
                # per-delta point fetch actually reads.
                dimension_beta = self._row_bytes(dimension.table)
                requirements.append(
                    OperatorRequirement(
                        OperatorModelKey("lookup", 1, 0, dimension_beta),
                        f"ViewDimensionFetch({view.name}, {dimension.table})",
                    )
                )
            requirements.append(
                OperatorRequirement(
                    OperatorModelKey("lookup", 2, 0, view_beta),
                    f"ViewGroupUpdate({view.name})",
                )
            )
            if view.order is not None:
                requirements.append(
                    OperatorRequirement(
                        OperatorModelKey("index_scan", 1, 0, view_beta),
                        f"ViewIndexBoundary({view.name})",
                    )
                )
                requirements.append(
                    OperatorRequirement(
                        OperatorModelKey("lookup", 3, 0, view_beta),
                        f"ViewIndexUpdate({view.name})",
                    )
                )
        return requirements

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_distribution(
        self,
        plan: P.PhysicalOperator,
        interval: Optional[int] = None,
    ) -> LatencyHistogram:
        """The predicted latency distribution of a plan for one interval."""
        requirements = self.operator_requirements(plan)
        return self.predict_distribution_from_requirements(requirements, interval)

    def predict_distribution_from_requirements(
        self,
        requirements: Sequence[OperatorRequirement],
        interval: Optional[int] = None,
    ) -> LatencyHistogram:
        histograms = [
            self.store.histogram(req.key, interval=interval) for req in requirements
        ]
        return convolve_all(histograms)

    def predict(
        self, plan: P.PhysicalOperator, quantile: float = 0.99
    ) -> SLOPrediction:
        """Predict the per-interval ``quantile`` latency distribution."""
        requirements = self.operator_requirements(plan)
        return self.predict_from_requirements(requirements, quantile)

    def predict_from_requirements(
        self, requirements: Sequence[OperatorRequirement], quantile: float = 0.99
    ) -> SLOPrediction:
        intervals = self.store.intervals() or [0]
        per_interval = [
            self.predict_distribution_from_requirements(
                requirements, interval
            ).quantile(quantile)
            for interval in intervals
        ]
        return SLOPrediction(quantile=quantile, interval_quantiles_seconds=per_interval)

    def predict_quantile(
        self, plan: P.PhysicalOperator, quantile: float = 0.99
    ) -> float:
        """Most conservative (max over intervals) predicted quantile, seconds."""
        return self.predict(plan, quantile).max_seconds
