"""Latency histograms (Section 6.1).

The prediction framework represents each operator's response-time
distribution as an empirical histogram with millisecond-resolution bins —
"each histogram can be well-represented with on the order of a thousand
bins" and stored in a kilobyte or two.  Combining operators along a query
plan sums their latencies, i.e. convolves their distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

from ..errors import PredictionError


@dataclass
class LatencyHistogram:
    """An empirical latency distribution with fixed-width bins.

    Latencies are recorded in **seconds**; the default bin width of one
    millisecond matches the paper's resolution argument.
    """

    bin_width_seconds: float = 0.001
    max_latency_seconds: float = 10.0
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.bin_width_seconds <= 0:
            raise PredictionError("bin width must be positive")
        num_bins = int(np.ceil(self.max_latency_seconds / self.bin_width_seconds)) + 1
        if self.counts is None:
            self.counts = np.zeros(num_bins, dtype=np.float64)
        else:
            self.counts = np.asarray(self.counts, dtype=np.float64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        samples: Iterable[float],
        bin_width_seconds: float = 0.001,
        max_latency_seconds: float = 10.0,
    ) -> "LatencyHistogram":
        histogram = cls(
            bin_width_seconds=bin_width_seconds,
            max_latency_seconds=max_latency_seconds,
        )
        for sample in samples:
            histogram.add(sample)
        return histogram

    def add(self, latency_seconds: float, weight: float = 1.0) -> None:
        """Record one observation."""
        if latency_seconds < 0:
            raise PredictionError("latency cannot be negative")
        index = min(
            int(latency_seconds / self.bin_width_seconds), len(self.counts) - 1
        )
        self.counts[index] += weight

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Pool the observations of two histograms (same binning required)."""
        self._check_compatible(other)
        merged = LatencyHistogram(
            bin_width_seconds=self.bin_width_seconds,
            max_latency_seconds=self.max_latency_seconds,
            counts=self.counts + other.counts,
        )
        return merged

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        return float(self.counts.sum())

    @property
    def is_empty(self) -> bool:
        return self.total == 0

    def pmf(self) -> np.ndarray:
        """Normalised probability mass function over the bins."""
        if self.is_empty:
            raise PredictionError("cannot normalise an empty histogram")
        return self.counts / self.counts.sum()

    def mean(self) -> float:
        """Mean latency in seconds."""
        centers = self._bin_centers()
        return float(np.dot(self.pmf(), centers))

    def quantile(self, q: float) -> float:
        """The ``q`` quantile (e.g. 0.99) of the latency in seconds."""
        if not (0.0 < q <= 1.0):
            raise PredictionError(f"quantile must be in (0, 1], got {q}")
        cumulative = np.cumsum(self.pmf())
        index = int(np.searchsorted(cumulative, q, side="left"))
        index = min(index, len(self.counts) - 1)
        # The final bin is an overflow bucket: its centre lies half a bin
        # past max_latency, so clamp to keep quantiles inside the range.
        return float(min(self._bin_centers()[index], self.max_latency_seconds))

    def _bin_centers(self) -> np.ndarray:
        return (np.arange(len(self.counts)) + 0.5) * self.bin_width_seconds

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def convolve(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Distribution of the *sum* of two independent latencies.

        This is how serial plan sections compose (Section 6.2): the total
        latency of two blocking operators is the sum of their latencies.
        """
        self._check_compatible(other)
        # Trim trailing empty bins before convolving: latencies live in the
        # first few hundred bins of a ten-second histogram, so this turns an
        # O(N^2) convolution over ~10k bins into one over the occupied range.
        pmf_a = _trim(self.pmf())
        pmf_b = _trim(other.pmf())
        pmf = np.convolve(pmf_a, pmf_b)
        pmf = self._truncate(pmf)
        return LatencyHistogram(
            bin_width_seconds=self.bin_width_seconds,
            max_latency_seconds=self.max_latency_seconds,
            counts=pmf,
        )

    def max_with(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Distribution of the *maximum* of two independent latencies.

        Used for parallel plan sections (e.g. both children of a union):
        P(max <= t) = P(a <= t) * P(b <= t).
        """
        self._check_compatible(other)
        cdf_a = np.cumsum(self.pmf())
        cdf_b = np.cumsum(other.pmf())
        cdf = cdf_a * cdf_b
        pmf = np.diff(np.concatenate(([0.0], cdf)))
        return LatencyHistogram(
            bin_width_seconds=self.bin_width_seconds,
            max_latency_seconds=self.max_latency_seconds,
            counts=np.clip(pmf, 0.0, None),
        )

    def _truncate(self, pmf: np.ndarray) -> np.ndarray:
        if len(pmf) <= len(self.counts):
            out = np.zeros(len(self.counts))
            out[: len(pmf)] = pmf
            return out
        out = pmf[: len(self.counts)].copy()
        out[-1] += pmf[len(self.counts):].sum()
        return out

    def _check_compatible(self, other: "LatencyHistogram") -> None:
        if (
            abs(self.bin_width_seconds - other.bin_width_seconds) > 1e-12
            or len(self.counts) != len(other.counts)
        ):
            raise PredictionError("histograms have incompatible binning")


def _trim(pmf: np.ndarray) -> np.ndarray:
    """Drop trailing zero bins (keeping at least one bin)."""
    nonzero = np.nonzero(pmf)[0]
    if len(nonzero) == 0:
        return pmf[:1]
    return pmf[: nonzero[-1] + 1]


def convolve_all(histograms: Sequence[LatencyHistogram]) -> LatencyHistogram:
    """Convolve a list of histograms (the serial composition of a plan)."""
    if not histograms:
        raise PredictionError("cannot combine zero histograms")
    result = histograms[0]
    for histogram in histograms[1:]:
        result = result.convolve(histogram)
    return result
