"""SLO compliance prediction framework (Section 6 of the paper)."""

from .heatmap import Heatmap, prediction_heatmap, thoughtstream_heatmap
from .histogram import LatencyHistogram, convolve_all
from .model import (
    OperatorModelKey,
    OperatorModelStore,
    OperatorRequirement,
    QueryLatencyModel,
)
from .slo import SLOPrediction, ServiceLevelObjective, observed_interval_quantiles
from .training import OperatorModelTrainer, TrainingConfig, train_default_model

__all__ = [
    "Heatmap",
    "LatencyHistogram",
    "OperatorModelKey",
    "OperatorModelStore",
    "OperatorModelTrainer",
    "OperatorRequirement",
    "QueryLatencyModel",
    "SLOPrediction",
    "ServiceLevelObjective",
    "TrainingConfig",
    "convolve_all",
    "observed_interval_quantiles",
    "prediction_heatmap",
    "thoughtstream_heatmap",
    "train_default_model",
]
