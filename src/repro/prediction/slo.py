"""Service Level Objectives and compliance predictions (Sections 6.2/6.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import PredictionError


@dataclass(frozen=True)
class ServiceLevelObjective:
    """An SLO of the form used throughout the paper.

    "99% of queries during each ten-minute interval should complete in under
    500 ms" becomes ``ServiceLevelObjective(quantile=0.99,
    latency_seconds=0.5, interval_seconds=600)``.
    """

    quantile: float = 0.99
    latency_seconds: float = 0.5
    interval_seconds: float = 600.0

    def __post_init__(self) -> None:
        if not (0.0 < self.quantile < 1.0):
            raise PredictionError("SLO quantile must be in (0, 1)")
        if self.latency_seconds <= 0:
            raise PredictionError("SLO latency must be positive")
        if self.interval_seconds <= 0:
            raise PredictionError("SLO interval must be positive")

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1000.0


@dataclass
class SLOPrediction:
    """Predicted per-interval high-quantile latencies for one query.

    Rather than a point estimate, the model produces one predicted
    high-quantile latency per observed SLO interval (Figure 5(c)); this
    distribution captures the volatility of the cloud and lets a developer
    reason about the *risk* of violating the SLO over time.
    """

    quantile: float
    interval_quantiles_seconds: List[float]

    def __post_init__(self) -> None:
        if not self.interval_quantiles_seconds:
            raise PredictionError("prediction needs at least one interval")

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    @property
    def max_seconds(self) -> float:
        """The most conservative (largest) per-interval prediction.

        Table 1 of the paper reports this value ("we report the max
        99th-percentile value").
        """
        return max(self.interval_quantiles_seconds)

    @property
    def max_ms(self) -> float:
        return self.max_seconds * 1000.0

    @property
    def mean_seconds(self) -> float:
        values = self.interval_quantiles_seconds
        return sum(values) / len(values)

    def percentile_across_intervals(self, fraction: float) -> float:
        """The ``fraction`` quantile of the per-interval predictions.

        For example the 90th percentile of the interval distribution tells
        the developer that roughly 10% of intervals may exceed that value
        (Section 6.3).
        """
        if not (0.0 < fraction <= 1.0):
            raise PredictionError("fraction must be in (0, 1]")
        ordered = sorted(self.interval_quantiles_seconds)
        index = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[index]

    # ------------------------------------------------------------------
    # Compliance
    # ------------------------------------------------------------------
    def violation_risk(self, slo: ServiceLevelObjective) -> float:
        """Fraction of intervals whose predicted quantile exceeds the SLO."""
        over = sum(
            1 for value in self.interval_quantiles_seconds
            if value > slo.latency_seconds
        )
        return over / len(self.interval_quantiles_seconds)

    def meets(self, slo: ServiceLevelObjective, max_risk: float = 0.0) -> bool:
        """Whether the predicted violation risk is within ``max_risk``."""
        return self.violation_risk(slo) <= max_risk


def observed_interval_quantiles(
    samples_by_interval: Sequence[Sequence[float]], quantile: float
) -> List[float]:
    """Per-interval empirical quantiles of observed latencies.

    Used to compute the "actual" column of Table 1 with exactly the same
    interval/percentile methodology as the predictions.
    """
    quantiles: List[float] = []
    for samples in samples_by_interval:
        if not samples:
            continue
        ordered = sorted(samples)
        index = min(int(quantile * len(ordered)), len(ordered) - 1)
        quantiles.append(ordered[index])
    if not quantiles:
        raise PredictionError("no observations to compute quantiles from")
    return quantiles
