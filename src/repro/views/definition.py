"""Materialized-view definitions and their analysis.

A view is declared as an aggregate SELECT::

    CREATE MATERIALIZED VIEW best_sellers_by_subject AS
    SELECT i.I_SUBJECT, ol.OL_I_ID, SUM(ol.OL_QTY) AS total_sold
    FROM order_line ol JOIN item i
    WHERE i.I_ID = ol.OL_I_ID
    GROUP BY i.I_SUBJECT, ol.OL_I_ID
    ORDER BY total_sold DESC LIMIT 50

and analyzed into:

* a **backing table** registered in the catalog — one row per group, primary
  key = the GROUP BY columns in declared order, one column per aggregate
  output (plus hidden ``_``-prefixed merge state inside the stored record);
* the **driving table** — the relation whose inserts/updates/deletes trigger
  maintenance — and a resolution order for the remaining relations, each of
  which must be reachable through foreign-key-shaped join predicates (a
  bounded point lookup per delta).  Dimension attributes are treated as
  immutable: updates to joined relations are not propagated, the standard
  star-schema assumption;
* for ``ORDER BY <aggregate> LIMIT k`` views, a **bounded ordered view
  index**: the last GROUP BY column is the ranked entity, every preceding
  GROUP BY column partitions the ranking, and the index keeps the top ``k``
  entities per partition with eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SchemaError
from ..plans import logical as L
from ..plans.builder import LogicalPlanBuilder
from ..schema.catalog import Catalog
from ..schema.ddl import Column, IndexColumn, IndexDefinition, Table
from ..schema.types import FloatType, IntType
from ..sql import ast

#: Aggregate functions the delta-maintenance engine can merge incrementally.
#: AVG is maintained from hidden SUM/COUNT state; MIN/MAX keep a bounded
#: ordered candidate buffer per group (see maintenance.MINMAX_CANDIDATES).
SUPPORTED_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class ViewOrderSpec:
    """The declared ``ORDER BY <aggregate> [DESC] LIMIT k`` of a view."""

    aggregate: str          # output_name of the ordering aggregate
    ascending: bool
    limit: int              # top-k capacity per partition


@dataclass(frozen=True)
class DimensionJoin:
    """One non-driving relation, resolvable by a bounded point lookup.

    ``key_sources`` pairs each primary-key column of the dimension table
    with the already-resolved column supplying its value, in key order.
    """

    alias: str
    table: str
    key_sources: Tuple[Tuple[str, L.BoundColumn], ...]


@dataclass
class MaterializedView:
    """One registered materialized view (definition + storage layout)."""

    name: str
    sql: str
    statement: ast.SelectStatement
    spec: L.QuerySpec
    driving_alias: str
    driving_table: str
    dimensions: List[DimensionJoin]
    group_columns: Tuple[L.BoundColumn, ...]
    aggregates: Tuple[L.AggregateSpec, ...]
    order: Optional[ViewOrderSpec]
    backing_table: Table
    order_index: Optional[IndexDefinition]
    #: Value predicates of the definition, evaluated per delta on the
    #: resolved rows (a delta that fails them contributes nothing).
    predicates: Tuple[L.ValuePredicate, ...] = ()
    #: Driving-row columns the view's contribution depends on (group
    #: sources, aggregate arguments, predicate columns, and dimension join
    #: keys, restricted to the driving relation).  Precomputed here so the
    #: maintenance engine's no-op fast path costs no per-write set
    #: construction; under the immutable-dimension assumption, two driving
    #: rows equal on these columns make identical contributions.
    driving_columns: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    @property
    def namespace(self) -> str:
        """Key/value namespace of the backing records (one per group)."""
        return self.backing_table.namespace

    @property
    def group_column_names(self) -> Tuple[str, ...]:
        return tuple(c.column for c in self.group_columns)

    @property
    def partition_column_names(self) -> Tuple[str, ...]:
        """Backing columns that partition the top-k ranking (may be empty)."""
        if self.order is None:
            return ()
        return self.group_column_names[:-1]

    @property
    def entity_column_names(self) -> Tuple[str, ...]:
        """The ranked-entity backing column(s) of a top-k view."""
        if self.order is None:
            return ()
        return self.group_column_names[-1:]

    def aggregate_named(self, output_name: str) -> L.AggregateSpec:
        for spec in self.aggregates:
            if spec.output_name == output_name:
                return spec
        raise SchemaError(
            f"view {self.name!r} has no aggregate named {output_name!r}"
        )

    def describe(self) -> str:
        parts = [f"{self.name}: GROUP BY ({', '.join(self.group_column_names)})"]
        parts.append(
            "aggregates ("
            + ", ".join(
                f"{a.function}({a.argument.column if a.argument else '*'}) "
                f"AS {a.output_name}"
                for a in self.aggregates
            )
            + ")"
        )
        if self.order is not None:
            direction = "ASC" if self.order.ascending else "DESC"
            parts.append(
                f"top-{self.order.limit} by {self.order.aggregate} {direction}"
                + (
                    f" per ({', '.join(self.partition_column_names)})"
                    if self.partition_column_names
                    else ""
                )
            )
        return "; ".join(parts)


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def analyze_view(
    statement: ast.CreateMaterializedViewStatement, catalog: Catalog
) -> MaterializedView:
    """Resolve a parsed ``CREATE MATERIALIZED VIEW`` against the catalog."""
    name = statement.name
    if catalog.has_table(name) or catalog.has_view(name):
        raise SchemaError(f"name {name!r} is already in use")

    builder = LogicalPlanBuilder(catalog)
    spec = builder.build_spec(statement.select)

    if not spec.aggregates:
        raise SchemaError(
            f"materialized view {name!r} must compute at least one aggregate"
        )
    if not spec.group_by:
        raise SchemaError(
            f"materialized view {name!r} must declare GROUP BY columns "
            "(they form the backing table's primary key)"
        )
    for aggregate in spec.aggregates:
        if aggregate.function not in SUPPORTED_AGGREGATES:
            raise SchemaError(
                f"aggregate {aggregate.function} is not incrementally "
                f"maintainable; supported: {', '.join(SUPPORTED_AGGREGATES)}"
            )
    if spec.sort_keys:
        raise SchemaError(
            f"materialized view {name!r} may only ORDER BY one of its "
            "aggregate outputs"
        )
    output_names = [a.output_name for a in spec.aggregates] + [
        c.column for c in spec.group_by
    ]
    if len(set(n.lower() for n in output_names)) != len(output_names):
        raise SchemaError(
            f"materialized view {name!r} has duplicate output column names; "
            "alias the aggregates (AS ...) to make them unique"
        )

    order = _analyze_order(name, spec)
    driving_alias, dimensions = _resolve_driving(name, spec, catalog)
    backing_table = _build_backing_table(name, spec, catalog)
    order_index = _build_order_index(spec, order, backing_table)

    predicates: List[L.ValuePredicate] = []
    for relation in spec.relations:
        predicates.extend(relation.all_value_predicates())
    for predicate in predicates:
        if isinstance(predicate, L.TokenMatch):
            raise SchemaError(
                f"materialized view {name!r}: keyword-search predicates are "
                "not supported in view definitions"
            )

    return MaterializedView(
        name=name,
        sql="",
        statement=statement.select,
        spec=spec,
        driving_alias=driving_alias,
        driving_table=spec.relation(driving_alias).table,
        dimensions=dimensions,
        group_columns=spec.group_by,
        aggregates=spec.aggregates,
        order=order,
        backing_table=backing_table,
        order_index=order_index,
        predicates=tuple(predicates),
        driving_columns=_driving_columns(
            driving_alias, spec, dimensions, predicates
        ),
    )


def _driving_columns(
    driving_alias: str,
    spec: L.QuerySpec,
    dimensions: List[DimensionJoin],
    predicates: List[L.ValuePredicate],
) -> Tuple[str, ...]:
    columns = set()
    for column in spec.group_by:
        if column.relation == driving_alias:
            columns.add(column.column)
    for aggregate in spec.aggregates:
        argument = aggregate.argument
        if argument is not None and argument.relation == driving_alias:
            columns.add(argument.column)
    for predicate in predicates:
        if predicate.column.relation == driving_alias:
            columns.add(predicate.column.column)
    for dimension in dimensions:
        for _, source in dimension.key_sources:
            if source.relation == driving_alias:
                columns.add(source.column)
    return tuple(sorted(columns))


def _analyze_order(name: str, spec: L.QuerySpec) -> Optional[ViewOrderSpec]:
    if not spec.aggregate_sort_keys:
        if spec.stop is not None:
            raise SchemaError(
                f"materialized view {name!r}: LIMIT requires an ORDER BY on "
                "an aggregate output (it declares the top-k capacity)"
            )
        return None
    if len(spec.aggregate_sort_keys) != 1:
        raise SchemaError(
            f"materialized view {name!r} may ORDER BY at most one aggregate"
        )
    if spec.stop is None or not isinstance(spec.stop.count, int):
        raise SchemaError(
            f"materialized view {name!r}: ORDER BY requires a literal "
            "LIMIT k declaring the bounded top-k capacity"
        )
    if spec.stop.paginate:
        raise SchemaError(
            f"materialized view {name!r}: use LIMIT, not PAGINATE, for the "
            "top-k capacity"
        )
    output_name, ascending = spec.aggregate_sort_keys[0]
    return ViewOrderSpec(
        aggregate=output_name, ascending=ascending, limit=spec.stop.count
    )


def _resolve_driving(
    name: str, spec: L.QuerySpec, catalog: Catalog
) -> Tuple[str, List[DimensionJoin]]:
    """Pick the driving relation and a point-lookup order for the rest.

    Every non-driving relation must be reachable through join predicates
    covering its full primary key with values from already-resolved
    relations — the FK-shaped joins that cost one bounded ``get`` per delta.
    """
    candidates: List[Tuple[str, List[DimensionJoin]]] = []
    for relation in spec.relations:
        dimensions = _dimension_order(relation.alias, spec, catalog)
        if dimensions is not None:
            candidates.append((relation.alias, dimensions))
    if not candidates:
        raise SchemaError(
            f"materialized view {name!r}: no relation can drive maintenance "
            "(every other relation must be joined on its full primary key)"
        )
    # Prefer a driving relation that owns an aggregate argument (the fact
    # table); fall back to FROM order.
    argument_aliases = {
        a.argument.relation for a in spec.aggregates if a.argument is not None
    }
    for alias, dimensions in candidates:
        if alias in argument_aliases:
            return alias, dimensions
    return candidates[0]


def _dimension_order(
    driving_alias: str, spec: L.QuerySpec, catalog: Catalog
) -> Optional[List[DimensionJoin]]:
    resolved = {driving_alias}
    order: List[DimensionJoin] = []
    pending = [r for r in spec.relations if r.alias != driving_alias]
    while pending:
        progressed = False
        for relation in list(pending):
            table = catalog.table(relation.table)
            sources: Dict[str, L.BoundColumn] = {}
            for predicate in spec.join_predicates:
                if not predicate.involves(relation.alias):
                    continue
                other = predicate.other(relation.alias)
                if other.relation in resolved:
                    sources[predicate.column_for(relation.alias).column] = other
            if all(column in sources for column in table.primary_key):
                order.append(
                    DimensionJoin(
                        alias=relation.alias,
                        table=table.name,
                        key_sources=tuple(
                            (column, sources[column])
                            for column in table.primary_key
                        ),
                    )
                )
                resolved.add(relation.alias)
                pending.remove(relation)
                progressed = True
        if not progressed:
            return None
    return order


def _aggregate_column_type(aggregate: L.AggregateSpec, catalog: Catalog):
    if aggregate.function == "COUNT":
        return IntType()
    if aggregate.function == "AVG":
        return FloatType()
    assert aggregate.argument is not None
    table = catalog.table(aggregate.argument.table)
    return table.column(aggregate.argument.column).type


def _build_backing_table(
    name: str, spec: L.QuerySpec, catalog: Catalog
) -> Table:
    columns: List[Column] = []
    for group_column in spec.group_by:
        source = catalog.table(group_column.table).column(group_column.column)
        columns.append(Column(name=source.name, type=source.type, nullable=True))
    for aggregate in spec.aggregates:
        columns.append(
            Column(
                name=aggregate.output_name,
                type=_aggregate_column_type(aggregate, catalog),
                nullable=True,
            )
        )
    return Table(
        name=name,
        columns=columns,
        primary_key=tuple(c.column for c in spec.group_by),
        backing_view=name,
    )


def _build_order_index(
    spec: L.QuerySpec, order: Optional[ViewOrderSpec], backing_table: Table
) -> Optional[IndexDefinition]:
    if order is None:
        return None
    group_names = [c.column for c in spec.group_by]
    leading = [IndexColumn(c) for c in group_names[:-1]] + [
        IndexColumn(order.aggregate)
    ]
    full = leading + [
        IndexColumn(pk)
        for pk in backing_table.primary_key
        if pk not in {c.name for c in leading}
    ]
    return IndexDefinition(
        name=Catalog.index_name(backing_table.name, full),
        table=backing_table.name,
        columns=tuple(full),
    )
