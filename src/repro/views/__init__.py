"""Incremental materialized views (the paper's precomputation escape hatch).

PIQL rejects queries it cannot statically bound; the paper's prescribed
alternative for the rejected class — global aggregates and "rank everything"
orderings such as TPC-W's Best Sellers — is *precomputation*.  This package
supplies that tier:

* :mod:`repro.views.definition` analyzes ``CREATE MATERIALIZED VIEW``
  statements into :class:`MaterializedView` objects: a backing table (one
  row per group) plus, for ``ORDER BY <aggregate> LIMIT k`` views, a bounded
  ordered *view index* holding the top-k groups per partition;
* :mod:`repro.views.maintenance` applies per-write deltas — COUNT/SUM as
  mergeable counters via read-modify-write, MIN/MAX via bounded candidate
  buffers, top-k via boundary-checked insertion with eviction — through the
  same replicated quorum path as every other write, charged to the
  triggering client so write bounds stay static;
* :mod:`repro.views.rewrite` lets the optimizer match an otherwise-rejected
  aggregate query against a registered view and compile it into a bounded
  view-index scan instead.
"""

from .definition import MaterializedView, ViewOrderSpec, analyze_view
from .maintenance import ViewMaintenanceEngine, recompute_view
from .rewrite import ViewRewriter

__all__ = [
    "MaterializedView",
    "ViewMaintenanceEngine",
    "ViewOrderSpec",
    "ViewRewriter",
    "analyze_view",
    "recompute_view",
]
