"""Query-to-view matching: the optimizer's precomputation rewrite phase.

Given an aggregate query the normal pipeline rejected (or one ordered by an
aggregate output, which no bounded base-table plan can ever satisfy), the
rewriter looks for a registered materialized view that computes the same
aggregation and emits an equivalent query over the view's backing table:

* every view GROUP BY column must be either equality-bound by the query
  (it becomes a key-prefix component) or grouped by the query (it is
  projected per result row);
* the remaining value predicates of the query must be *identical* to the
  view definition's (an aggregate cannot be post-filtered), and the join
  graphs must match;
* every query aggregate must appear in the view with the same function,
  argument, and output name;
* ``ORDER BY <aggregate> LIMIT j`` requires the view's declared ordering
  with ``j <= k``, and the bound columns must be exactly the view's
  partition columns — the rewritten query then compiles to a bounded scan
  of the ordered view index (Figure 4(a) shape, ``1 + j`` operations).

The rewritten statement is compiled through the *normal* Phase I/II
pipeline, so bounds, prediction, pagination, and execution machinery all
apply unchanged; if the rewrite is still unbounded the match is discarded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..plans import logical as L
from ..schema.catalog import Catalog
from ..sql import ast
from .definition import MaterializedView


class ViewRewriter:
    """Matches analyzed queries against the catalog's materialized views."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def rewrite(
        self, statement: ast.SelectStatement, spec: L.QuerySpec
    ) -> Optional[Tuple[ast.SelectStatement, MaterializedView]]:
        """The first registered view that can answer ``spec``, if any."""
        if not spec.aggregates:
            return None
        for view in self.catalog.views():
            rewritten = self._match(view, statement, spec)
            if rewritten is not None:
                return rewritten, view
        return None

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _match(
        self,
        view: MaterializedView,
        statement: ast.SelectStatement,
        spec: L.QuerySpec,
    ) -> Optional[ast.SelectStatement]:
        alias_map = self._map_aliases(view, spec)
        if alias_map is None:
            return None
        if not self._join_graphs_match(view, spec, alias_map):
            return None
        if not self._aggregates_match(view, spec, alias_map):
            return None
        if spec.sort_keys:
            return None  # ordering by stored columns is not view-served

        bindings = self._bind_group_columns(view, spec, alias_map)
        if bindings is None:
            return None
        bound, grouped = bindings
        if not self._residual_predicates_match(view, spec):
            return None

        if spec.aggregate_sort_keys:
            return self._rewrite_top_k(view, statement, spec, bound, grouped)
        return self._rewrite_point(view, statement, spec, bound, grouped)

    def _map_aliases(
        self, view: MaterializedView, spec: L.QuerySpec
    ) -> Optional[Dict[str, str]]:
        """``query alias -> view alias`` by table name (unique tables only)."""
        view_by_table: Dict[str, str] = {}
        for relation in view.spec.relations:
            key = relation.table.lower()
            if key in view_by_table:
                return None
            view_by_table[key] = relation.alias
        mapping: Dict[str, str] = {}
        seen: set = set()
        for relation in spec.relations:
            key = relation.table.lower()
            if key not in view_by_table or key in seen:
                return None
            seen.add(key)
            mapping[relation.alias] = view_by_table[key]
        if len(seen) != len(view_by_table):
            return None
        return mapping

    @staticmethod
    def _canonical_joins(
        join_predicates, alias_to_table: Dict[str, str]
    ) -> set:
        canonical = set()
        for predicate in join_predicates:
            left = (alias_to_table[predicate.left.relation], predicate.left.column.lower())
            right = (alias_to_table[predicate.right.relation], predicate.right.column.lower())
            canonical.add(frozenset((left, right)))
        return canonical

    def _join_graphs_match(
        self, view: MaterializedView, spec: L.QuerySpec, alias_map: Dict[str, str]
    ) -> bool:
        query_tables = {r.alias: r.table.lower() for r in spec.relations}
        view_tables = {r.alias: r.table.lower() for r in view.spec.relations}
        return self._canonical_joins(
            spec.join_predicates, query_tables
        ) == self._canonical_joins(view.spec.join_predicates, view_tables)

    def _aggregates_match(
        self, view: MaterializedView, spec: L.QuerySpec, alias_map: Dict[str, str]
    ) -> bool:
        view_aggregates = {
            (
                a.function,
                (a.argument.table.lower(), a.argument.column.lower())
                if a.argument is not None
                else None,
                a.output_name.lower(),
            )
            for a in view.aggregates
        }
        for aggregate in spec.aggregates:
            key = (
                aggregate.function,
                (aggregate.argument.table.lower(), aggregate.argument.column.lower())
                if aggregate.argument is not None
                else None,
                aggregate.output_name.lower(),
            )
            if key not in view_aggregates:
                return False
        return True

    def _bind_group_columns(
        self, view: MaterializedView, spec: L.QuerySpec, alias_map: Dict[str, str]
    ) -> Optional[Tuple[Dict[str, object], List[str]]]:
        """Classify each view group column as equality-bound or grouped.

        Returns ``(bound column -> value, grouped column names)`` in view
        group order, or ``None`` when some group column is neither.
        """
        view_groups = {
            (c.table.lower(), c.column.lower()): c.column
            for c in view.group_columns
        }
        bound: Dict[str, object] = {}
        for relation in spec.relations:
            for equality in relation.equalities:
                key = (equality.column.table.lower(), equality.column.column.lower())
                if key in view_groups:
                    bound[view_groups[key]] = equality.value
        grouped: List[str] = []
        for column in spec.group_by:
            key = (column.table.lower(), column.column.lower())
            if key not in view_groups:
                return None  # grouping by a column the view did not keep
            grouped.append(view_groups[key])
        for name in view_groups.values():
            if name not in bound and name not in grouped:
                return None
        return bound, grouped

    def _residual_predicates_match(
        self, view: MaterializedView, spec: L.QuerySpec
    ) -> bool:
        """Non-binding query predicates must equal the view's, exactly.

        Every predicate of the *view definition* filters what the view
        materialized — including equalities on its own GROUP BY columns —
        so each must be matched by an identical query predicate.  A query
        equality on a group column is consumed as a key binding only when
        it is not needed to match such a view filter; a binding whose value
        cannot be proven equal to the view's filter (a parameter, or a
        different literal) makes the view unusable for that query.
        """
        view_groups = {
            (c.table.lower(), c.column.lower()) for c in view.group_columns
        }

        def canonical_one(predicate) -> Optional[Tuple]:
            if isinstance(predicate, L.AttributeEquality):
                op = "="
            elif isinstance(predicate, L.AttributeInequality):
                op = predicate.op
            else:
                return None  # IN / token predicates: not view-served
            if not isinstance(predicate.value, ast.Literal):
                return None
            key = (
                predicate.column.table.lower(),
                predicate.column.column.lower(),
            )
            return (op, key, predicate.value.value)

        view_set = set()
        for predicate in view.predicates:
            entry = canonical_one(predicate)
            if entry is None:
                return False
            view_set.add(entry)

        query_set = set()
        for relation in spec.relations:
            for predicate in relation.all_value_predicates():
                entry = canonical_one(predicate)
                is_group_equality = isinstance(
                    predicate, L.AttributeEquality
                ) and (
                    predicate.column.table.lower(),
                    predicate.column.column.lower(),
                ) in view_groups
                if is_group_equality:
                    # A binding — unless the view filtered this very column,
                    # in which case the query's value must match the filter.
                    if entry is not None and entry in view_set:
                        query_set.add(entry)
                    continue
                if entry is None:
                    return False
                query_set.add(entry)
        return query_set == view_set

    # ------------------------------------------------------------------
    # Rewritten statements
    # ------------------------------------------------------------------
    @staticmethod
    def _where(bound: Dict[str, object]) -> List[ast.Predicate]:
        return [
            ast.Comparison(
                left=ast.ColumnRef(column=column), op="=", right=value
            )
            for column, value in bound.items()
        ]

    def _select_items(
        self, view: MaterializedView, spec: L.QuerySpec
    ) -> List[ast.SelectItem]:
        items: List[ast.SelectItem] = []
        for item in spec.projection:
            if isinstance(item, L.BoundColumn):
                items.append(ast.ColumnRef(column=item.column))
            elif isinstance(item, L.AggregateSpec):
                items.append(ast.ColumnRef(column=item.output_name))
            else:
                return []
        return items

    def _rewrite_point(
        self,
        view: MaterializedView,
        statement: ast.SelectStatement,
        spec: L.QuerySpec,
        bound: Dict[str, object],
        grouped: List[str],
    ) -> Optional[ast.SelectStatement]:
        items = self._select_items(view, spec)
        if not items:
            return None
        return ast.SelectStatement(
            select_items=items,
            tables=[ast.TableRef(name=view.backing_table.name)],
            where=self._where(bound),
            limit=statement.limit,
        )

    def _rewrite_top_k(
        self,
        view: MaterializedView,
        statement: ast.SelectStatement,
        spec: L.QuerySpec,
        bound: Dict[str, object],
        grouped: List[str],
    ) -> Optional[ast.SelectStatement]:
        if view.order is None or len(spec.aggregate_sort_keys) != 1:
            return None
        output_name, ascending = spec.aggregate_sort_keys[0]
        if (
            output_name.lower() != view.order.aggregate.lower()
            or ascending != view.order.ascending
        ):
            return None
        if statement.limit is None or statement.limit.paginate:
            return None
        stop = spec.stop.static_count() if spec.stop is not None else None
        if stop is None or stop > view.order.limit:
            return None  # the bounded index only holds the view's top k
        # The equality-bound columns must be exactly the ranking partition
        # (they form the view-index prefix) unless the whole group is bound.
        partition = set(view.partition_column_names)
        if set(bound) != partition:
            return self._rewrite_point(view, statement, spec, bound, grouped) \
                if set(bound) == set(view.group_column_names) else None
        if set(grouped) != set(view.entity_column_names):
            return None
        items = self._select_items(view, spec)
        if not items:
            return None
        return ast.SelectStatement(
            select_items=items,
            tables=[ast.TableRef(name=view.backing_table.name)],
            where=self._where(bound),
            order_by=[
                ast.OrderItem(
                    column=ast.ColumnRef(column=view.order.aggregate),
                    ascending=ascending,
                )
            ],
            limit=statement.limit,
        )
