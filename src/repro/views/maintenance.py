"""Delta maintenance for materialized views.

Every write to a view's driving table is translated into a constant number
of key/value operations, independent of table cardinality:

* resolve the delta's group — one bounded point ``get`` per dimension
  relation (FK-shaped joins only, checked at view creation);
* read-modify-write the group's backing record — COUNT/SUM/AVG merge as
  counters, MIN/MAX through a bounded ordered candidate buffer with
  eviction; a group whose row count reaches zero is deleted;
* for top-k views, maintain the bounded ordered view index: delete the
  group's old entry, then re-admit the new value only if the partition has
  spare capacity or the value beats the current worst member (which is then
  evicted).

All billed maintenance goes through the triggering client's
:class:`~repro.kvstore.client.StorageClient`, i.e. the replicated quorum
path — replica crashes hint and heal exactly like base-table writes — and
is charged to that client's clock and operation counters, so the per-write
cost stays statically bounded (:func:`maintenance_operation_bound`).  Bulk
loading and backfill use the latency-free ``load`` path instead.

Known (documented) approximations, both inherent to bounded state:

* an evicted group re-enters the top-k index only on its next delta — after
  deletes shrink a partition, the index may transiently hold fewer than the
  true top-k until evicted groups are touched again.  Aggregates that only
  grow (counters over insert-only tables, e.g. order lines) never hit this;
* a MIN/MAX whose candidate buffer empties while rows remain reports
  ``None`` until a new delta refills it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..kvstore.client import StorageClient
from ..kvstore.cluster import KeyValueCluster
from ..schema.catalog import Catalog
from ..schema.keys import encode_key, prefix_range
from ..storage.rows import (
    deserialize_row,
    index_entries,
    index_namespace,
    pk_key,
    serialize_row,
)
from .definition import MaterializedView

#: Bounded candidate-buffer size for incremental MIN/MAX (per group).
MINMAX_CANDIDATES = 8

#: Hidden state keys stored inside backing records (never projected).
ROWS_KEY = "_rows"


# ----------------------------------------------------------------------
# Mergeable aggregate states
# ----------------------------------------------------------------------
def fresh_state(view: MaterializedView, group_values: List[Any]) -> Dict[str, Any]:
    """An empty backing record for one group."""
    state: Dict[str, Any] = dict(zip(view.group_column_names, group_values))
    state[ROWS_KEY] = 0
    for aggregate in view.aggregates:
        state[aggregate.output_name] = 0 if aggregate.function == "COUNT" else None
        if aggregate.function in ("SUM", "AVG"):
            state[f"_n_{aggregate.output_name}"] = 0
            if aggregate.function == "AVG":
                state[f"_sum_{aggregate.output_name}"] = 0
        elif aggregate.function in ("MIN", "MAX"):
            state[f"_mm_{aggregate.output_name}"] = []
    return state


def merge_add(
    view: MaterializedView, state: Dict[str, Any], values: Dict[str, Any]
) -> None:
    """Fold one contributing row's aggregate inputs into a group state."""
    state[ROWS_KEY] += 1
    for aggregate in view.aggregates:
        name = aggregate.output_name
        value = values.get(name)
        if aggregate.function == "COUNT":
            if aggregate.argument is None or value is not None:
                state[name] += 1
        elif value is None:
            continue
        elif aggregate.function == "SUM":
            state[name] = value if state[f"_n_{name}"] == 0 else state[name] + value
            state[f"_n_{name}"] += 1
        elif aggregate.function == "AVG":
            state[f"_sum_{name}"] += value
            state[f"_n_{name}"] += 1
            state[name] = state[f"_sum_{name}"] / state[f"_n_{name}"]
        else:  # MIN / MAX: bounded ordered candidate buffer with eviction
            # Copy before mutating: decoded rows share nested values with
            # the deserialize_row cache, so in-place edits would poison
            # every future decode of the same payload bytes.
            buffer = list(state[f"_mm_{name}"])
            buffer.append(value)
            buffer.sort(reverse=aggregate.function == "MAX")
            del buffer[MINMAX_CANDIDATES:]
            state[f"_mm_{name}"] = buffer
            state[name] = buffer[0]


def merge_remove(
    view: MaterializedView, state: Dict[str, Any], values: Dict[str, Any]
) -> None:
    """Retract one contributing row's aggregate inputs from a group state."""
    state[ROWS_KEY] -= 1
    for aggregate in view.aggregates:
        name = aggregate.output_name
        value = values.get(name)
        if aggregate.function == "COUNT":
            if aggregate.argument is None or value is not None:
                state[name] -= 1
        elif value is None:
            continue
        elif aggregate.function == "SUM":
            state[f"_n_{name}"] -= 1
            state[name] = None if state[f"_n_{name}"] == 0 else state[name] - value
        elif aggregate.function == "AVG":
            state[f"_sum_{name}"] -= value
            state[f"_n_{name}"] -= 1
            state[name] = (
                state[f"_sum_{name}"] / state[f"_n_{name}"]
                if state[f"_n_{name}"] > 0
                else None
            )
        else:  # MIN / MAX: drop one occurrence from the candidate buffer
            buffer = list(state[f"_mm_{name}"])  # copy; see merge_add
            if value in buffer:
                buffer.remove(value)
            state[f"_mm_{name}"] = buffer
            state[name] = buffer[0] if buffer else None


def visible_row(view: MaterializedView, state: Dict[str, Any]) -> Dict[str, Any]:
    """The user-visible columns of a backing record (hidden state dropped)."""
    names = list(view.group_column_names) + [
        a.output_name for a in view.aggregates
    ]
    return {name: state.get(name) for name in names}


def maintenance_operation_bound(view: MaterializedView) -> int:
    """Static bound on key/value operations one driving-table write costs.

    Per contribution: one point ``get`` per dimension, the group record's
    read-modify-write (get + put/delete), and for top-k views the ordered
    index update (old-entry delete, partition count, worst-member probe,
    entry put, eviction delete).  The worst case is an update that moves a
    row between groups: both the old and the new contribution are resolved
    (two dimension rounds) and both groups pay the group-local part.
    """
    per_contribution = (
        len(view.dimensions) + 2 + (5 if view.order is not None else 0)
    )
    return 2 * per_contribution


# ----------------------------------------------------------------------
# I/O paths: billed (quorum, charged to the writer) and load (latency-free)
# ----------------------------------------------------------------------
class _BilledIO:
    """Maintenance I/O through the triggering client's quorum path."""

    def __init__(self, client: StorageClient):
        self.client = client

    def get(self, namespace: str, key: bytes) -> Optional[bytes]:
        return self.client.get(namespace, key)

    def put(self, namespace: str, key: bytes, value: bytes) -> None:
        self.client.put(namespace, key, value)

    def delete(self, namespace: str, key: bytes) -> None:
        self.client.delete(namespace, key)

    def count_range(self, namespace: str, start: bytes, end: bytes) -> int:
        return self.client.count_range(namespace, start, end)

    def first_in_range(
        self, namespace: str, start: bytes, end: bytes, ascending: bool
    ) -> Optional[Tuple[bytes, bytes]]:
        pairs = self.client.get_range(
            namespace, start, end, limit=1, ascending=ascending
        )
        return pairs[0] if pairs else None


class _LoadIO:
    """Latency-free maintenance I/O for bulk loading and backfill."""

    def __init__(self, cluster: KeyValueCluster):
        self.cluster = cluster

    def get(self, namespace: str, key: bytes) -> Optional[bytes]:
        return self.cluster.peek(namespace, key)

    def put(self, namespace: str, key: bytes, value: bytes) -> None:
        self.cluster.load(namespace, key, value)

    def delete(self, namespace: str, key: bytes) -> None:
        self.cluster.load_delete(namespace, key)

    def count_range(self, namespace: str, start: bytes, end: bytes) -> int:
        return len(self.cluster.peek_range(namespace, start, end, limit=None))

    def first_in_range(
        self, namespace: str, start: bytes, end: bytes, ascending: bool
    ) -> Optional[Tuple[bytes, bytes]]:
        pairs = self.cluster.peek_range(
            namespace, start, end, limit=1, ascending=ascending
        )
        return pairs[0] if pairs else None


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ViewMaintenanceEngine:
    """Applies base-table write deltas to every affected materialized view."""

    def __init__(self, catalog: Catalog, client: StorageClient):
        self.catalog = catalog
        self.client = client

    # ------------------------------------------------------------------
    # Write hooks (called by the RecordManager after the base write)
    # ------------------------------------------------------------------
    def relevant_views(self, table_name: str) -> List[MaterializedView]:
        return self.catalog.views_for_table(table_name)

    def on_insert(
        self, table_name: str, row: Dict[str, Any], billed: bool = True
    ) -> None:
        for view in self.relevant_views(table_name):
            io = self._io(billed)
            with self._maintenance_span(view, billed):
                self._apply(view, io, old=None, new=row)

    def on_delete(
        self, table_name: str, row: Dict[str, Any], billed: bool = True
    ) -> None:
        for view in self.relevant_views(table_name):
            io = self._io(billed)
            with self._maintenance_span(view, billed):
                self._apply(view, io, old=row, new=None)

    def on_update(
        self,
        table_name: str,
        old_row: Optional[Dict[str, Any]],
        new_row: Dict[str, Any],
        billed: bool = True,
    ) -> None:
        for view in self.relevant_views(table_name):
            io = self._io(billed)
            with self._maintenance_span(view, billed):
                self._apply(view, io, old=old_row, new=new_row)

    def _io(self, billed: bool):
        return _BilledIO(self.client) if billed else _LoadIO(self.client.cluster)

    @contextmanager
    def _maintenance_span(
        self, view: MaterializedView, billed: bool
    ) -> Iterator[None]:
        """A ``view-maintenance`` span nesting a delta under its write.

        Billed maintenance runs inside the triggering write's ``write`` span
        (same client, same tracer stack), so the extra RPCs are attributed
        to the write that caused them.  Load-path maintenance is free and
        untraced.
        """
        tracer = self.client.tracer if billed else None
        if tracer is None:
            yield
            return
        span = tracer.start_span(
            f"maintain {view.name}", "view-maintenance", view=view.name
        )
        try:
            yield
        finally:
            tracer.end_span(span)

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------
    def _apply(
        self,
        view: MaterializedView,
        io,
        old: Optional[Dict[str, Any]],
        new: Optional[Dict[str, Any]],
    ) -> None:
        if old is not None and new is not None:
            # No-op fast path: an update that leaves every column the view
            # reads unchanged contributes nothing — skip it before paying
            # for dimension lookups (the column set is precomputed at view
            # creation; see MaterializedView.driving_columns).
            if all(
                old.get(column) == new.get(column)
                for column in view.driving_columns
            ):
                return
        removed = self._contribution(view, io, old) if old is not None else None
        added = self._contribution(view, io, new) if new is not None else None
        if removed == added:
            # No-op delta: the write did not change any grouped or aggregated
            # value (or the row never satisfied the view's predicates).
            return
        # Only real deltas are counted: the telemetry scraper reads these as
        # the fleet's view-maintenance rate, and no-op writes cost nothing.
        metrics = self.client.stats.metrics
        metrics.add("views.deltas")
        metrics.add(f"views.deltas.{view.name}")
        if removed is not None and added is not None and removed[0] == added[0]:
            self._group_delta(view, io, removed[0], remove=removed[1], add=added[1])
            return
        if removed is not None:
            self._group_delta(view, io, removed[0], remove=removed[1], add=None)
        if added is not None:
            self._group_delta(view, io, added[0], remove=None, add=added[1])

    def _contribution(
        self, view: MaterializedView, io, row: Dict[str, Any]
    ) -> Optional[Tuple[Tuple[Any, ...], Dict[str, Any]]]:
        """Resolve one driving row to ``(group values, aggregate inputs)``.

        Returns ``None`` when the row contributes nothing: a dimension row is
        missing (inner-join semantics) or a view predicate fails.
        """
        rows: Dict[str, Dict[str, Any]] = {view.driving_alias: row}
        for dimension in view.dimensions:
            key_values = []
            for _, source in dimension.key_sources:
                value = rows[source.relation].get(source.column)
                key_values.append(value)
            if any(value is None for value in key_values):
                return None
            table = self.catalog.table(dimension.table)
            payload = io.get(table.namespace, pk_key(key_values))
            if payload is None:
                return None
            rows[dimension.alias] = deserialize_row(payload)
        from ..execution.evaluate import evaluate_all

        if view.predicates and not evaluate_all(view.predicates, rows, None):
            return None
        group_values = tuple(
            rows[column.relation].get(column.column)
            for column in view.group_columns
        )
        aggregate_inputs = {
            a.output_name: (
                rows[a.argument.relation].get(a.argument.column)
                if a.argument is not None
                else None
            )
            for a in view.aggregates
        }
        return group_values, aggregate_inputs

    def _group_delta(
        self,
        view: MaterializedView,
        io,
        group_values: Tuple[Any, ...],
        remove: Optional[Dict[str, Any]],
        add: Optional[Dict[str, Any]],
    ) -> None:
        group_key = encode_key(list(group_values))
        payload = io.get(view.namespace, group_key)
        state = deserialize_row(payload) if payload is not None else None
        if state is None:
            if add is None:
                return  # retracting from a group that never materialized
            # The group record is missing (never materialized, or lost to a
            # failure): there is nothing to retract, so apply only the
            # addition rather than driving counters negative.
            remove = None
            state = fresh_state(view, list(group_values))
        old_state = dict(state) if payload is not None else None

        if remove is not None:
            merge_remove(view, state, remove)
        if add is not None:
            merge_add(view, state, add)

        if state[ROWS_KEY] <= 0:
            if payload is not None:
                io.delete(view.namespace, group_key)
            new_state: Optional[Dict[str, Any]] = None
        else:
            io.put(view.namespace, group_key, serialize_row(state))
            new_state = state

        if view.order_index is not None:
            self._maintain_order_index(view, io, old_state, new_state)

    # ------------------------------------------------------------------
    # Bounded ordered view index (top-k per partition, with eviction)
    # ------------------------------------------------------------------
    def _entry(
        self, view: MaterializedView, state: Dict[str, Any]
    ) -> Tuple[bytes, bytes]:
        entries = list(
            index_entries(view.order_index, view.backing_table, state)
        )
        assert len(entries) == 1, "view order indexes are never tokenized"
        return entries[0]

    def _maintain_order_index(
        self,
        view: MaterializedView,
        io,
        old_state: Optional[Dict[str, Any]],
        new_state: Optional[Dict[str, Any]],
    ) -> None:
        namespace = index_namespace(view.order_index)
        old_entry = self._entry(view, old_state) if old_state is not None else None
        new_entry = self._entry(view, new_state) if new_state is not None else None
        if old_entry is not None and new_entry is not None and \
                old_entry[0] == new_entry[0]:
            return  # ordering value unchanged: skip the index round trips
        if old_entry is not None:
            # Blind delete: the group may have been evicted, in which case
            # this is a no-op — membership is not tracked client-side.
            io.delete(namespace, old_entry[0])
        if new_entry is None or new_state is None:
            return

        partition = [
            new_state.get(column) for column in view.partition_column_names
        ]
        start, end = prefix_range(partition)
        capacity = view.order.limit
        count = io.count_range(namespace, start, end)
        if count < capacity:
            io.put(namespace, new_entry[0], new_entry[1])
            return
        # Partition at capacity: admit only if the new entry beats the worst
        # member (for a DESC view entries ascend by order value, so the worst
        # is the first ascending entry), evicting it.
        worst = io.first_in_range(
            namespace, start, end, ascending=not view.order.ascending
        )
        if worst is None:
            io.put(namespace, new_entry[0], new_entry[1])
            return
        beats = (
            new_entry[0] > worst[0]
            if not view.order.ascending
            else new_entry[0] < worst[0]
        )
        if beats:
            io.put(namespace, new_entry[0], new_entry[1])
            io.delete(namespace, worst[0])

    # ------------------------------------------------------------------
    # Backfill (CREATE MATERIALIZED VIEW over existing data)
    # ------------------------------------------------------------------
    def backfill(self, view: MaterializedView) -> int:
        """Populate a freshly created view from existing base records.

        Uses the latency-free load path, like index backfill; returns the
        number of driving rows folded in.
        """
        cluster = self.client.cluster
        driving = self.catalog.table(view.driving_table)
        count = 0
        for _, payload in cluster.iter_namespace(driving.namespace):
            self.on_insert(view.driving_table, deserialize_row(payload), billed=False)
            count += 1
        return count


# ----------------------------------------------------------------------
# Offline recomputation (ground truth for tests and benchmarks)
# ----------------------------------------------------------------------
def recompute_view(
    view: MaterializedView, catalog: Catalog, cluster: KeyValueCluster
) -> Dict[Tuple[Any, ...], Dict[str, Any]]:
    """Recompute a view's visible content from the base tables, offline.

    Full scans over the driving table (and point resolution of dimensions),
    folded through the same merge rules *without* any bounded-state
    trimming: the result is the exact aggregate per group, the ground truth
    incremental maintenance is checked against.
    """
    engine = ViewMaintenanceEngine(catalog, StorageClient(cluster=cluster))
    io = _LoadIO(cluster)
    driving = catalog.table(view.driving_table)
    states: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for _, payload in cluster.iter_namespace(driving.namespace):
        contribution = engine._contribution(view, io, deserialize_row(payload))
        if contribution is None:
            continue
        group_values, aggregate_inputs = contribution
        state = states.get(group_values)
        if state is None:
            state = fresh_state(view, list(group_values))
            states[group_values] = state
        merge_add(view, state, aggregate_inputs)
    return {
        group: visible_row(view, state) for group, state in states.items()
    }


def recompute_top_k(
    view: MaterializedView,
    recomputed: Dict[Tuple[Any, ...], Dict[str, Any]],
    partition: Tuple[Any, ...],
    limit: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """The exact top-k rows of one partition from recomputed group states.

    Orders groups by their would-be view-index entry keys (order value, then
    primary key), i.e. the identical total order — including ties — that a
    bounded view-index scan returns.
    """
    assert view.order is not None
    keyed: List[Tuple[bytes, Dict[str, Any]]] = []
    width = len(partition)
    for group_values, row in recomputed.items():
        if tuple(group_values[:width]) != tuple(partition):
            continue
        entry_key, _ = next(
            iter(index_entries(view.order_index, view.backing_table, row))
        )
        keyed.append((entry_key, row))
    keyed.sort(key=lambda pair: pair[0], reverse=not view.order.ascending)
    top = keyed[: limit if limit is not None else view.order.limit]
    return [row for _, row in top]
