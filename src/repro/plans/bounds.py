"""Static operation-bound calculation (Section 1.3 / 5.2 of the paper).

Given a physical plan in which every remote operator carries an explicit
bound, this module computes an upper bound on

* the number of tuples each operator can produce, and
* the number of key/value store operations the whole plan can perform,

independent of the database size.  The execution engine's tests assert that
actually-executed queries never exceed these bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NotScaleIndependentError
from . import physical as P


@dataclass(frozen=True)
class PlanBound:
    """Upper bounds for one (sub)plan."""

    max_tuples: int
    max_operations: int

    def __add__(self, other: "PlanBound") -> "PlanBound":
        return PlanBound(
            self.max_tuples + other.max_tuples,
            self.max_operations + other.max_operations,
        )


def compute_bound(plan: P.PhysicalOperator) -> PlanBound:
    """Compute the operation bound of a physical plan.

    Raises :class:`NotScaleIndependentError` if some remote operator carries
    no usable bound (which the optimizer should already have rejected).
    """
    if isinstance(plan, P.PhysicalIndexScan):
        hint = plan.static_limit_hint()
        if hint is None:
            raise NotScaleIndependentError(
                f"index scan over {plan.table} has no limit hint or data-stop",
                relation=plan.table,
            )
        operations = 1 + (hint if plan.needs_dereference else 0)
        return PlanBound(max_tuples=hint, max_operations=operations)

    if isinstance(plan, P.PhysicalIndexLookup):
        bound = plan.bound
        if bound is None:
            raise NotScaleIndependentError(
                f"index lookup on {plan.table} has an unbounded IN list",
                relation=plan.table,
            )
        return PlanBound(max_tuples=bound, max_operations=bound)

    if isinstance(plan, P.PhysicalIndexFKJoin):
        child = compute_bound(plan.child)
        return PlanBound(
            max_tuples=child.max_tuples,
            max_operations=child.max_operations + child.max_tuples,
        )

    if isinstance(plan, P.PhysicalSortedIndexJoin):
        child = compute_bound(plan.child)
        if plan.limit_hint is None:
            raise NotScaleIndependentError(
                f"sorted index join against {plan.table} has no limit hint",
                relation=plan.table,
            )
        fetched = child.max_tuples * plan.limit_hint
        stop = plan.static_stop_count()
        max_tuples = min(fetched, stop) if stop is not None else fetched
        operations = child.max_operations + child.max_tuples
        if plan.needs_dereference:
            operations += fetched
        return PlanBound(max_tuples=max_tuples, max_operations=operations)

    if isinstance(plan, P.PhysicalLocalStop):
        child = compute_bound(plan.child)
        count = plan.static_count()
        max_tuples = (
            min(count, child.max_tuples) if count is not None else child.max_tuples
        )
        return PlanBound(max_tuples=max_tuples, max_operations=child.max_operations)

    if isinstance(
        plan,
        (
            P.PhysicalLocalSelection,
            P.PhysicalLocalSort,
            P.PhysicalLocalProjection,
            P.PhysicalLocalAggregate,
        ),
    ):
        return compute_bound(plan.children()[0])

    raise NotScaleIndependentError(
        f"cannot bound unknown operator {type(plan).__name__}"
    )


def operation_bound(plan: P.PhysicalOperator) -> int:
    """Convenience accessor: the maximum number of key/value operations."""
    return compute_bound(plan).max_operations
