"""Static operation-bound calculation (Section 1.3 / 5.2 of the paper).

Given a physical plan in which every remote operator carries an explicit
bound, this module computes an upper bound on

* the number of tuples each operator can produce, and
* the number of key/value store operations the whole plan can perform,

independent of the database size.  The execution engine's tests assert that
actually-executed queries never exceed these bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NotScaleIndependentError
from . import physical as P


@dataclass(frozen=True)
class PlanBound:
    """Upper bounds for one (sub)plan."""

    max_tuples: int
    max_operations: int

    def __add__(self, other: "PlanBound") -> "PlanBound":
        return PlanBound(
            self.max_tuples + other.max_tuples,
            self.max_operations + other.max_operations,
        )


def compute_bound(plan: P.PhysicalOperator) -> PlanBound:
    """Compute the operation bound of a physical plan.

    Raises :class:`NotScaleIndependentError` if some remote operator carries
    no usable bound (which the optimizer should already have rejected).
    """
    if isinstance(plan, P.PhysicalIndexScan):
        hint = plan.static_limit_hint()
        if hint is None:
            raise NotScaleIndependentError(
                f"index scan over {plan.table} has no limit hint or data-stop",
                relation=plan.table,
            )
        operations = 1 + (hint if plan.needs_dereference else 0)
        return PlanBound(max_tuples=hint, max_operations=operations)

    if isinstance(plan, P.PhysicalIndexLookup):
        bound = plan.bound
        if bound is None:
            raise NotScaleIndependentError(
                f"index lookup on {plan.table} has an unbounded IN list",
                relation=plan.table,
            )
        return PlanBound(max_tuples=bound, max_operations=bound)

    if isinstance(plan, P.PhysicalIndexFKJoin):
        child = compute_bound(plan.child)
        return PlanBound(
            max_tuples=child.max_tuples,
            max_operations=child.max_operations + child.max_tuples,
        )

    if isinstance(plan, P.PhysicalSortedIndexJoin):
        child = compute_bound(plan.child)
        if plan.limit_hint is None:
            raise NotScaleIndependentError(
                f"sorted index join against {plan.table} has no limit hint",
                relation=plan.table,
            )
        fetched = child.max_tuples * plan.limit_hint
        stop = plan.static_stop_count()
        max_tuples = min(fetched, stop) if stop is not None else fetched
        operations = child.max_operations + child.max_tuples
        if plan.needs_dereference:
            operations += fetched
        return PlanBound(max_tuples=max_tuples, max_operations=operations)

    if isinstance(plan, P.PhysicalLocalStop):
        child = compute_bound(plan.child)
        count = plan.static_count()
        max_tuples = (
            min(count, child.max_tuples) if count is not None else child.max_tuples
        )
        return PlanBound(max_tuples=max_tuples, max_operations=child.max_operations)

    if isinstance(
        plan,
        (
            P.PhysicalLocalSelection,
            P.PhysicalLocalSort,
            P.PhysicalLocalProjection,
            P.PhysicalLocalAggregate,
        ),
    ):
        return compute_bound(plan.children()[0])

    raise NotScaleIndependentError(
        f"cannot bound unknown operator {type(plan).__name__}"
    )


def operation_bound(plan: P.PhysicalOperator) -> int:
    """Convenience accessor: the maximum number of key/value operations."""
    return compute_bound(plan).max_operations


def estimated_index_entries(table, index) -> int:
    """Estimated entries one row contributes to ``index``.

    One for a plain index; tokenized columns multiply by an estimated
    per-row token count (~one token per five characters of the declared
    column size).  Shared by the static write bound and the write-latency
    model so the two can never disagree on the same write.
    """
    entries = 1
    for column in index.columns:
        if column.tokenized:
            entries *= max(1, table.column(column.name).estimated_size() // 5)
    return entries


def write_operation_bound(catalog, table_name: str) -> int:
    """Static bound on key/value operations one write to ``table_name`` costs.

    The write-side counterpart of :func:`operation_bound`: base-record
    write, one entry per secondary index (tokenized indexes charge an
    estimated per-row token count derived from the column's declared size),
    one ``count_range`` per cardinality constraint, and — when the table
    drives materialized views — the statically bounded view-maintenance
    delta (:func:`repro.views.maintenance.maintenance_operation_bound`).
    Like read bounds, this is independent of table cardinality, which is
    exactly what keeps writes scale-independent as views are added.
    """
    from ..views.maintenance import maintenance_operation_bound

    table = catalog.table(table_name)
    # Base record put / test_and_set, plus the old-row read an update (or an
    # overwriting upsert on a view-driving table) performs first.
    operations = 2
    for index in catalog.indexes_for_table(table.name):
        # An update that changes the indexed value both writes the new
        # entry and deletes the stale one, so each entry counts twice.
        operations += 2 * estimated_index_entries(table, index)
    operations += len(table.cardinality_limits)
    for view in catalog.views_for_table(table.name):
        operations += maintenance_operation_bound(view)
    return operations
