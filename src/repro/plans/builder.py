"""Analyzer: turns a parsed SELECT statement into a logical plan.

Name resolution follows standard SQL rules: a qualified reference
``alias.column`` is looked up against the relation bound to that alias; an
unqualified column must resolve to exactly one of the FROM relations.
Table and column name comparison is case-insensitive, as in the paper's
TPC-W queries (``I_TITLE`` vs ``i_title``).

The builder produces both a :class:`~repro.plans.logical.QuerySpec`
(normalized form used by the optimizer) and the *initial* logical plan tree
(Figure 3(b) in the paper), before any optimization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import PlanningError, SchemaError, UnknownColumnError
from ..schema.catalog import Catalog
from ..schema.ddl import Table
from ..sql import ast
from . import logical as L


class LogicalPlanBuilder:
    """Builds logical plans for SELECT statements against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build_spec(self, statement: ast.SelectStatement) -> L.QuerySpec:
        """Analyze ``statement`` into a normalized :class:`QuerySpec`."""
        bindings = self._resolve_tables(statement.tables)
        relations = [
            L.RelationSpec(alias=alias, table=table.name)
            for alias, table in bindings.items()
        ]
        spec = L.QuerySpec(
            relations=relations,
            join_predicates=[],
            sort_keys=[],
            stop=None,
            projection=(),
        )

        for predicate in statement.where:
            self._add_predicate(spec, bindings, predicate)

        if statement.limit is not None:
            spec.stop = L.Stop(
                child=None,  # type: ignore[arg-type]
                count=statement.limit.count,
                paginate=statement.limit.paginate,
            )

        spec.group_by = tuple(
            self._resolve_column(ref, bindings) for ref in statement.group_by
        )
        spec.aggregates = tuple(
            self._resolve_aggregate(item, bindings)
            for item in statement.select_items
            if isinstance(item, ast.AggregateCall)
        )
        # ORDER BY keys may name an aggregate output ("ORDER BY total_sold
        # DESC" where total_sold is SUM(...) AS total_sold); those rank the
        # groups of the aggregation and are kept separate from stored-column
        # sort keys — only a materialized-view rewrite can satisfy them.
        for item in statement.order_by:
            output_name = self._aggregate_alias(item.column, spec.aggregates)
            if output_name is not None:
                spec.aggregate_sort_keys.append((output_name, item.ascending))
            else:
                spec.sort_keys.append(
                    (self._resolve_column(item.column, bindings), item.ascending)
                )
        if spec.aggregate_sort_keys and spec.sort_keys:
            raise PlanningError(
                "ORDER BY cannot mix aggregate outputs with stored columns"
            )
        spec.projection = self._resolve_projection(statement.select_items, bindings)
        self._validate_aggregation(statement, spec)
        return spec

    @staticmethod
    def _aggregate_alias(
        ref: ast.ColumnRef, aggregates: Tuple[L.AggregateSpec, ...]
    ) -> Optional[str]:
        """The aggregate output an unqualified ORDER BY key names, if any."""
        if ref.table is not None:
            return None
        for spec in aggregates:
            if spec.output_name.lower() == ref.column.lower():
                return spec.output_name
        return None

    def build_initial_plan(self, spec: L.QuerySpec) -> L.LogicalOperator:
        """Construct the naive (pre-optimization) logical plan tree."""
        plan: L.LogicalOperator = L.Relation(
            table=spec.relations[0].table, alias=spec.relations[0].alias
        )
        for relation in spec.relations[1:]:
            right = L.Relation(table=relation.table, alias=relation.alias)
            plan = L.Join(left=plan, right=right, predicates=())
        value_predicates: List[L.ValuePredicate] = []
        for relation in spec.relations:
            value_predicates.extend(relation.all_value_predicates())
        if spec.join_predicates and len(spec.relations) > 1:
            # Attach join predicates to the topmost join for display purposes.
            top = plan
            assert isinstance(top, L.Join)
            top.predicates = tuple(spec.join_predicates)
        if value_predicates:
            plan = L.Selection(child=plan, predicates=tuple(value_predicates))
        if spec.aggregates or spec.group_by:
            plan = L.Aggregate(
                child=plan, group_by=spec.group_by, aggregates=spec.aggregates
            )
        if spec.sort_keys:
            plan = L.Sort(child=plan, keys=tuple(spec.sort_keys))
        if spec.stop is not None:
            plan = L.Stop(child=plan, count=spec.stop.count, paginate=spec.stop.paginate)
        return L.Project(child=plan, items=spec.projection)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _resolve_tables(self, tables: List[ast.TableRef]) -> Dict[str, Table]:
        if not tables:
            raise PlanningError("query has no FROM clause")
        bindings: Dict[str, Table] = {}
        for ref in tables:
            table = self.catalog.table(ref.name)
            binding = (ref.alias or ref.name)
            if binding.lower() in {b.lower() for b in bindings}:
                raise PlanningError(f"duplicate table binding: {binding!r}")
            bindings[binding] = table
        return bindings

    def _find_binding(
        self, qualifier: Optional[str], column: str, bindings: Dict[str, Table]
    ) -> Tuple[str, Table]:
        if qualifier is not None:
            for binding, table in bindings.items():
                if binding.lower() == qualifier.lower():
                    return binding, table
            # A qualifier may also be the underlying table name even when an
            # alias was declared (common in hand-written queries).
            for binding, table in bindings.items():
                if table.name.lower() == qualifier.lower():
                    return binding, table
            raise UnknownColumnError(column, qualifier)
        matches = [
            (binding, table)
            for binding, table in bindings.items()
            if self._canonical_column(table, column) is not None
        ]
        if not matches:
            raise UnknownColumnError(column)
        if len(matches) > 1:
            names = ", ".join(binding for binding, _ in matches)
            raise PlanningError(
                f"ambiguous column {column!r}: present in {names}"
            )
        return matches[0]

    @staticmethod
    def _canonical_column(table: Table, column: str) -> Optional[str]:
        for name in table.column_names():
            if name.lower() == column.lower():
                return name
        return None

    def _resolve_column(
        self, ref: ast.ColumnRef, bindings: Dict[str, Table]
    ) -> L.BoundColumn:
        binding, table = self._find_binding(ref.table, ref.column, bindings)
        canonical = self._canonical_column(table, ref.column)
        if canonical is None:
            raise UnknownColumnError(ref.column, table.name)
        return L.BoundColumn(relation=binding, table=table.name, column=canonical)

    def _resolve_aggregate(
        self, call: ast.AggregateCall, bindings: Dict[str, Table]
    ) -> L.AggregateSpec:
        argument = (
            self._resolve_column(call.argument, bindings)
            if call.argument is not None
            else None
        )
        if call.function != "COUNT" and argument is None:
            raise PlanningError(f"{call.function} requires a column argument")
        default_name = (
            f"{call.function.lower()}_{argument.column.lower()}"
            if argument is not None
            else "count"
        )
        return L.AggregateSpec(
            function=call.function,
            argument=argument,
            output_name=call.alias or default_name,
        )

    def _resolve_projection(
        self, items: List[ast.SelectItem], bindings: Dict[str, Table]
    ) -> Tuple[L.ProjectionItem, ...]:
        resolved: List[L.ProjectionItem] = []
        for item in items:
            if isinstance(item, ast.Star):
                if item.table is None:
                    resolved.append(L.StarItem(relation=None))
                else:
                    binding, _ = self._find_binding(item.table, "*", bindings)
                    resolved.append(L.StarItem(relation=binding))
            elif isinstance(item, ast.ColumnRef):
                resolved.append(self._resolve_column(item, bindings))
            elif isinstance(item, ast.AggregateCall):
                resolved.append(self._resolve_aggregate(item, bindings))
            else:  # pragma: no cover - parser only produces the above
                raise PlanningError(f"unsupported select item: {item!r}")
        return tuple(resolved)

    def _validate_aggregation(
        self, statement: ast.SelectStatement, spec: L.QuerySpec
    ) -> None:
        if not spec.aggregates and spec.group_by:
            raise PlanningError("GROUP BY requires at least one aggregate")
        if spec.aggregates:
            group_cols = set(spec.group_by)
            for item in spec.projection:
                if isinstance(item, L.BoundColumn) and item not in group_cols:
                    raise PlanningError(
                        f"column {item.render()} must appear in GROUP BY"
                    )
                if isinstance(item, L.StarItem):
                    raise PlanningError("cannot mix * with aggregates")

    # ------------------------------------------------------------------
    # Predicate classification
    # ------------------------------------------------------------------
    def _add_predicate(
        self,
        spec: L.QuerySpec,
        bindings: Dict[str, Table],
        predicate: ast.Predicate,
    ) -> None:
        if isinstance(predicate, ast.Comparison):
            self._add_comparison(spec, bindings, predicate)
        elif isinstance(predicate, ast.LikePredicate):
            column = self._resolve_column(predicate.column, bindings)
            spec.relation(column.relation).token_matches.append(
                L.TokenMatch(column=column, value=self._as_value(predicate.pattern))
            )
        elif isinstance(predicate, ast.ContainsPredicate):
            column = self._resolve_column(predicate.column, bindings)
            spec.relation(column.relation).token_matches.append(
                L.TokenMatch(column=column, value=self._as_value(predicate.token))
            )
        elif isinstance(predicate, ast.InPredicate):
            column = self._resolve_column(predicate.column, bindings)
            spec.relation(column.relation).in_predicates.append(
                L.AttributeIn(column=column, values=predicate.values)
            )
        else:  # pragma: no cover
            raise PlanningError(f"unsupported predicate: {predicate!r}")

    def _add_comparison(
        self,
        spec: L.QuerySpec,
        bindings: Dict[str, Table],
        predicate: ast.Comparison,
    ) -> None:
        left = self._resolve_column(predicate.left, bindings)
        right = predicate.right
        if isinstance(right, ast.ColumnRef):
            right_column = self._resolve_column(right, bindings)
            if right_column.relation == left.relation:
                raise PlanningError(
                    "column-to-column predicates within one relation are not "
                    f"supported: {left.render()} {predicate.op} {right_column.render()}"
                )
            if predicate.op != "=":
                raise PlanningError(
                    f"only equi-joins are supported, found {predicate.op!r}"
                )
            spec.join_predicates.append(
                L.JoinEquality(left=left, right=right_column)
            )
            return
        value = self._as_value(right)
        relation = spec.relation(left.relation)
        if predicate.op == "=":
            relation.equalities.append(L.AttributeEquality(column=left, value=value))
        elif predicate.op in ("<", "<=", ">", ">=", "<>"):
            relation.inequalities.append(
                L.AttributeInequality(column=left, op=predicate.op, value=value)
            )
        else:  # pragma: no cover
            raise PlanningError(f"unsupported comparison operator: {predicate.op!r}")

    @staticmethod
    def _as_value(value: ast.Value) -> Union[ast.Literal, ast.Parameter]:
        if isinstance(value, (ast.Literal, ast.Parameter)):
            return value
        raise SchemaError(f"expected a literal or parameter, got {value!r}")
