"""Pretty-printing of logical and physical plans.

Both operator families expose ``label()`` and ``children()``, so a single
renderer handles Figure-3-style plan diagrams for diagnostics, tests, and
the Performance Insight Assistant.  ``EXPLAIN ANALYZE`` passes an
``annotate`` hook to append per-operator runtime measurements to the same
rendering the static tools produce.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from .logical import LogicalOperator
from .physical import PhysicalOperator

PlanNode = Union[LogicalOperator, PhysicalOperator]

#: Optional per-node annotation hook: returns extra text appended to the
#: node's label line (empty string for none).
Annotator = Callable[[PlanNode], str]


def plan_to_string(
    plan: PlanNode, indent: int = 0, annotate: Optional[Annotator] = None
) -> str:
    """Render a plan as an indented tree, one operator per line."""
    lines: List[str] = []
    _render(plan, indent, lines, annotate)
    return "\n".join(lines)


def _render(
    node: PlanNode,
    depth: int,
    lines: List[str],
    annotate: Optional[Annotator] = None,
) -> None:
    suffix = annotate(node) if annotate is not None else ""
    lines.append("  " * depth + node.label() + suffix)
    for child in node.children():
        _render(child, depth + 1, lines, annotate)


def plan_operators(plan: PlanNode) -> List[str]:
    """The operator labels of a plan in pre-order (useful in tests)."""
    return [line.strip() for line in plan_to_string(plan).splitlines()]
