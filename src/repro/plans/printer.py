"""Pretty-printing of logical and physical plans.

Both operator families expose ``label()`` and ``children()``, so a single
renderer handles Figure-3-style plan diagrams for diagnostics, tests, and
the Performance Insight Assistant.
"""

from __future__ import annotations

from typing import List, Union

from .logical import LogicalOperator
from .physical import PhysicalOperator

PlanNode = Union[LogicalOperator, PhysicalOperator]


def plan_to_string(plan: PlanNode, indent: int = 0) -> str:
    """Render a plan as an indented tree, one operator per line."""
    lines: List[str] = []
    _render(plan, indent, lines)
    return "\n".join(lines)


def _render(node: PlanNode, depth: int, lines: List[str]) -> None:
    lines.append("  " * depth + node.label())
    for child in node.children():
        _render(child, depth + 1, lines)


def plan_operators(plan: PlanNode) -> List[str]:
    """The operator labels of a plan in pre-order (useful in tests)."""
    return [line.strip() for line in plan_to_string(plan).splitlines()]
