"""Physical query plans.

PIQL's physical operators are split into two groups (Section 5.2):

* **Remote operators** issue requests against the key/value store and must
  each carry an explicit bound — :class:`PhysicalIndexScan`,
  :class:`PhysicalIndexFKJoin`, :class:`PhysicalSortedIndexJoin`, plus
  :class:`PhysicalIndexLookup`, the bounded random-lookup access path used
  by the subscriber-intersection comparison of Section 8.3.
* **Local operators** run in the application tier on data that remote
  operators have already bounded — selection, sort, stop, projection, and
  aggregation.

The dataclasses here are *descriptions*; the interpreter that turns them
into key/value requests lives in :mod:`repro.execution`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..schema.ddl import IndexDefinition, Table
from ..sql.ast import Literal, Parameter
from . import logical as L
from .logical import AggregateSpec, BoundColumn, ProjectionItem, ValuePredicate

#: A value used to build a key at execution time: a literal known at compile
#: time, a query parameter bound at execution time, or a column of the child
#: operator's current tuple (for join operators).
KeyPart = Union[Literal, Parameter, BoundColumn]


@dataclass(frozen=True)
class InListPart:
    """A key component that ranges over a bounded list of values (IN)."""

    values: Union[Parameter, Tuple[Literal, ...]]

    def max_cardinality(self) -> Optional[int]:
        if isinstance(self.values, Parameter):
            return self.values.max_cardinality
        return len(self.values)


@dataclass(frozen=True)
class IndexChoice:
    """The index a remote operator reads.

    ``primary=True`` means the base-record namespace is scanned directly (the
    records are clustered by primary key); otherwise ``definition`` names a
    secondary index whose entries must be dereferenced to retrieve full rows
    unless the index covers every needed column.
    """

    table: str
    primary: bool
    definition: Optional[IndexDefinition] = None

    def describe(self) -> str:
        if self.primary:
            return f"{self.table}(primary)"
        assert self.definition is not None
        return self.definition.describe()


def _render_key_part(part: Union[KeyPart, InListPart]) -> str:
    if isinstance(part, Parameter):
        return f"<{part.name}>"
    if isinstance(part, Literal):
        return repr(part.value)
    if isinstance(part, BoundColumn):
        return part.render()
    if isinstance(part, InListPart):
        if isinstance(part.values, Parameter):
            return f"IN<{part.values.name}>"
        return "IN(" + ", ".join(repr(v.value) for v in part.values) + ")"
    return repr(part)


class PhysicalOperator:
    """Base class of all physical plan nodes."""

    def children(self) -> Tuple["PhysicalOperator", ...]:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    @property
    def is_remote(self) -> bool:
        return False


# ----------------------------------------------------------------------
# Remote operators
# ----------------------------------------------------------------------
@dataclass
class PhysicalIndexScan(PhysicalOperator):
    """A bounded scan of a contiguous index section (Figure 4(a)).

    ``prefix`` holds the values for the index's leading columns (equality
    predicates, or the token of a keyword search); ``inequality`` optionally
    narrows the next index column to a sub-range; ``limit_hint`` is the
    number of matching entries the executor needs (from a stop operator or a
    data-stop), which also drives prefetching.

    ``pushed_predicates`` are residual predicates that reference only
    fields recoverable from the index entry itself (index-key columns, the
    primary key, or — for a primary-index scan — the stored record); the
    executor evaluates them server-side *before* dereferencing or shipping
    base records.  Operation accounting is per *examined* entry, so pushing
    a predicate down never changes a plan's operation count or its static
    bound — only its RPC payloads and deserialisation work.
    """

    relation_alias: str
    table: str
    index: IndexChoice
    prefix: Tuple[KeyPart, ...] = ()
    inequality: Optional[Tuple[str, str, KeyPart]] = None   # (column, op, value)
    ascending: bool = True
    limit_hint: Optional[Union[int, Parameter]] = None
    data_stop: Optional[int] = None
    needs_dereference: bool = False
    scan_id: str = "scan0"
    pushed_predicates: Tuple[ValuePredicate, ...] = ()

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return ()

    @property
    def is_remote(self) -> bool:
        return True

    def static_limit_hint(self) -> Optional[int]:
        """Compile-time bound on entries fetched per execution, if known."""
        candidates: List[int] = []
        if isinstance(self.limit_hint, int):
            candidates.append(self.limit_hint)
        elif isinstance(self.limit_hint, Parameter) and self.limit_hint.max_cardinality:
            candidates.append(self.limit_hint.max_cardinality)
        if self.data_stop is not None:
            candidates.append(self.data_stop)
        return min(candidates) if candidates else None

    def label(self) -> str:
        parts = [self.index.describe()]
        if self.prefix:
            parts.append("key=" + ", ".join(_render_key_part(p) for p in self.prefix))
        if self.inequality:
            column, op, value = self.inequality
            parts.append(f"{column} {op} {_render_key_part(value)}")
        parts.append("asc" if self.ascending else "desc")
        hint = self.static_limit_hint()
        if hint is not None:
            parts.append(f"limitHint={hint}")
        if self.pushed_predicates:
            pushed = " AND ".join(p.render() for p in self.pushed_predicates)
            parts.append(f"pushdown=({pushed})")
        return f"IndexScan({', '.join(parts)})"


@dataclass
class PhysicalIndexLookup(PhysicalOperator):
    """A bounded set of random primary-key lookups (no child plan).

    This is the access path PIQL chooses for queries like the subscriber
    intersection query of Section 8.3: equality predicates plus an ``IN``
    over a bounded list together cover the primary key, so the operator
    issues at most ``bound`` point gets.
    """

    relation_alias: str
    table: str
    key_parts: Tuple[Union[KeyPart, InListPart], ...] = ()
    bound: Optional[int] = None

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return ()

    @property
    def is_remote(self) -> bool:
        return True

    def label(self) -> str:
        keys = ", ".join(_render_key_part(p) for p in self.key_parts)
        return f"IndexLookup({self.table}, key=[{keys}], bound={self.bound})"


@dataclass
class PhysicalIndexFKJoin(PhysicalOperator):
    """For each child tuple, fetch at most one row by primary key (Figure 4(b))."""

    child: PhysicalOperator
    relation_alias: str
    table: str
    key_parts: Tuple[KeyPart, ...] = ()

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    @property
    def is_remote(self) -> bool:
        return True

    def label(self) -> str:
        keys = ", ".join(_render_key_part(p) for p in self.key_parts)
        return f"IndexFKJoin({self.table}, key=[{keys}])"


@dataclass
class PhysicalSortedIndexJoin(PhysicalOperator):
    """Per-child-tuple bounded, pre-sorted index range requests (Figure 4(c)).

    For every tuple of the child plan, fetch the top ``limit_hint`` entries
    of the target index for that join key (the index is ordered by the sort
    columns within each join key), then merge, sort, and stop after
    ``stop_count`` rows.
    """

    child: PhysicalOperator
    relation_alias: str
    table: str
    index: IndexChoice
    prefix: Tuple[KeyPart, ...] = ()
    sort_keys: Tuple[Tuple[str, bool], ...] = ()
    ascending: bool = True
    limit_hint: Optional[int] = None
    stop_count: Optional[Union[int, Parameter]] = None
    needs_dereference: bool = False

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    @property
    def is_remote(self) -> bool:
        return True

    def static_stop_count(self) -> Optional[int]:
        if isinstance(self.stop_count, int):
            return self.stop_count
        if isinstance(self.stop_count, Parameter):
            return self.stop_count.max_cardinality
        return None

    def label(self) -> str:
        parts = [self.index.describe()]
        if self.prefix:
            parts.append("key=" + ", ".join(_render_key_part(p) for p in self.prefix))
        if self.sort_keys:
            keys = ", ".join(
                f"{name} {'ASC' if asc else 'DESC'}" for name, asc in self.sort_keys
            )
            parts.append(f"sort=({keys})")
        if self.limit_hint is not None:
            parts.append(f"limitHint={self.limit_hint}")
        return f"SortedIndexJoin({', '.join(parts)})"


# ----------------------------------------------------------------------
# Local operators
# ----------------------------------------------------------------------
@dataclass
class PhysicalLocalSelection(PhysicalOperator):
    """Filter already-local tuples by a conjunction of predicates."""

    child: PhysicalOperator
    predicates: Tuple[ValuePredicate, ...] = ()

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        preds = " AND ".join(p.render() for p in self.predicates)
        return f"LocalSelection({preds})"


@dataclass
class PhysicalLocalSort(PhysicalOperator):
    """Sort already-local tuples."""

    child: PhysicalOperator
    keys: Tuple[Tuple[BoundColumn, bool], ...] = ()

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            f"{col.render()} {'ASC' if asc else 'DESC'}" for col, asc in self.keys
        )
        return f"LocalSort({keys})"


@dataclass
class PhysicalLocalStop(PhysicalOperator):
    """Truncate to the first ``count`` tuples (LIMIT / one PAGINATE page)."""

    child: PhysicalOperator
    count: Union[int, Parameter] = 0
    paginate: bool = False

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def static_count(self) -> Optional[int]:
        if isinstance(self.count, int):
            return self.count
        return self.count.max_cardinality

    def label(self) -> str:
        kind = "Paginate" if self.paginate else "Stop"
        count = self.count if isinstance(self.count, int) else f"<{self.count.name}>"
        return f"Local{kind}({count})"


@dataclass
class PhysicalLocalAggregate(PhysicalOperator):
    """Group-by and aggregation over bounded local data."""

    child: PhysicalOperator
    group_by: Tuple[BoundColumn, ...] = ()
    aggregates: Tuple[AggregateSpec, ...] = ()

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        aggs = ", ".join(
            f"{a.function}({a.argument.render() if a.argument else '*'})"
            for a in self.aggregates
        )
        groups = ", ".join(c.render() for c in self.group_by)
        suffix = f" GROUP BY {groups}" if groups else ""
        return f"LocalAggregate({aggs}){suffix}"


@dataclass
class PhysicalLocalProjection(PhysicalOperator):
    """Project internal tuples to the user-visible output columns."""

    child: PhysicalOperator
    items: Tuple[ProjectionItem, ...] = ()

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return "LocalProjection"


# ----------------------------------------------------------------------
# Predicate pushdown rules (shared by the optimizer and the executor)
# ----------------------------------------------------------------------
def pushable_predicate_columns(
    predicate: ValuePredicate, alias: str, primary_index: bool
) -> Optional[List[str]]:
    """Columns a predicate reads, or ``None`` when it cannot be pushed.

    The single source of truth for what may run server-side on an index
    entry: a value predicate of this relation whose comparison value is a
    literal or parameter (never another tuple's column).  Token matches
    need the column's full text, which only a primary (whole record) scan
    can provide.  Callers scanning a secondary index must additionally
    check the returned columns against :func:`entry_decodable_columns`.
    """
    if isinstance(predicate, (L.AttributeEquality, L.AttributeInequality)):
        if predicate.column.relation != alias or not isinstance(
            predicate.value, (Literal, Parameter)
        ):
            return None
        return [predicate.column.column]
    if isinstance(predicate, L.AttributeIn):
        if predicate.column.relation != alias:
            return None
        return [predicate.column.column]
    if isinstance(predicate, L.TokenMatch):
        if not primary_index or predicate.column.relation != alias:
            return None
        if not isinstance(predicate.value, (Literal, Parameter)):
            return None
        return [predicate.column.column]
    return None


def entry_decodable_columns(
    index: "IndexChoice", table: Table
) -> Optional[Dict[str, int]]:
    """``column -> key component position`` for a secondary index entry.

    Entry keys are the index's column values followed by the full primary
    key, so every non-tokenized index column and every primary-key column
    can be recovered from the key bytes alone.  Returns ``None`` for a
    primary index (the whole record is in the value; no decoding needed).
    """
    if index.primary or index.definition is None:
        return None
    positions: Dict[str, int] = {}
    for offset, column in enumerate(index.definition.columns):
        if not column.tokenized and column.name not in positions:
            positions[column.name] = offset
    base = len(index.definition.columns)
    for offset, pk_column in enumerate(table.primary_key):
        # The appended primary-key suffix is authoritative (it always holds
        # the raw value, even when the index column form is transformed).
        positions[pk_column] = base + offset
    return positions


# ----------------------------------------------------------------------
# Traversal helpers
# ----------------------------------------------------------------------
def walk(plan: PhysicalOperator):
    """Yield every operator of a plan, top-down."""
    yield plan
    for child in plan.children():
        yield from walk(child)


def remote_operators(plan: PhysicalOperator) -> List[PhysicalOperator]:
    """All remote operators of a plan, top-down."""
    return [op for op in walk(plan) if op.is_remote]


def find_scans(plan: PhysicalOperator) -> List[PhysicalIndexScan]:
    """All index scans of a plan (used by the pagination cursor logic)."""
    return [op for op in walk(plan) if isinstance(op, PhysicalIndexScan)]
