"""Logical and physical query plans plus static bound computation."""

from . import logical, physical
from .bounds import PlanBound, compute_bound, operation_bound
from .builder import LogicalPlanBuilder
from .printer import plan_operators, plan_to_string

__all__ = [
    "LogicalPlanBuilder",
    "PlanBound",
    "compute_bound",
    "logical",
    "operation_bound",
    "physical",
    "plan_operators",
    "plan_to_string",
]
