"""Logical query plans and analyzed (name-resolved) predicates.

The logical plan is the optimizer's working representation (Figure 3(b)/(c)
in the paper).  Besides the standard relational operators it contains PIQL's
two bounding operators:

* :class:`Stop` — the classic stop-after operator produced by ``LIMIT`` and
  ``PAGINATE`` clauses (Carey & Kossmann), and
* :class:`DataStop` — PIQL's new annotation operator recording that a plan
  section can produce at most ``count`` tuples because of a schema
  constraint (primary-key equality or a ``CARDINALITY LIMIT``).  Data-stops
  may be pushed past predicates that did not cause them, which is what makes
  more plans statically boundable (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..sql.ast import Literal, Parameter

Value = Union[Literal, Parameter]


# ----------------------------------------------------------------------
# Analyzed expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundColumn:
    """A column reference resolved to a specific relation instance (alias)."""

    relation: str          # the alias binding the relation instance
    table: str             # canonical table name
    column: str            # canonical column name

    def render(self) -> str:
        return f"{self.relation}.{self.column}"


@dataclass(frozen=True)
class AttributeEquality:
    """``column = value`` where value is a literal or a query parameter."""

    column: BoundColumn
    value: Value

    def render(self) -> str:
        return f"{self.column.render()} = {_render_value(self.value)}"


@dataclass(frozen=True)
class AttributeInequality:
    """``column op value`` for op in <, <=, >, >=, <>."""

    column: BoundColumn
    op: str
    value: Value

    def render(self) -> str:
        return f"{self.column.render()} {self.op} {_render_value(self.value)}"


@dataclass(frozen=True)
class TokenMatch:
    """A keyword search against an inverted full-text index (LIKE/CONTAINS)."""

    column: BoundColumn
    value: Value

    def render(self) -> str:
        return f"token({self.column.render()}) = {_render_value(self.value)}"


@dataclass(frozen=True)
class AttributeIn:
    """``column IN <list parameter>`` or ``column IN (literals)``."""

    column: BoundColumn
    values: Union[Parameter, Tuple[Literal, ...]]

    def max_cardinality(self) -> Optional[int]:
        """Declared bound on the number of values, if known statically."""
        if isinstance(self.values, Parameter):
            return self.values.max_cardinality
        return len(self.values)

    def render(self) -> str:
        if isinstance(self.values, Parameter):
            return f"{self.column.render()} IN [{self.values.name}]"
        inner = ", ".join(_render_value(v) for v in self.values)
        return f"{self.column.render()} IN ({inner})"


@dataclass(frozen=True)
class JoinEquality:
    """An equality predicate between columns of two different relations."""

    left: BoundColumn
    right: BoundColumn

    def involves(self, relation: str) -> bool:
        return relation in (self.left.relation, self.right.relation)

    def column_for(self, relation: str) -> BoundColumn:
        if self.left.relation == relation:
            return self.left
        if self.right.relation == relation:
            return self.right
        raise KeyError(relation)

    def other(self, relation: str) -> BoundColumn:
        if self.left.relation == relation:
            return self.right
        if self.right.relation == relation:
            return self.left
        raise KeyError(relation)

    def render(self) -> str:
        return f"{self.left.render()} = {self.right.render()}"


ValuePredicate = Union[AttributeEquality, AttributeInequality, TokenMatch, AttributeIn]
Predicate = Union[ValuePredicate, JoinEquality]


def _render_value(value: Value) -> str:
    if isinstance(value, Parameter):
        return f"<{value.name}>"
    return repr(value.value)


# ----------------------------------------------------------------------
# Aggregates / projection items
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output column (COUNT/SUM/AVG/MIN/MAX)."""

    function: str
    argument: Optional[BoundColumn]
    output_name: str


@dataclass(frozen=True)
class StarItem:
    """``*`` or ``alias.*`` in the projection."""

    relation: Optional[str] = None


ProjectionItem = Union[BoundColumn, StarItem, AggregateSpec]


# ----------------------------------------------------------------------
# Logical operators
# ----------------------------------------------------------------------
class LogicalOperator:
    """Base class for logical plan nodes."""

    def children(self) -> Tuple["LogicalOperator", ...]:
        raise NotImplementedError

    def label(self) -> str:
        """Short human-readable label used by the plan printer."""
        return type(self).__name__


@dataclass
class Relation(LogicalOperator):
    """A base relation access."""

    table: str
    alias: str

    def children(self) -> Tuple[LogicalOperator, ...]:
        return ()

    def label(self) -> str:
        if self.alias.lower() == self.table.lower():
            return f"Relation({self.table})"
        return f"Relation({self.table} AS {self.alias})"


@dataclass
class Selection(LogicalOperator):
    """Filter by a conjunction of value predicates."""

    child: LogicalOperator
    predicates: Tuple[ValuePredicate, ...]

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        preds = " AND ".join(p.render() for p in self.predicates)
        return f"Selection({preds})"


@dataclass
class Join(LogicalOperator):
    """Equi-join of two subplans."""

    left: LogicalOperator
    right: LogicalOperator
    predicates: Tuple[JoinEquality, ...]

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        preds = " AND ".join(p.render() for p in self.predicates)
        return f"Join({preds})"


@dataclass
class Sort(LogicalOperator):
    """Sort by one or more keys."""

    child: LogicalOperator
    keys: Tuple[Tuple[BoundColumn, bool], ...]    # (column, ascending)

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            f"{col.render()} {'ASC' if asc else 'DESC'}" for col, asc in self.keys
        )
        return f"Sort({keys})"


@dataclass
class Stop(LogicalOperator):
    """Standard stop-after operator from a LIMIT or PAGINATE clause."""

    child: LogicalOperator
    count: Union[int, Parameter]
    paginate: bool = False

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def static_count(self) -> Optional[int]:
        """The stop count if known at compile time, else the declared max."""
        if isinstance(self.count, int):
            return self.count
        return self.count.max_cardinality

    def label(self) -> str:
        kind = "Paginate" if self.paginate else "Stop"
        count = self.count if isinstance(self.count, int) else f"<{self.count.name}>"
        return f"{kind}({count})"


@dataclass
class DataStop(LogicalOperator):
    """PIQL's data-stop annotation (Section 5.1).

    ``count`` is the maximum number of tuples the subplan can produce given
    the schema constraint identified by ``constraint_columns`` of relation
    ``relation``; ``caused_by`` are the equality predicates whose presence
    justified the insertion (a data-stop may be pushed past every predicate
    *except* these).
    """

    child: LogicalOperator
    count: int
    relation: str
    constraint_columns: Tuple[str, ...]
    caused_by: Tuple[ValuePredicate, ...] = ()

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        cols = ", ".join(self.constraint_columns)
        return f"DataStop({self.count} via {self.relation}[{cols}])"


@dataclass
class Aggregate(LogicalOperator):
    """Grouping and aggregation (always a local, bounded operation in PIQL)."""

    child: LogicalOperator
    group_by: Tuple[BoundColumn, ...]
    aggregates: Tuple[AggregateSpec, ...]

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        aggs = ", ".join(
            f"{a.function}({a.argument.render() if a.argument else '*'})"
            for a in self.aggregates
        )
        groups = ", ".join(c.render() for c in self.group_by)
        suffix = f" GROUP BY {groups}" if groups else ""
        return f"Aggregate({aggs}){suffix}"


@dataclass
class Project(LogicalOperator):
    """Projection to the requested output columns."""

    child: LogicalOperator
    items: Tuple[ProjectionItem, ...]

    def children(self) -> Tuple[LogicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        parts = []
        for item in self.items:
            if isinstance(item, StarItem):
                parts.append(f"{item.relation}.*" if item.relation else "*")
            elif isinstance(item, BoundColumn):
                parts.append(item.render())
            else:
                arg = item.argument.render() if item.argument else "*"
                parts.append(f"{item.function}({arg})")
        return f"Project({', '.join(parts)})"


# ----------------------------------------------------------------------
# Normalized query specification
# ----------------------------------------------------------------------
@dataclass
class RelationSpec:
    """One relation instance of the query and the predicates that touch it."""

    alias: str
    table: str
    equalities: List[AttributeEquality] = field(default_factory=list)
    inequalities: List[AttributeInequality] = field(default_factory=list)
    token_matches: List[TokenMatch] = field(default_factory=list)
    in_predicates: List[AttributeIn] = field(default_factory=list)

    def all_value_predicates(self) -> List[ValuePredicate]:
        return (
            list(self.equalities)
            + list(self.token_matches)
            + list(self.in_predicates)
            + list(self.inequalities)
        )


@dataclass
class QuerySpec:
    """A fully analyzed query in normalized (non-tree) form.

    The optimizer's two phases consume this together with the logical plan
    tree; keeping both makes the tree transformations easy to display while
    the normalized form keeps the matching logic simple.
    """

    relations: List[RelationSpec]
    join_predicates: List[JoinEquality]
    sort_keys: List[Tuple[BoundColumn, bool]]
    stop: Optional[Stop]                    # Stop with no child attached yet
    projection: Tuple[ProjectionItem, ...]
    group_by: Tuple[BoundColumn, ...] = ()
    aggregates: Tuple[AggregateSpec, ...] = ()
    #: ``ORDER BY`` keys that name an aggregate output instead of a stored
    #: column, as ``(output_name, ascending)``.  Such an ordering ranks the
    #: *groups* of an aggregation, which no bounded scan of base data can
    #: satisfy — the optimizer either rewrites the query against a
    #: materialized view (:mod:`repro.views`) or rejects it.
    aggregate_sort_keys: List[Tuple[str, bool]] = field(default_factory=list)

    def relation(self, alias: str) -> RelationSpec:
        for spec in self.relations:
            if spec.alias == alias:
                return spec
        raise KeyError(alias)

    def aliases(self) -> List[str]:
        return [spec.alias for spec in self.relations]

    def join_predicates_between(
        self, placed: Sequence[str], alias: str
    ) -> List[JoinEquality]:
        """Join predicates linking ``alias`` to any already-placed relation."""
        placed_set = set(placed)
        found = []
        for predicate in self.join_predicates:
            if not predicate.involves(alias):
                continue
            other = predicate.other(alias)
            if other.relation in placed_set:
                found.append(predicate)
        return found
