"""PIQL reproduction: success-tolerant (scale-independent) query processing.

This package reimplements the system described in "PIQL: Success-Tolerant
Query Processing in the Cloud" (Armbrust et al., PVLDB 5(3), 2011) on top of
a simulated distributed key/value store, including the PIQL language
extensions, the scale-independent optimizer, the execution engine, the SLO
compliance prediction model, and the TPC-W / SCADr benchmarks used in the
paper's evaluation.
"""

from .engine.database import PiqlDatabase
from .engine.query import PreparedQuery
from .engine.session import QueryFuture, ResultCursor, Session
from .errors import (
    CardinalityViolationError,
    CircuitOpenError,
    ConstraintViolationError,
    CursorError,
    ExecutionError,
    NotScaleIndependentError,
    ParseError,
    PiqlError,
    PlanningError,
    PredictionError,
    QuorumNotMetError,
    RetryBudgetExhaustedError,
    RpcTimeoutError,
    SchemaError,
    UnavailableError,
    UniquenessViolationError,
)
from .execution.context import ExecutionStrategy, QueryResult
from .kvstore.cluster import ClusterConfig, KeyValueCluster
from .kvstore.latency import LatencyParameters
from .resilience.policy import ResilienceConfig, ResiliencePolicy
from .views.definition import MaterializedView

__version__ = "0.1.0"

__all__ = [
    "CardinalityViolationError",
    "CircuitOpenError",
    "ClusterConfig",
    "ConstraintViolationError",
    "CursorError",
    "ExecutionError",
    "ExecutionStrategy",
    "KeyValueCluster",
    "LatencyParameters",
    "MaterializedView",
    "NotScaleIndependentError",
    "ParseError",
    "PiqlDatabase",
    "PiqlError",
    "PlanningError",
    "PredictionError",
    "PreparedQuery",
    "QueryFuture",
    "QueryResult",
    "QuorumNotMetError",
    "ResilienceConfig",
    "ResiliencePolicy",
    "ResultCursor",
    "RetryBudgetExhaustedError",
    "RpcTimeoutError",
    "SchemaError",
    "Session",
    "UnavailableError",
    "UniquenessViolationError",
    "__version__",
]
