"""``EXPLAIN ANALYZE``: the annotated span tree rendered as a plan.

``explain_analyze`` executes a query with tracing enabled, lets the bound
auditor annotate the resulting span tree, and renders the physical plan
through :func:`repro.plans.printer.plan_to_string` with one runtime
annotation per operator: observed operations, the slice of the static bound
the operator owns, observed latency, and (when a trained latency model is
supplied) the predicted latency next to it.

``render_span_tree`` is the raw-trace counterpart — an indented dump of any
span tree, used by the tracing demo and diagnostics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..plans.printer import plan_to_string
from .audit import BoundAuditor
from .trace import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.database import PiqlDatabase
    from ..prediction.model import QueryLatencyModel


def _operator_self_operations(span: Span) -> int:
    """Operations charged by this operator itself (subtree minus children)."""
    total = int(span.attributes.get("operations", 0))
    for child in span.children:
        if child.kind == "operator":
            total -= int(child.attributes.get("operations", 0))
    return total


def explain_analyze(
    db: "PiqlDatabase",
    sql: str,
    parameters: Optional[Dict[str, Any]] = None,
    latency_model: Optional["QueryLatencyModel"] = None,
) -> str:
    """Execute ``sql`` once and render its plan with runtime annotations.

    Tracing is enabled for the duration of the call (and turned back off if
    it was off before), so ``EXPLAIN ANALYZE`` works on any database view
    without prior setup.  ``latency_model`` adds predicted-vs-observed
    latency per operator when a trained model is available.
    """
    prepared = db.prepare(sql)
    query = prepared.optimized
    client = db.client
    had_tracer = client.tracer is not None
    tracer = client.enable_tracing()
    was_verbose = tracer.verbose
    tracer.verbose = True  # span local operators too, not just storage ones
    try:
        result = prepared.execute(dict(parameters or {}))
        root = tracer.last_root()
    finally:
        tracer.verbose = was_verbose
        if not had_tracer:
            client.disable_tracing()
    if root is None:  # pragma: no cover - the executor always opens a root
        raise RuntimeError("no trace was recorded for the execution")
    # Annotation (bound slices, predictions) is applied on demand rather
    # than on the query hot path; EXPLAIN ANALYZE always wants it.
    if latency_model is not None:
        BoundAuditor(latency_model=latency_model).annotate_span(query, root)
    else:
        db.auditor.annotate_span(query, root)

    op_spans: Dict[int, Span] = {}
    for op_span in root.find("operator"):
        node_id = op_span.attributes.get("node_id")
        if isinstance(node_id, int):
            op_spans[node_id] = op_span

    def annotate(node) -> str:
        span = op_spans.get(id(node))
        if span is None:
            return ""
        parts: List[str] = [f"ops={_operator_self_operations(span)}"]
        slice_ = span.attributes.get("bound_slice")
        if slice_ is not None:
            parts.append(f"bound<={slice_}")
        parts.append(f"{span.duration * 1000.0:.3f} ms")
        predicted = span.attributes.get("predicted_seconds")
        if predicted is not None:
            parts.append(f"pred {float(predicted) * 1000.0:.3f} ms")
        rows = span.attributes.get("rows")
        if rows is not None:
            parts.append(f"rows={rows}")
        return "   [" + ", ".join(parts) + "]"

    bound = query.bound
    header = [
        "EXPLAIN ANALYZE",
        f"  query: {' '.join(sql.split())}",
        f"  operations: {result.operations}"
        + (f" (bound {bound.max_operations})" if bound is not None else ""),
        f"  rpcs: {result.rpcs}",
        f"  latency: {result.latency_seconds * 1000.0:.3f} ms",
    ]
    plan_text = plan_to_string(query.physical_plan, annotate=annotate)
    return "\n".join(header) + "\n" + plan_text


#: Attributes worth showing inline in a raw span-tree dump.
_RENDER_ATTRS = (
    "operations", "rpcs", "keys", "bytes", "rows", "bound_slice",
    "coalesced", "hinted", "repaired", "namespace",
)


def render_span_tree(root: Span, indent: int = 0) -> str:
    """An indented, human-readable dump of one span tree."""
    lines: List[str] = []
    _render_span(root, indent, lines)
    return "\n".join(lines)


def _render_span(span: Span, depth: int, lines: List[str]) -> None:
    parts = [f"{span.name} [{span.kind}]", f"{span.duration * 1000.0:.3f} ms"]
    details = [
        f"{name}={span.attributes[name]}"
        for name in _RENDER_ATTRS
        if span.attributes.get(name) not in (None, "", 0, False)
    ]
    if details:
        parts.append("(" + ", ".join(details) + ")")
    lines.append("  " * depth + " ".join(parts))
    for child in span.children:
        _render_span(child, depth + 1, lines)
