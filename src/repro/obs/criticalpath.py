"""Critical-path analysis: where did every microsecond of a query go?

A finished span tree says *what happened*; this module says *what the time
was spent on*.  :func:`analyze_trace` walks a root span and partitions its
``[start, end]`` window into **exclusive** segment classes:

* ``queue_wait`` — time an RPC spent behind other requests in a storage
  node's queue (carried on the span as ``queue_wait_seconds``),
* ``rpc_service`` — storage-tier service time: RPC spans minus their queue
  wait and hedge overlap, deadline waits (``rpc-timeout`` spans), and
  coalesced waits on a sibling branch's in-flight read,
* ``retry_backoff`` — jittered sleeps of the resilience policy,
* ``hedge_overlap`` — the tail of a hedged read during which two requests
  were in flight (everything past the hedge delay),
* ``view_maintenance`` — write-attributed incremental view deltas and
  handoff work (the whole subtree is charged to the cause, not re-split),
* ``compaction_interference`` — storage-engine stalls charged to the
  request (spans carrying ``compaction_stall_seconds``; zero unless the
  engine instruments it),
* ``client_compute`` — the residual: time inside the query that no storage
  span accounts for (planning, deserialisation, local operators).

**Overlap semantics.**  :meth:`~repro.engine.session.Session.gather` runs
sibling branches on scratch clocks starting at the same instant, so their
spans overlap in simulated time; a hedge twin overlaps its primary.  The
walk resolves every overlapping stretch to the *dominant* child — the one
whose span extends furthest — and recurses only into it, switching
siblings mid-window when the dominant child changes.  Time covered by a
non-dominant sibling is overlapped slack: it consumed no wall clock, so it
contributes nothing.  The result is an exact partition — segment seconds
sum to the root duration, and shares to 1.0, up to float addition error.

``logical-op`` spans (per-key accounting inside a coalesced RPC) describe
work, not wall time, and are excluded from the sweep: one RPC span with
forty logical children is still one RPC's worth of service time.

:class:`CriticalPathAggregator` folds breakdowns into per-query-class
profiles — time-weighted mean shares plus a top-k-slowest tail profile,
answering "this class's p99 is dominated by X" — and can scrape the shares
into a :class:`~repro.obs.timeseries.TimeSeriesStore` for the dashboard.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .trace import Span

#: Every segment class, in reporting order.  ``analyze_trace`` always
#: returns all of them (zero-valued classes included) so downstream
#: consumers never key-check.
SEGMENT_CLASSES = (
    "queue_wait",
    "rpc_service",
    "retry_backoff",
    "hedge_overlap",
    "view_maintenance",
    "compaction_interference",
    "client_compute",
)

_QUEUE = "queue_wait"
_RPC = "rpc_service"
_RETRY = "retry_backoff"
_HEDGE = "hedge_overlap"
_VIEW = "view_maintenance"
_COMPACTION = "compaction_interference"
_CLIENT = "client_compute"

#: Span kinds that are pure accounting (no wall time of their own).
_NON_WALL_KINDS = frozenset({"logical-op"})


def query_class_of(span: Span) -> str:
    """The query class a root span belongs to.

    Uses the whitespace-normalised SQL when present — the same key the
    drift detector groups residuals under — so forensics profiles line up
    with drift reports; write/maintenance roots fall back to the span name.
    """
    sql = span.attributes.get("sql")
    if isinstance(sql, str):
        return " ".join(sql.split())
    return span.name


@dataclass(frozen=True)
class CriticalPathBreakdown:
    """One trace's end-to-end latency, partitioned into segment classes."""

    query_class: str
    root_name: str
    start: float
    end: float
    #: Exclusive seconds per segment class; sums to ``duration_seconds``.
    segments: Dict[str, float]

    @property
    def duration_seconds(self) -> float:
        return self.end - self.start

    @property
    def shares(self) -> Dict[str, float]:
        """Fraction of the trace per segment class; always sums to 1.0.

        A zero-duration trace (everything resolved from cache, no simulated
        time charged) is by definition all client compute.
        """
        duration = self.duration_seconds
        if duration <= 0.0:
            return {
                cls: (1.0 if cls == _CLIENT else 0.0)
                for cls in SEGMENT_CLASSES
            }
        return {cls: self.segments[cls] / duration for cls in SEGMENT_CLASSES}

    @property
    def dominant(self) -> str:
        """The segment class that owns the largest slice of the trace."""
        shares = self.shares
        return max(SEGMENT_CLASSES, key=lambda cls: shares[cls])

    def describe(self) -> str:
        parts = ", ".join(
            f"{cls} {share * 100.0:.1f}%"
            for cls, share in sorted(
                self.shares.items(), key=lambda item: -item[1]
            )
            if share > 0.0005
        )
        return (
            f"{self.root_name}: {self.duration_seconds * 1000.0:.2f} ms = "
            f"{parts or 'client_compute 100.0%'}"
        )

    def payload(self) -> Dict[str, object]:
        return {
            "query_class": self.query_class,
            "root_name": self.root_name,
            "start": self.start,
            "end": self.end,
            "duration_seconds": self.duration_seconds,
            "segments_seconds": dict(self.segments),
            "shares": self.shares,
            "dominant": self.dominant,
        }


def _split_rpc(span: Span, lo: float, hi: float, segments: Dict[str, float]) -> None:
    """Partition one rpc span's window into queue / hedge / service time.

    When the sweep hands us only part of the span (an overlap was resolved
    to a sibling), the split is scaled proportionally — attribute shapes
    are a property of the whole RPC, not of where it was cut.
    """
    window = hi - lo
    duration = span.duration
    if window <= 0.0:
        return
    scale = window / duration if duration > 0.0 else 0.0
    attrs = span.attributes
    queue = attrs.get("queue_wait_seconds")
    queue = float(queue) if isinstance(queue, (int, float)) else 0.0
    queue = min(max(queue, 0.0), duration)
    hedge = 0.0
    if attrs.get("hedged"):
        delay = attrs.get("hedge_delay_seconds")
        if isinstance(delay, (int, float)):
            # Past the hedge delay two requests were in flight; that tail
            # is overlap the hedge bought, not extra service demand.
            hedge = max(0.0, duration - float(delay))
    stall = attrs.get("compaction_stall_seconds")
    stall = float(stall) if isinstance(stall, (int, float)) else 0.0
    stall = max(stall, 0.0)
    # Clamp the carve-outs so they never exceed the span itself.
    overhead = queue + hedge + stall
    if overhead > duration and overhead > 0.0:
        shrink = duration / overhead
        queue *= shrink
        hedge *= shrink
        stall *= shrink
    segments[_QUEUE] += queue * scale
    segments[_HEDGE] += hedge * scale
    segments[_COMPACTION] += stall * scale
    segments[_RPC] += (duration - queue - hedge - stall) * scale


def _attribute(span: Span, lo: float, hi: float, segments: Dict[str, float]) -> None:
    """Attribute the wall-time window ``[lo, hi]`` owned by ``span``."""
    if hi <= lo:
        return
    kind = span.kind
    if kind == "view-maintenance":
        # The whole subtree is the write's maintenance bill: its inner RPCs
        # are *caused by* the view, and that cause is what the operator
        # reading the breakdown needs to see.
        segments[_VIEW] += hi - lo
        return
    if kind == "rpc":
        _split_rpc(span, lo, hi, segments)
        return
    if kind in ("rpc-timeout", "coalesced"):
        # Waiting out a deadline, or waiting on a sibling branch's
        # in-flight read: either way the time went to the storage tier.
        segments[_RPC] += hi - lo
        return
    if kind == "resilience":
        segments[_RETRY] += hi - lo
        return

    # Structural span (query/write root, operator, gather, branch, unknown
    # kinds): sweep its children, attribute gaps to client compute.
    intervals: List[Tuple[float, float, Span]] = []
    for child in span.children:
        if child.kind in _NON_WALL_KINDS or child.end is None:
            continue
        start = child.start if child.start > lo else lo
        end = child.end if child.end < hi else hi
        if end > start:
            intervals.append((start, end, child))
    if not intervals:
        segments[_CLIENT] += hi - lo
        return

    # Fast path: sequential (non-overlapping) children — the shape of
    # every pipeline of operators and by far the hot-path common case.
    # A linear cursor walk attributes each child and the gaps between
    # them without building the elementary-interval sweep below.
    intervals.sort(key=lambda interval: interval[0])
    disjoint = True
    for previous, current in zip(intervals, intervals[1:]):
        if current[0] < previous[1]:
            disjoint = False
            break
    if disjoint:
        cursor = lo
        for start, end, child in intervals:
            if start > cursor:
                segments[_CLIENT] += start - cursor
            _attribute(child, start, end, segments)
            cursor = end
        if hi > cursor:
            segments[_CLIENT] += hi - cursor
        return

    bounds = {lo, hi}
    for start, end, _ in intervals:
        bounds.add(start)
        bounds.add(end)
    ordered = sorted(bounds)

    # Merge consecutive elementary intervals that resolve to the same
    # child before recursing, so a child is re-entered once per contiguous
    # stretch it dominates (keeps rpc proportional splits exact).
    runs: List[Tuple[float, float, Optional[Span]]] = []
    for a, b in zip(ordered, ordered[1:]):
        dominant: Optional[Tuple[float, float, Span]] = None
        for interval in intervals:
            start, end, _ = interval
            if start <= a and end >= b:
                if dominant is None or end > dominant[1]:
                    dominant = interval
        child = dominant[2] if dominant is not None else None
        if runs and runs[-1][2] is child:
            runs[-1] = (runs[-1][0], b, child)
        else:
            runs.append((a, b, child))
    for a, b, child in runs:
        if child is None:
            segments[_CLIENT] += b - a
        else:
            _attribute(child, a, b, segments)


def analyze_trace(
    root: Span, query_class: Optional[str] = None
) -> CriticalPathBreakdown:
    """Partition a finished root span's latency into segment classes.

    Raises ``ValueError`` on an open span — a critical path only exists
    once the trace has an end.
    """
    if root.end is None:
        raise ValueError(f"span {root.name!r} is still open")
    segments = {cls: 0.0 for cls in SEGMENT_CLASSES}
    if root.end > root.start:
        _attribute(root, root.start, root.end, segments)
    return CriticalPathBreakdown(
        query_class=query_class or query_class_of(root),
        root_name=root.name,
        start=root.start,
        end=root.end,
        segments=segments,
    )


@dataclass(frozen=True)
class BreakdownProfile:
    """One query class's aggregated latency anatomy."""

    query_class: str
    traces: int
    total_seconds: float
    #: Time-weighted mean share per segment class.
    mean_shares: Dict[str, float]
    #: Share per segment class over the slowest retained traces only.
    tail_shares: Dict[str, float]
    #: Traces in the tail sample.
    tail_traces: int
    #: Duration of the slowest observed trace.
    max_seconds: float

    @property
    def dominant(self) -> str:
        return max(SEGMENT_CLASSES, key=lambda cls: self.mean_shares[cls])

    @property
    def tail_dominant(self) -> str:
        """What the slow tail of this class spends its time on."""
        return max(SEGMENT_CLASSES, key=lambda cls: self.tail_shares[cls])

    def describe(self) -> str:
        return (
            f"{self.query_class!r}: {self.traces} traces, tail dominated by "
            f"{self.tail_dominant} "
            f"({self.tail_shares[self.tail_dominant] * 100.0:.1f}% of the "
            f"{self.tail_traces} slowest), overall {self.dominant} "
            f"{self.mean_shares[self.dominant] * 100.0:.1f}%"
        )

    def payload(self) -> Dict[str, object]:
        return {
            "query_class": self.query_class,
            "traces": self.traces,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
            "mean_shares": dict(self.mean_shares),
            "tail_shares": dict(self.tail_shares),
            "tail_traces": self.tail_traces,
            "dominant": self.dominant,
            "tail_dominant": self.tail_dominant,
        }


class _ClassAccumulator:
    __slots__ = ("count", "total_seconds", "max_seconds", "segment_totals", "slowest", "_seq")

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.segment_totals = {cls: 0.0 for cls in SEGMENT_CLASSES}
        #: Min-heap of (duration, seq, segments) keeping the top-k slowest.
        self.slowest: List[Tuple[float, int, Dict[str, float], float]] = []
        self._seq = 0


class CriticalPathAggregator:
    """Folds per-trace breakdowns into per-query-class profiles.

    State is bounded: at most ``max_classes`` query classes, each keeping
    running segment totals plus the ``tail_k`` slowest traces' segment
    dicts (the "p99 is dominated by X" sample).  Classes turned away by
    the cap are counted in :attr:`dropped_classes` — no silent loss.
    """

    def __init__(self, tail_k: int = 16, max_classes: int = 64):
        if tail_k <= 0:
            raise ValueError("tail_k must be positive")
        self.tail_k = tail_k
        self.max_classes = max_classes
        self._classes: Dict[str, _ClassAccumulator] = {}
        self.observed = 0
        self.dropped_classes = 0

    def observe(self, breakdown: CriticalPathBreakdown) -> None:
        self.observed += 1
        state = self._classes.get(breakdown.query_class)
        if state is None:
            if len(self._classes) >= self.max_classes:
                self.dropped_classes += 1
                return
            state = _ClassAccumulator()
            self._classes[breakdown.query_class] = state
        duration = breakdown.duration_seconds
        state.count += 1
        state.total_seconds += duration
        if duration > state.max_seconds:
            state.max_seconds = duration
        for cls in SEGMENT_CLASSES:
            state.segment_totals[cls] += breakdown.segments[cls]
        state._seq += 1
        entry = (duration, state._seq, dict(breakdown.segments), duration)
        if len(state.slowest) < self.tail_k:
            heapq.heappush(state.slowest, entry)
        elif duration > state.slowest[0][0]:
            heapq.heapreplace(state.slowest, entry)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def profiles(self) -> List[BreakdownProfile]:
        profiles: List[BreakdownProfile] = []
        for query_class in sorted(self._classes):
            state = self._classes[query_class]
            total = state.total_seconds
            if total > 0.0:
                mean = {
                    cls: state.segment_totals[cls] / total
                    for cls in SEGMENT_CLASSES
                }
            else:
                mean = {
                    cls: (1.0 if cls == _CLIENT else 0.0)
                    for cls in SEGMENT_CLASSES
                }
            tail_total = sum(entry[0] for entry in state.slowest)
            if tail_total > 0.0:
                tail = {
                    cls: sum(entry[2][cls] for entry in state.slowest) / tail_total
                    for cls in SEGMENT_CLASSES
                }
            else:
                tail = dict(mean)
            profiles.append(
                BreakdownProfile(
                    query_class=query_class,
                    traces=state.count,
                    total_seconds=total,
                    mean_shares=mean,
                    tail_shares=tail,
                    tail_traces=len(state.slowest),
                    max_seconds=state.max_seconds,
                )
            )
        return profiles

    def profile(self, query_class: str) -> Optional[BreakdownProfile]:
        for candidate in self.profiles():
            if candidate.query_class == query_class:
                return candidate
        return None

    def describe(self) -> str:
        lines = [profile.describe() for profile in self.profiles()]
        return "\n".join(lines) if lines else "no traces analyzed yet"

    def payload(self) -> Dict[str, object]:
        return {
            "observed": self.observed,
            "dropped_classes": self.dropped_classes,
            "profiles": [profile.payload() for profile in self.profiles()],
        }

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def scrape(self, store, now: float) -> None:
        """Record running per-class segment shares into a time-series store.

        Series: ``forensics.segment_share{query_class=..., segment=...}``
        (time-weighted running mean) — the feed behind the dashboard's
        LATENCY BREAKDOWN section.
        """
        for profile in self.profiles():
            for cls in SEGMENT_CLASSES:
                share = profile.mean_shares[cls]
                if share <= 0.0:
                    continue
                store.record(
                    "forensics.segment_share",
                    share,
                    now,
                    {"query_class": profile.query_class, "segment": cls},
                )
        store.record("forensics.traces_analyzed", float(self.observed), now)
