"""A named-metric registry: counters, gauges, and bounded histograms.

Before this module, the simulator's measurement state was scattered across
ad-hoc dataclass fields (``ClientStats``, ``NodeStats``, ``TrafficLog``),
each with hand-written snapshot/delta/reset code that had to be kept in
sync with the field list.  The registry replaces that with one generic
mechanism: a metric is a *name*, snapshots copy every name, and deltas
difference the union of names — adding a counter somewhere never requires
touching accounting code anywhere else.

Conventions
-----------
Metric names are dotted paths grouped by owner: ``client.operations``,
``node.keys_filtered``, ``serving.shed``, ``replication.hints_replayed``.
Counters are monotonic within a measurement window (snapshot/delta make
windows); gauges are last-write-wins; histograms are bounded reservoirs of
observations intended for percentile reporting.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import HistogramMergeError
from ..stats import nearest_rank_percentile

#: Default size of a histogram's reservoir — matches the per-client latency
#: reservoir so long simulations stay O(1) in memory.
DEFAULT_HISTOGRAM_CAPACITY = 512


class BoundedHistogram:
    """A bounded reservoir of observations (Vitter's algorithm R).

    Keeps at most ``capacity`` samples with each of the ``count`` observed
    values equally likely to be retained, so percentiles stay representative
    no matter how long the run.  The random stream is deterministic, keeping
    simulations reproducible.
    """

    __slots__ = ("capacity", "samples", "count", "total", "_rng")

    def __init__(self, capacity: int = DEFAULT_HISTOGRAM_CAPACITY, seed: int = 0x5EED):
        if capacity < 1:
            raise ValueError("histogram capacity must be positive")
        self.capacity = capacity
        self.samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self.samples) < self.capacity:
            self.samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self.samples[slot] = value

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (e.g. ``0.99``) of the retained samples."""
        return nearest_rank_percentile(self.samples, fraction)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def copy(self) -> "BoundedHistogram":
        clone = BoundedHistogram.__new__(BoundedHistogram)
        clone.capacity = self.capacity
        clone.samples = list(self.samples)
        clone.count = self.count
        clone.total = self.total
        clone._rng = random.Random()
        clone._rng.setstate(self._rng.getstate())
        return clone

    def merge(self, other: "BoundedHistogram") -> None:
        """Fold another reservoir into this one (fleet roll-ups).

        The result is a representative sample of the *union* of both
        observation streams at this histogram's capacity: each retained
        slot is drawn from one operand with probability proportional to
        how many observations that operand's reservoir stands for, sampled
        without replacement within each side.  Differing capacities
        therefore rebin naturally — the merged reservoir simply re-weights
        — while an internally inconsistent operand (a reservoir claiming
        more retained samples than observations, which would silently skew
        every weight) raises :class:`~repro.errors.HistogramMergeError`.
        Deterministic: draws come from this histogram's own seeded stream.
        """
        if not isinstance(other, BoundedHistogram):
            raise HistogramMergeError(
                f"operand is {type(other).__name__}, not BoundedHistogram"
            )
        for operand, side in ((self, "self"), (other, "other")):
            if operand.capacity < 1:
                raise HistogramMergeError(f"{side} has capacity {operand.capacity}")
            if len(operand.samples) > operand.count:
                raise HistogramMergeError(
                    f"{side} retains {len(operand.samples)} samples but "
                    f"claims only {operand.count} observations"
                )
        if other.count == 0:
            return
        if self.count == 0:
            # Nothing to weight against: adopt a (sub)sample of the other
            # reservoir at this histogram's capacity.
            pool = list(other.samples)
            while len(pool) > self.capacity:
                pool.pop(self._rng.randrange(len(pool)))
            self.samples = pool
            self.count = other.count
            self.total = other.total
            return
        mine = list(self.samples)
        theirs = list(other.samples)
        weight_mine = float(self.count)
        weight_theirs = float(other.count)
        target = min(self.capacity, len(mine) + len(theirs))
        merged: List[float] = []
        rng = self._rng
        while len(merged) < target:
            if not mine:
                take_mine = False
            elif not theirs:
                take_mine = True
            else:
                take_mine = (
                    rng.random() * (weight_mine + weight_theirs) < weight_mine
                )
            pool = mine if take_mine else theirs
            merged.append(pool.pop(rng.randrange(len(pool))))
        self.samples = merged
        self.count += other.count
        self.total += other.total


class MetricsRegistry:
    """Named counters, gauges, and histograms with snapshot/delta semantics."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, BoundedHistogram] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def add(self, name: str, amount: float = 1) -> None:
        """Increment a counter (created at zero on first touch)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_counter(self, name: str, value: float) -> None:
        """Set a counter outright (used by backward-compatible setters)."""
        self._counters[name] = value

    def value(self, name: str) -> float:
        """Current value of a counter (zero if never touched)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, float]:
        """A copy of every counter, for reports and assertions."""
        return dict(self._counters)

    @property
    def live_counters(self) -> Dict[str, float]:
        """The live counter mapping itself — hot-path reads; do not mutate."""
        return self._counters

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def observe(
        self,
        name: str,
        value: float,
        capacity: int = DEFAULT_HISTOGRAM_CAPACITY,
    ) -> None:
        """Offer one observation to a named bounded histogram."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = BoundedHistogram(capacity)
            self._histograms[name] = histogram
        histogram.observe(value)

    def histogram(self, name: str) -> Optional[BoundedHistogram]:
        return self._histograms.get(name)

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def snapshot(self) -> "MetricsRegistry":
        """An independent copy of every metric (one end of a window)."""
        copy = MetricsRegistry()
        copy._counters = dict(self._counters)
        copy._gauges = dict(self._gauges)
        copy._histograms = {
            name: histogram.copy() for name, histogram in self._histograms.items()
        }
        return copy

    def delta(self, earlier: "MetricsRegistry") -> "MetricsRegistry":
        """Counter differences over the union of names.

        Gauges carry the later value (they are not additive); histograms are
        samples, not sums, so the delta starts with none.
        """
        diff = MetricsRegistry()
        names = set(self._counters) | set(earlier._counters)
        diff._counters = {
            name: self._counters.get(name, 0) - earlier._counters.get(name, 0)
            for name in names
        }
        diff._gauges = dict(self._gauges)
        return diff

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (fleet roll-ups).

        Counters add; gauges take the other registry's value (last write
        wins, matching :meth:`delta`); histograms merge as weighted
        reservoir samples — see :meth:`BoundedHistogram.merge`, which
        rebins operands of differing capacities and raises
        :class:`~repro.errors.HistogramMergeError` on inconsistent ones.
        """
        for name, value in other._counters.items():
            self.add(name, value)
        for name, value in other._gauges.items():
            self._gauges[name] = value
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = histogram.copy()
            else:
                mine.merge(histogram)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({dict(sorted(self._counters.items()))!r})"
