"""Incident reports: correlate faults, breakers, alerts, and traces.

A chaos run leaves its story scattered across five subsystems: the fault
injector knows what was *done* to the cluster, the breaker watch knows how
clients *reacted*, the burn-rate alerter knows when the SLO *noticed*, the
drift detector knows which query classes left their envelope, and the
flight recorder holds the traces that *show* the damage.  The incident
report stitches them into one timeline: injected fault windows (crash
through recover, partition through heal, …) annotated with the breaker
transitions, SLO alerts, and retained traces that fall inside each window
(± a correlation grace), rendered as text and exported as the
``incident-report/v1`` JSON artifact (docs/incident-report-v1.md).

:class:`LatencyForensics` is the bundle the serving tier wires in: one
critical-path aggregator + flight recorder + breaker watch, ticked from
the control loop and harvested into the serving report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .criticalpath import CriticalPathAggregator
from .flightrec import (
    BreakerTransition,
    BreakerWatch,
    FlightRecorder,
    ForensicsConfig,
    RetainedTrace,
)

#: Fault kinds that open a window, and what closes them.
_OPENERS = ("crash", "partition", "slow", "flaky", "delay")


@dataclass(frozen=True)
class FaultWindow:
    """One injected-fault interval: from the fault to its repair."""

    start: float
    end: float
    kind: str
    node_id: int = -1
    detail: str = ""

    @property
    def label(self) -> str:
        target = f" node {self.node_id}" if self.node_id >= 0 else ""
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.kind}{target}{suffix}"

    def describe(self) -> str:
        return f"{self.label} [{self.start:.2f}s – {self.end:.2f}s]"


def _closes(kind: str, node_id: int, opener: FaultWindow) -> bool:
    if opener.kind == "crash":
        return kind == "recover" and node_id == opener.node_id
    if opener.kind == "partition":
        return kind == "heal"
    if opener.kind == "slow":
        return kind == "restore" and node_id == opener.node_id
    if opener.kind == "flaky":
        # p=0 re-arms the link; heal clears every network fault.
        return kind == "heal" or (
            kind == "flaky" and node_id == opener.node_id
        )
    if opener.kind == "delay":
        return kind == "heal" or (
            kind == "delay" and node_id == opener.node_id
        )
    return False


def _magnitude(item: object) -> float:
    """Severity of a flaky/delay item: 0 means it re-arms (repairs) the link.

    FaultSpecs carry the magnitude as a field; applied FaultEvents only
    keep the injector's detail string (``p=0.12`` / ``delay=0.6s``).
    """
    kind = item.kind
    probability = getattr(item, "probability", None)
    if probability is not None:  # a FaultSpec
        if kind == "flaky":
            return probability
        if kind == "delay":
            return item.delay_seconds
        return 1.0
    detail = getattr(item, "detail", "") or ""
    try:
        if kind == "flaky" and detail.startswith("p="):
            return float(detail[2:])
        if kind == "delay" and detail.startswith("delay="):
            return float(detail[6:].rstrip("s"))
    except ValueError:
        pass
    return 1.0


def _opens(item: object) -> bool:
    """Whether a fault item starts a degraded window (vs repairing one)."""
    if item.kind not in _OPENERS:
        return False
    if item.kind in ("flaky", "delay"):
        return _magnitude(item) > 0.0
    return True


def fault_windows(items: Sequence[object], horizon: float) -> List[FaultWindow]:
    """Pair fault specs *or* applied events into degraded-state windows.

    Accepts :class:`~repro.replication.faults.FaultSpec` (pre-run, for
    registering recorder retention windows) and
    :class:`~repro.replication.faults.FaultEvent` (post-run, for the
    report) alike — both carry ``time``/``kind``/``node_id``; magnitude
    detail comes from spec fields or the event's detail string.  A window
    whose repair never fired extends to ``horizon``.
    """
    open_windows: List[FaultWindow] = []
    closed: List[FaultWindow] = []
    for item in sorted(items, key=lambda i: i.time):
        kind = item.kind
        node_id = getattr(item, "node_id", -1)
        detail = _detail_of(item)
        still_open: List[FaultWindow] = []
        for opener in open_windows:
            if _closes(kind, node_id, opener) and item.time > opener.start:
                closed.append(
                    FaultWindow(
                        start=opener.start,
                        end=item.time,
                        kind=opener.kind,
                        node_id=opener.node_id,
                        detail=opener.detail,
                    )
                )
            else:
                still_open.append(opener)
        open_windows = still_open
        if _opens(item):
            open_windows.append(
                FaultWindow(
                    start=item.time,
                    end=horizon,
                    kind=kind,
                    node_id=node_id,
                    detail=detail,
                )
            )
    closed.extend(open_windows)
    closed.sort(key=lambda w: (w.start, w.kind, w.node_id))
    return closed


def _detail_of(item: object) -> str:
    detail = getattr(item, "detail", None)
    if detail is not None:
        return detail
    # FaultSpec: synthesise the injector's detail string from its fields.
    kind = item.kind
    if kind == "slow":
        return f"factor={item.factor:g}"
    if kind == "flaky":
        return f"p={item.probability:g}"
    if kind == "delay":
        return f"delay={item.delay_seconds:g}s"
    if kind == "partition" and item.groups:
        return "groups=" + "|".join(
            ",".join(str(m) for m in group) for group in item.groups
        )
    return ""


@dataclass(frozen=True)
class TimelineEntry:
    """One event on the merged incident timeline."""

    time: float
    kind: str  # fault | fault-repair | breaker | slo-alert | slo-clear | drift | trace
    label: str
    detail: str = ""

    def describe(self) -> str:
        return f"t={self.time:7.3f}s  {self.kind:<12} {self.label}" + (
            f"  ({self.detail})" if self.detail else ""
        )


@dataclass
class WindowCorrelation:
    """What the observability stack captured inside one fault window."""

    window: FaultWindow
    trace_ids: List[str] = field(default_factory=list)
    breaker_transitions: int = 0
    slo_alerts: int = 0

    @property
    def correlated(self) -> bool:
        """≥1 retained trace AND ≥1 breaker-or-alert reaction."""
        return bool(self.trace_ids) and (
            self.breaker_transitions > 0 or self.slo_alerts > 0
        )

    def payload(self) -> Dict[str, object]:
        return {
            "window": {
                "start": self.window.start,
                "end": self.window.end,
                "kind": self.window.kind,
                "node_id": self.window.node_id,
                "detail": self.window.detail,
                "label": self.window.label,
            },
            "trace_ids": list(self.trace_ids),
            "breaker_transitions": self.breaker_transitions,
            "slo_alerts": self.slo_alerts,
            "correlated": self.correlated,
        }


@dataclass
class IncidentReport:
    """Merged timeline + per-window correlation of one (chaos) run."""

    title: str
    horizon: float
    entries: List[TimelineEntry]
    windows: List[WindowCorrelation]
    retained_traces: int
    grace_seconds: float

    def reconstructs_schedule(self, kinds: Sequence[str] = ("crash", "partition")) -> bool:
        """True when every window of the given kinds is fully correlated."""
        relevant = [c for c in self.windows if c.window.kind in kinds]
        return all(c.correlated for c in relevant)

    def uncorrelated_windows(self) -> List[FaultWindow]:
        return [c.window for c in self.windows if not c.correlated]

    def render(self) -> str:
        lines = [f"=== incident report: {self.title} ==="]
        lines.append(
            f"{len(self.windows)} fault window(s), "
            f"{self.retained_traces} retained trace(s), "
            f"correlation grace ±{self.grace_seconds:g}s"
        )
        lines.append("-- windows --")
        for correlation in self.windows:
            mark = "ok " if correlation.correlated else "MISS"
            lines.append(
                f"  [{mark}] {correlation.window.describe()}: "
                f"{len(correlation.trace_ids)} trace(s), "
                f"{correlation.breaker_transitions} breaker transition(s), "
                f"{correlation.slo_alerts} SLO alert(s)"
            )
        lines.append("-- timeline --")
        for entry in self.entries:
            lines.append("  " + entry.describe())
        return "\n".join(lines)

    def payload(self) -> Dict[str, object]:
        return {
            "schema": "incident-report/v1",
            "title": self.title,
            "horizon_seconds": self.horizon,
            "grace_seconds": self.grace_seconds,
            "retained_traces": self.retained_traces,
            "reconstructs_schedule": self.reconstructs_schedule(),
            "windows": [c.payload() for c in self.windows],
            "timeline": [
                {
                    "time": entry.time,
                    "kind": entry.kind,
                    "label": entry.label,
                    "detail": entry.detail,
                }
                for entry in self.entries
            ],
        }

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def build_incident_report(
    title: str,
    horizon: float,
    fault_events: Sequence[object] = (),
    transitions: Sequence[BreakerTransition] = (),
    alerts: Sequence[object] = (),
    drift_reports: Sequence[object] = (),
    traces: Sequence[RetainedTrace] = (),
    grace_seconds: float = 2.0,
) -> IncidentReport:
    """Correlate everything one run observed into an :class:`IncidentReport`.

    ``fault_events`` are the injector's applied events (specs also work);
    ``alerts`` are :class:`~repro.obs.slo.SLOAlert`\\ s; ``drift_reports``
    are end-of-run :class:`~repro.obs.drift.DriftReport`\\ s (summaries, so
    they enter the timeline at ``horizon``); ``traces`` come from the
    flight recorder.  Correlation: a trace counts toward a window when its
    span overlaps it; breaker transitions count within ``grace_seconds``
    of the window (reactions trail their cause); an alert counts while it
    is firing (its [fired, cleared] interval overlaps the padded window).
    """
    windows = fault_windows(fault_events, horizon)
    entries: List[TimelineEntry] = []
    for item in fault_events:
        detail = _detail_of(item)
        is_repair = not _opens(item)
        target = (
            f"node {item.node_id}" if getattr(item, "node_id", -1) >= 0 else "network"
        )
        entries.append(
            TimelineEntry(
                time=item.time,
                kind="fault-repair" if is_repair else "fault",
                label=f"{item.kind} {target}",
                detail=detail,
            )
        )
    for transition in transitions:
        entries.append(
            TimelineEntry(
                time=transition.time,
                kind="breaker",
                label=f"node {transition.node_id}",
                detail=f"{transition.from_state} -> {transition.to_state}",
            )
        )
    for alert in alerts:
        entries.append(
            TimelineEntry(
                time=alert.fired_at,
                kind="slo-alert",
                label=alert.rule.name,
                detail=f"fast {alert.fast_burn:.1f}x slow {alert.slow_burn:.1f}x",
            )
        )
        if alert.cleared_at is not None:
            entries.append(
                TimelineEntry(
                    time=alert.cleared_at,
                    kind="slo-clear",
                    label=alert.rule.name,
                    detail=f"peak {alert.peak_fast_burn:.1f}x",
                )
            )
    for report in drift_reports:
        if getattr(report, "drifting", False):
            entries.append(
                TimelineEntry(
                    time=horizon,
                    kind="drift",
                    label=report.query_class,
                    detail=(
                        f"median residual "
                        f"{report.median_residual_seconds * 1000.0:+.2f} ms"
                    ),
                )
            )
    for trace in traces:
        entries.append(
            TimelineEntry(
                time=trace.retained_at,
                kind="trace",
                label=trace.trace_id,
                detail=(
                    f"{trace.query_class[:48]} "
                    f"{trace.latency_seconds * 1000.0:.2f} ms "
                    f"[{','.join(trace.reasons)}]"
                ),
            )
        )
    entries.sort(key=lambda e: (e.time, e.kind, e.label))

    correlations: List[WindowCorrelation] = []
    for window in windows:
        lo = window.start - grace_seconds
        hi = window.end + grace_seconds
        correlation = WindowCorrelation(window=window)
        for trace in traces:
            span = trace.span
            if span.end is not None and span.start < hi and span.end > lo:
                correlation.trace_ids.append(trace.trace_id)
        correlation.breaker_transitions = sum(
            1 for t in transitions if lo <= t.time <= hi
        )
        # An alert correlates while it is *firing*, not just at the firing
        # instant: a still-active alert spans [fired_at, cleared_at or
        # horizon], so one long burn covers every window it burned through.
        correlation.slo_alerts = sum(
            1
            for a in alerts
            if a.fired_at <= hi
            and (a.cleared_at is None or a.cleared_at >= lo)
        )
        correlations.append(correlation)

    return IncidentReport(
        title=title,
        horizon=horizon,
        entries=entries,
        windows=correlations,
        retained_traces=len(traces),
        grace_seconds=grace_seconds,
    )


class LatencyForensics:
    """The serving tier's forensics bundle: aggregator + recorder + watch.

    Construction wires the three pieces together; the serving simulation
    attaches :attr:`recorder` as the auditor's recorder hook, calls
    :meth:`tick` from its control loop (breaker diffing + time-series
    scrape), and :meth:`report` / :meth:`incident_report` at the end.
    """

    def __init__(
        self,
        config: Optional[ForensicsConfig] = None,
        drift: Optional[object] = None,
        tracer: Optional[object] = None,
    ):
        self.config = config or ForensicsConfig()
        self.aggregator = CriticalPathAggregator()
        self.recorder = FlightRecorder(
            self.config, drift=drift, aggregator=self.aggregator
        )
        self.watch = BreakerWatch(self.recorder)
        self.tracer = tracer

    def register_fault_windows(
        self, specs: Sequence[object], horizon: float
    ) -> List[FaultWindow]:
        """Pre-register injected-fault retention windows on the recorder."""
        windows = fault_windows(specs, horizon)
        for window in windows:
            self.recorder.note_window(window.start, window.end, window.label)
        return windows

    def tick(
        self,
        now: float,
        boards: Sequence[object] = (),
        store: Optional[object] = None,
    ) -> None:
        """One control-loop step: poll breakers, scrape gauges."""
        self.watch.poll(boards, now)
        if store is None:
            return
        self.aggregator.scrape(store, now)
        store.record("forensics.retained_traces", float(len(self.recorder.traces)), now)
        store.record("forensics.memory_bytes", float(self.recorder.memory_bytes), now)
        store.record("forensics.dropped_traces", float(self.recorder.dropped), now)
        if self.tracer is not None:
            store.record(
                "obs.trace.dropped_roots",
                float(self.tracer.dropped_roots),
                now,
            )

    def finalize(self, now: float) -> None:
        """Close still-open breaker windows at end of run."""
        self.watch.finalize(now)

    def incident_report(
        self,
        title: str,
        horizon: float,
        fault_events: Sequence[object] = (),
        alerts: Sequence[object] = (),
        drift_reports: Sequence[object] = (),
        grace_seconds: float = 2.0,
    ) -> IncidentReport:
        return build_incident_report(
            title=title,
            horizon=horizon,
            fault_events=fault_events,
            transitions=self.watch.transitions,
            alerts=alerts,
            drift_reports=drift_reports,
            traces=self.recorder.traces,
            grace_seconds=grace_seconds,
        )

    def payload(self) -> Dict[str, object]:
        payload = self.recorder.payload()
        payload["critical_path"] = self.aggregator.payload()
        payload["breaker_transitions"] = self.watch.payload()
        if self.tracer is not None:
            payload["tracer_dropped_roots"] = self.tracer.dropped_roots
        return payload

    def describe(self) -> str:
        lines = [self.recorder.describe()]
        lines.append(self.aggregator.describe())
        if self.watch.transitions:
            lines.append(
                f"breaker transitions: {len(self.watch.transitions)}"
            )
        return "\n".join(lines)
