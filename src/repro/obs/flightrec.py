"""Tail-based flight recorder: keep exactly the traces worth explaining.

The tracer's root deque keeps the *most recent* traces; under load the
interesting ones — the p99 spike, the query that tripped its bound during
a partition — are evicted thousands of interactions before anyone looks.
The :class:`FlightRecorder` inverts that: every finished query is offered
(via the :class:`~repro.obs.audit.BoundAuditor` hook), and a trace is
**retained** when it is

* ``slow`` — observed latency outside the latency model's stated per-class
  envelope (the drift detector's cached ``p_high`` quantile, so the hot
  path pays one dict hit),
* ``error`` — the execution raised,
* ``bound_violation`` — the runtime bound auditor flagged it (these pin
  their trace against eviction),
* ``fault_window`` / ``breaker_window`` — the trace overlapped an injected
  fault window or a circuit-breaker-open window,
* ``baseline`` — a small deterministic every-Nth reservoir, so there is
  always a healthy trace to diff a pathological one against.

Retention is **bounded twice**: a trace-count cap and a byte budget over
estimated span-tree sizes.  Eviction prefers baseline-only traces, then
the oldest unpinned trace; every eviction is counted (no silent caps).
The first trace retained for each distinct window label is pinned so an
incident report can always cite at least one trace per fault window.

**Exemplars** link metrics to traces: every observation lands in a
power-of-two latency band per query class, and each band remembers the id
of the last *retained* trace that fell in it — the histogram bucket answers
"how many", the exemplar answers "show me one".

:class:`BreakerWatch` synthesises circuit-breaker *transitions* (the
breaker state machine is derived from timestamps, so no transition events
exist natively): polled each control tick, it diffs per-node states,
records :class:`BreakerTransition` objects, and opens/closes recorder
windows so traces overlapping an open breaker are retained.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .criticalpath import (
    CriticalPathAggregator,
    CriticalPathBreakdown,
    analyze_trace,
    query_class_of,
)
from .trace import Span

#: Smallest / largest exemplar latency band upper edge, in milliseconds.
_BAND_FLOOR_MS = 0.25
_BAND_CEILING_MS = 16384.0


def _band_upper_ms(latency_ms: float) -> float:
    """The power-of-two band upper edge a latency falls under."""
    upper = _BAND_FLOOR_MS
    while upper < latency_ms and upper < _BAND_CEILING_MS:
        upper *= 2.0
    return upper


@dataclass(frozen=True)
class ForensicsConfig:
    """Bounds and thresholds of one flight recorder."""

    #: Hard cap on concurrently retained traces.
    max_traces: int = 64
    #: Every Nth otherwise-unretained trace is kept as a healthy baseline.
    reservoir_interval: int = 97
    #: Byte budget over estimated retained span-tree sizes.
    memory_budget_bytes: int = 1_000_000
    #: A trace is ``slow`` when latency exceeds envelope.p_high * factor.
    slow_grace_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.max_traces <= 0:
            raise ValueError("max_traces must be positive")
        if self.reservoir_interval <= 0:
            raise ValueError("reservoir_interval must be positive")
        if self.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        if self.slow_grace_factor <= 0:
            raise ValueError("slow_grace_factor must be positive")


@dataclass(frozen=True)
class BreakerTransition:
    """One observed circuit-breaker state change on one client board."""

    time: float
    node_id: int
    from_state: str
    to_state: str

    def describe(self) -> str:
        return (
            f"t={self.time:7.3f}s breaker[node {self.node_id}] "
            f"{self.from_state} -> {self.to_state}"
        )


@dataclass
class RetainedTrace:
    """One trace the recorder decided to keep, plus why."""

    trace_id: str
    span: Span
    query_class: str
    latency_seconds: float
    retained_at: float
    reasons: Tuple[str, ...]
    breakdown: Optional[CriticalPathBreakdown]
    approx_bytes: int
    #: Pinned traces (bound violations, first-per-window) resist eviction.
    pinned: bool = False

    def payload(self, include_spans: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "trace_id": self.trace_id,
            "query_class": self.query_class,
            "root_name": self.span.name,
            "start": self.span.start,
            "end": self.span.end,
            "latency_seconds": self.latency_seconds,
            "retained_at": self.retained_at,
            "reasons": list(self.reasons),
            "pinned": self.pinned,
            "approx_bytes": self.approx_bytes,
            "span_count": sum(1 for _ in self.span.walk()),
        }
        if self.breakdown is not None:
            payload["critical_path"] = self.breakdown.payload()
        if include_spans:
            from .export import span_to_dict

            payload["spans"] = span_to_dict(self.span)
        return payload


def _estimate_bytes(span: Span) -> int:
    """Rough retained-memory estimate of a span tree (budget accounting)."""
    total = 0
    for node in span.walk():
        total += 120 + 48 * len(node.attributes)
    return total


class FlightRecorder:
    """Bounded tail-based trace retention with exemplars.

    Parameters
    ----------
    config:
        Retention bounds; defaults to :class:`ForensicsConfig`.
    drift:
        Optional :class:`~repro.obs.drift.PredictionDriftDetector` (duck
        typed: ``_predict_envelope(query)``); provides the per-class
        latency envelope behind the ``slow`` predicate and shares its
        plan-keyed cache, so the hot-path cost is a dict hit.
    aggregator:
        Optional :class:`~repro.obs.criticalpath.CriticalPathAggregator`;
        when present every observed trace's breakdown feeds it (retained
        or not), building the per-class profiles.
    """

    def __init__(
        self,
        config: Optional[ForensicsConfig] = None,
        drift: Optional[object] = None,
        aggregator: Optional[CriticalPathAggregator] = None,
    ):
        self.config = config or ForensicsConfig()
        self.drift = drift
        self.aggregator = aggregator
        #: Retained traces by id, oldest first.
        self._retained: "OrderedDict[str, RetainedTrace]" = OrderedDict()
        self._retained_bytes = 0
        self._next_id = 0
        #: Closed retention windows: (start, end, label).
        self.windows: List[Tuple[float, float, str]] = []
        #: Open-ended windows (breaker currently open): key -> (start, label).
        self._open_windows: Dict[object, Tuple[float, str]] = {}
        #: Window labels that already pinned their first trace.
        self._pinned_windows: set = set()
        # Counters — retention must never be silent.
        self.seen = 0
        self.retained_total = 0
        self.dropped = 0
        self.dropped_pinned = 0
        self.reasons_count: Dict[str, int] = {}
        #: Latency histogram: (query_class, band_upper_ms) -> observations.
        self.histogram: Dict[Tuple[str, float], int] = {}
        #: Exemplar per histogram band: the last retained trace id in it.
        self.exemplars: Dict[Tuple[str, float], str] = {}

    # ------------------------------------------------------------------
    # Windows (fault plane, circuit breakers)
    # ------------------------------------------------------------------
    def note_window(self, start: float, end: float, label: str) -> None:
        """Register a closed retention window (e.g. an injected fault)."""
        if end < start:
            raise ValueError("window end before start")
        self.windows.append((start, end, label))

    def begin_window(self, key: object, start: float, label: str) -> None:
        """Open a window whose end is not yet known (breaker just opened)."""
        self._open_windows.setdefault(key, (start, label))

    def end_window(self, key: object, end: float) -> None:
        """Close a previously opened window; unknown keys are a no-op."""
        entry = self._open_windows.pop(key, None)
        if entry is not None:
            start, label = entry
            self.windows.append((start, max(start, end), label))

    def _overlapping_window(self, start: float, end: float) -> Optional[str]:
        for w_start, w_end, label in self.windows:
            if start < w_end and end > w_start:
                return label
        for w_start, label in self._open_windows.values():
            if end > w_start:
                return label
        return None

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe_query(
        self,
        query: Optional[object],
        span: Span,
        latency_seconds: float,
        event: Optional[object] = None,
    ) -> Optional[RetainedTrace]:
        """Offer one finished traced query; returns the trace if retained.

        This is the :class:`~repro.obs.audit.BoundAuditor` hook: the
        auditor calls it for every audited query, passing the audit event
        when the query violated its static bound.
        """
        if span.end is None:
            return None
        self.seen += 1
        breakdown: Optional[CriticalPathBreakdown] = None
        try:
            breakdown = analyze_trace(span)
        except ValueError:  # pragma: no cover - guarded by span.end above
            breakdown = None
        if breakdown is not None and self.aggregator is not None:
            self.aggregator.observe(breakdown)
        query_class = (
            breakdown.query_class if breakdown is not None
            else query_class_of(span)
        )
        band = (query_class, _band_upper_ms(latency_seconds * 1000.0))
        self.histogram[band] = self.histogram.get(band, 0) + 1

        reasons: List[str] = []
        pinned = False
        if event is not None:
            reasons.append("bound_violation")
            pinned = True
        if span.attributes.get("error"):
            reasons.append("error")
        envelope = self._envelope(query)
        if (
            envelope is not None
            and latency_seconds
            > envelope.p_high_seconds * self.config.slow_grace_factor
        ):
            reasons.append("slow")
        label = self._overlapping_window(span.start, span.end)
        if label is not None:
            reasons.append(f"window:{label}")
            if label not in self._pinned_windows:
                self._pinned_windows.add(label)
                pinned = True
        if not reasons and self.seen % self.config.reservoir_interval == 0:
            reasons.append("baseline")
        if not reasons:
            return None
        return self._retain(
            span, query_class, latency_seconds, tuple(reasons), breakdown,
            pinned=pinned, band=band,
        )

    def observe_error(self, query: Optional[object], span: Span) -> Optional[RetainedTrace]:
        """Offer a trace whose execution raised (never reaches the auditor)."""
        if span.end is None:
            return None
        self.seen += 1
        breakdown: Optional[CriticalPathBreakdown] = None
        if span.end is not None:
            breakdown = analyze_trace(span)
            if self.aggregator is not None:
                self.aggregator.observe(breakdown)
        query_class = (
            breakdown.query_class if breakdown is not None
            else query_class_of(span)
        )
        latency = span.duration
        band = (query_class, _band_upper_ms(latency * 1000.0))
        self.histogram[band] = self.histogram.get(band, 0) + 1
        reasons: List[str] = ["error"]
        label = self._overlapping_window(span.start, span.end)
        if label is not None:
            reasons.append(f"window:{label}")
        return self._retain(
            span, query_class, latency, tuple(reasons), breakdown,
            pinned=False, band=band,
        )

    def note_audit_event(self, event: object, span: Optional[Span] = None) -> None:
        """Direct audit-event sink for callers outside the auditor hook."""
        self.reasons_count["bound_violation_events"] = (
            self.reasons_count.get("bound_violation_events", 0) + 1
        )
        if span is not None and span.end is not None:
            self._retain(
                span,
                query_class_of(span),
                span.duration,
                ("bound_violation",),
                None,
                pinned=True,
                band=None,
            )

    def _envelope(self, query: Optional[object]):
        if query is None or self.drift is None:
            return None
        predict = getattr(self.drift, "_predict_envelope", None)
        if predict is None:
            return None
        return predict(query)

    # ------------------------------------------------------------------
    # Retention bookkeeping
    # ------------------------------------------------------------------
    def _retain(
        self,
        span: Span,
        query_class: str,
        latency_seconds: float,
        reasons: Tuple[str, ...],
        breakdown: Optional[CriticalPathBreakdown],
        pinned: bool,
        band: Optional[Tuple[str, float]],
    ) -> RetainedTrace:
        self._next_id += 1
        trace = RetainedTrace(
            trace_id=f"t-{self._next_id:06d}",
            span=span,
            query_class=query_class,
            latency_seconds=latency_seconds,
            retained_at=span.end if span.end is not None else span.start,
            reasons=reasons,
            breakdown=breakdown,
            approx_bytes=_estimate_bytes(span) + (320 if breakdown else 0),
            pinned=pinned,
        )
        self._retained[trace.trace_id] = trace
        self._retained_bytes += trace.approx_bytes
        self.retained_total += 1
        for reason in reasons:
            key = reason.split(":", 1)[0]
            self.reasons_count[key] = self.reasons_count.get(key, 0) + 1
        if band is not None:
            self.exemplars[band] = trace.trace_id
        self._evict()
        return trace

    def _evict(self) -> None:
        config = self.config
        while (
            len(self._retained) > config.max_traces
            or self._retained_bytes > config.memory_budget_bytes
        ):
            victim = self._pick_victim()
            if victim is None:
                break
            dropped = self._retained.pop(victim)
            self._retained_bytes -= dropped.approx_bytes
            self.dropped += 1
            if dropped.pinned:
                self.dropped_pinned += 1

    def _pick_victim(self) -> Optional[str]:
        # Oldest baseline-only first, then oldest unpinned, then — the byte
        # budget is a hard bound — oldest pinned (counted separately).
        for trace_id, trace in self._retained.items():
            if not trace.pinned and trace.reasons == ("baseline",):
                return trace_id
        for trace_id, trace in self._retained.items():
            if not trace.pinned:
                return trace_id
        for trace_id in self._retained:
            return trace_id
        return None

    # ------------------------------------------------------------------
    # Access & export
    # ------------------------------------------------------------------
    @property
    def traces(self) -> List[RetainedTrace]:
        """Currently retained traces, oldest first."""
        return list(self._retained.values())

    def trace(self, trace_id: str) -> Optional[RetainedTrace]:
        return self._retained.get(trace_id)

    @property
    def memory_bytes(self) -> int:
        """Estimated bytes currently held by retained traces."""
        return self._retained_bytes

    def traces_overlapping(self, start: float, end: float) -> List[RetainedTrace]:
        return [
            trace
            for trace in self._retained.values()
            if trace.span.end is not None
            and trace.span.start < end
            and trace.span.end > start
        ]

    def describe(self) -> str:
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(self.reasons_count.items())
        )
        return (
            f"flight recorder: {len(self._retained)} retained of "
            f"{self.seen} seen ({self.retained_total} total, "
            f"{self.dropped} evicted), {self._retained_bytes} bytes"
            + (f"; reasons: {reasons}" if reasons else "")
        )

    def payload(self, include_spans: bool = False) -> Dict[str, object]:
        """The ``flight-recorder/v1`` artifact (see docs/flight-recorder-v1.md)."""
        return {
            "schema": "flight-recorder/v1",
            "config": {
                "max_traces": self.config.max_traces,
                "reservoir_interval": self.config.reservoir_interval,
                "memory_budget_bytes": self.config.memory_budget_bytes,
                "slow_grace_factor": self.config.slow_grace_factor,
            },
            "seen": self.seen,
            "retained": len(self._retained),
            "retained_total": self.retained_total,
            "dropped": self.dropped,
            "dropped_pinned": self.dropped_pinned,
            "memory_bytes": self._retained_bytes,
            "reasons": dict(self.reasons_count),
            "windows": [
                {"start": start, "end": end, "label": label}
                for start, end, label in self.windows
            ]
            + [
                {"start": start, "end": None, "label": label}
                for start, label in self._open_windows.values()
            ],
            "traces": [
                trace.payload(include_spans=include_spans)
                for trace in self._retained.values()
            ],
            "exemplars": [
                {
                    "query_class": query_class,
                    "le_ms": upper,
                    "count": self.histogram.get((query_class, upper), 0),
                    "trace_id": trace_id,
                    "retained": trace_id in self._retained,
                }
                for (query_class, upper), trace_id in sorted(
                    self.exemplars.items()
                )
            ],
        }


class BreakerWatch:
    """Synthesises breaker transitions by polling board states.

    :class:`~repro.resilience.breaker.CircuitBreaker` state is *derived*
    (``closed``/``open``/``half_open`` from ``_opened_at`` + now), so no
    transition events exist to subscribe to.  The watch diffs the fleet's
    per-node states each poll (the serving control tick), records
    :class:`BreakerTransition` objects, and maintains recorder windows:
    a window opens when a client's breaker for a node opens and closes
    as soon as that breaker leaves the ``open`` state.
    """

    def __init__(self, recorder: Optional[FlightRecorder] = None, max_transitions: int = 512):
        self.recorder = recorder
        self.max_transitions = max_transitions
        self.transitions: List[BreakerTransition] = []
        self.dropped_transitions = 0
        #: id(board) -> (board ref, {node_id: state}).  The strong board
        #: reference keeps a recycled id() from aliasing a new board.
        self._last: Dict[int, Tuple[object, Dict[int, str]]] = {}

    def poll(self, boards: Iterable[object], now: float) -> List[BreakerTransition]:
        """Diff every board's states; returns the new transitions."""
        fresh: List[BreakerTransition] = []
        for board in boards:
            key = id(board)
            states: Dict[int, str] = dict(board.states(now))
            previous = self._last.get(key)
            previous_states = previous[1] if previous is not None and previous[0] is board else {}
            for node_id, state in states.items():
                before = previous_states.get(node_id, "closed")
                if state == before:
                    continue
                transition = BreakerTransition(
                    time=now, node_id=node_id,
                    from_state=before, to_state=state,
                )
                fresh.append(transition)
                if self.recorder is not None:
                    # The retention window tracks the *fenced* phase only:
                    # it opens with the breaker and closes as soon as the
                    # breaker leaves ``open`` (half-open probing is the
                    # recovery path, not the degradation) — otherwise one
                    # board idling in half-open would keep retaining every
                    # healthy trace for the rest of the run.
                    window_key = ("breaker", key, node_id)
                    if state == "open":
                        self.recorder.begin_window(
                            window_key, now, f"breaker-open node {node_id}"
                        )
                    else:
                        self.recorder.end_window(window_key, now)
            self._last[key] = (board, states)
        for transition in fresh:
            if len(self.transitions) < self.max_transitions:
                self.transitions.append(transition)
            else:
                self.dropped_transitions += 1
        return fresh

    def finalize(self, now: float) -> None:
        """Close any still-open breaker windows at end of run."""
        if self.recorder is None:
            return
        for key in [
            k for k in self.recorder._open_windows
            if isinstance(k, tuple) and k and k[0] == "breaker"
        ]:
            self.recorder.end_window(key, now)

    def payload(self) -> List[Dict[str, object]]:
        return [
            {
                "time": t.time,
                "node_id": t.node_id,
                "from": t.from_state,
                "to": t.to_state,
            }
            for t in self.transitions
        ]
