"""Observability: traces, metrics, telemetry, and the runtime bound auditor.

PIQL's headline claim is that every admitted query carries a *provable*
static operation bound and a predicted latency.  This package turns those
compile-time guarantees into runtime observations:

* :mod:`~repro.obs.metrics` — a named-metric registry (counters, gauges,
  bounded histograms) with generic snapshot/delta semantics; the single
  source of truth behind ``ClientStats``/``NodeStats``/``TrafficLog``.
* :mod:`~repro.obs.trace` — per-query/per-interaction span trees recording
  simulated start/end, operation counts, RPC fan-out, and bytes at every
  layer from ``Session`` down to the storage nodes.
* :mod:`~repro.obs.audit` — the runtime bound auditor: every finished query
  is checked against its static bound, and per-operator latency residuals
  (predicted vs observed) are attached to its spans.
* :mod:`~repro.obs.explain` — ``EXPLAIN ANALYZE``: the annotated span tree
  rendered through the plan printer.
* :mod:`~repro.obs.timeseries` — a fixed-memory ring-buffer time-series
  store with tumbling-window downsampling, keyed by metric name + labels.
* :mod:`~repro.obs.telemetry` — the fleet scrape loop: cluster, node,
  replication, view-maintenance, and admission signals into the store.
* :mod:`~repro.obs.slo` — multi-window SLO burn-rate alerting over the
  scraped error-budget counters.
* :mod:`~repro.obs.drift` — prediction-drift detection: rolling per-class
  latency residuals checked against the model's own stated envelope.
* :mod:`~repro.obs.dashboard` — the rendered ASCII fleet dashboard.
* :mod:`~repro.obs.export` — JSON, Chrome-trace, Prometheus-text, and
  telemetry-artifact export.
* :mod:`~repro.obs.criticalpath` — critical-path analysis: every
  microsecond of a finished trace attributed to an exclusive segment
  class, aggregated into per-query-class breakdown profiles.
* :mod:`~repro.obs.flightrec` — the tail-based flight recorder: bounded
  retention of slow / errored / bound-violating / fault-window traces
  with metric exemplars, plus breaker-transition synthesis.
* :mod:`~repro.obs.incident` — incident reports correlating fault
  windows, breaker transitions, SLO alerts, drift, and retained traces.
"""

from .audit import AuditEvent, BoundAuditor, LatencyResidual
from .criticalpath import (
    SEGMENT_CLASSES,
    BreakdownProfile,
    CriticalPathAggregator,
    CriticalPathBreakdown,
    analyze_trace,
)
from .explain import explain_analyze, render_span_tree
from .flightrec import (
    BreakerTransition,
    BreakerWatch,
    FlightRecorder,
    ForensicsConfig,
    RetainedTrace,
)
from .incident import (
    FaultWindow,
    IncidentReport,
    LatencyForensics,
    build_incident_report,
    fault_windows,
)
from .export import (
    prometheus_text,
    span_to_dict,
    telemetry_to_json,
    trace_to_chrome_events,
    trace_to_json,
    write_chrome_trace,
    write_telemetry_json,
)
from .metrics import BoundedHistogram, HistogramMergeError, MetricsRegistry
from .trace import Span, Tracer
from .timeseries import TimeSeriesPoint, TimeSeriesStore
from .telemetry import FleetTelemetry, TelemetryCollector
from .slo import BurnRateAlerter, BurnRateRule, SLOAlert
from .drift import DriftReport, PredictionDriftDetector
from .dashboard import render_dashboard, sparkline

__all__ = [
    "AuditEvent",
    "BoundAuditor",
    "BoundedHistogram",
    "BreakdownProfile",
    "BreakerTransition",
    "BreakerWatch",
    "BurnRateAlerter",
    "BurnRateRule",
    "CriticalPathAggregator",
    "CriticalPathBreakdown",
    "DriftReport",
    "FaultWindow",
    "FleetTelemetry",
    "FlightRecorder",
    "ForensicsConfig",
    "HistogramMergeError",
    "IncidentReport",
    "LatencyForensics",
    "LatencyResidual",
    "MetricsRegistry",
    "PredictionDriftDetector",
    "RetainedTrace",
    "SEGMENT_CLASSES",
    "SLOAlert",
    "Span",
    "TelemetryCollector",
    "TimeSeriesPoint",
    "TimeSeriesStore",
    "Tracer",
    "analyze_trace",
    "build_incident_report",
    "explain_analyze",
    "fault_windows",
    "prometheus_text",
    "render_dashboard",
    "render_span_tree",
    "span_to_dict",
    "sparkline",
    "telemetry_to_json",
    "trace_to_chrome_events",
    "trace_to_json",
    "write_chrome_trace",
    "write_telemetry_json",
]
