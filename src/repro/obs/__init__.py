"""Observability: traces, metrics, and the runtime bound auditor.

PIQL's headline claim is that every admitted query carries a *provable*
static operation bound and a predicted latency.  This package turns those
compile-time guarantees into runtime observations:

* :mod:`~repro.obs.metrics` — a named-metric registry (counters, gauges,
  bounded histograms) with generic snapshot/delta semantics; the single
  source of truth behind ``ClientStats``/``NodeStats``/``TrafficLog``.
* :mod:`~repro.obs.trace` — per-query/per-interaction span trees recording
  simulated start/end, operation counts, RPC fan-out, and bytes at every
  layer from ``Session`` down to the storage nodes.
* :mod:`~repro.obs.audit` — the runtime bound auditor: every finished query
  is checked against its static bound, and per-operator latency residuals
  (predicted vs observed) are attached to its spans.
* :mod:`~repro.obs.explain` — ``EXPLAIN ANALYZE``: the annotated span tree
  rendered through the plan printer.
* :mod:`~repro.obs.export` — JSON and Chrome-trace-format export.
"""

from .audit import AuditEvent, BoundAuditor, LatencyResidual
from .explain import explain_analyze, render_span_tree
from .export import (
    span_to_dict,
    trace_to_chrome_events,
    trace_to_json,
    write_chrome_trace,
)
from .metrics import BoundedHistogram, MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "AuditEvent",
    "BoundAuditor",
    "BoundedHistogram",
    "LatencyResidual",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "explain_analyze",
    "render_span_tree",
    "span_to_dict",
    "trace_to_chrome_events",
    "trace_to_json",
    "write_chrome_trace",
]
