"""Span trees over simulated time.

A :class:`Tracer` is attached to one :class:`~repro.kvstore.client.StorageClient`
(one application-server view) and builds a tree of :class:`Span` objects per
query or interaction: a root ``query``/``write`` span, ``operator`` spans for
each plan node, and leaf ``rpc``/``coalesced`` spans for the key/value
traffic those operators issued.  Spans record *simulated* start/end times —
the same clock the latency model charges — so a trace is an exact account of
where a query's simulated latency went.

Two design points keep tracing cheap enough to leave on:

* The tracer reads time through a callable rather than holding a clock:
  :meth:`~repro.engine.session.Session.gather` temporarily swaps the
  client's clock for a per-branch scratch clock, and ``lambda: client.clock.now``
  follows the swap while a captured clock object would not.
* Storage-layer spans are recorded *after the fact* in one call
  (:meth:`Tracer.record`) instead of a start/stop pair, so the hot path pays
  a single ``tracer is not None`` check plus one method call per RPC.

Root retention is bounded (a deque) so a long serving run with tracing on
cannot grow memory without bound.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional

#: Default number of finished root spans retained per tracer.
DEFAULT_KEEP_ROOTS = 64


class Span:
    """One node of a trace tree over simulated time."""

    __slots__ = ("name", "kind", "start", "end", "attributes", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        start: float,
        attributes: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = (
            attributes if attributes is not None else {}
        )
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Simulated seconds spanned (zero while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> List["Span"]:
        """Every span of one kind in this subtree, depth-first order."""
        return [span for span in self.walk() if span.kind == kind]

    def first(self, kind: str) -> Optional["Span"]:
        for span in self.walk():
            if span.kind == kind:
                return span
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        window = f"{self.start:.6f}..{self.end:.6f}" if self.end is not None else "open"
        return f"Span({self.name!r}, kind={self.kind!r}, {window})"


class Tracer:
    """Builds span trees for one client; reads time through ``now_fn``."""

    __slots__ = ("_now", "_stack", "roots", "verbose", "dropped_roots")

    def __init__(
        self,
        now_fn: Callable[[], float],
        keep: int = DEFAULT_KEEP_ROOTS,
    ):
        self._now = now_fn
        self._stack: List[Span] = []
        #: Finished (and in-progress) root spans, oldest evicted first.
        self.roots: Deque[Span] = deque(maxlen=keep)
        #: Root spans evicted from the bounded deque — no silent caps; the
        #: dashboard surfaces this so "the trace is gone" is observable.
        self.dropped_roots = 0
        #: When set, purely local operators (projection, sort, stop, ...)
        #: also get spans.  ``EXPLAIN ANALYZE`` turns this on for the
        #: duration of its execution; steady-state tracing leaves it off —
        #: local transforms issue no storage work and take no simulated
        #: time, so their spans are dead weight on the hot path.
        self.verbose = False

    # ------------------------------------------------------------------
    # Structured spans (query, operator, gather, write, ...)
    # ------------------------------------------------------------------
    @property
    def active(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, kind: str = "span", **attributes) -> Span:
        """Open a span as a child of the currently-active span."""
        stack = self._stack
        # Spans are built inline (no __init__ call) on the hot path.
        span = Span.__new__(Span)
        span.name = name
        span.kind = kind
        span.start = self._now()
        span.end = None
        span.attributes = attributes
        span.children = []
        if stack:
            stack[-1].children.append(span)
        else:
            roots = self.roots
            if roots.maxlen is not None and len(roots) == roots.maxlen:
                self.dropped_roots += 1
            roots.append(span)
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` (and, defensively, anything left open inside it)."""
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
            if span.end is None:
                span.end = self._now()
            return
        while stack:
            top = stack.pop()
            if top.end is None:
                top.end = self._now()
            if top is span:
                return
        # Span was not on the stack (already closed): leave its end as set.

    # ------------------------------------------------------------------
    # Completed spans (the storage hot path)
    # ------------------------------------------------------------------
    def record(
        self, name: str, kind: str, start: float, end: float, **attributes
    ) -> Span:
        """Attach an already-finished span under the active span."""
        stack = self._stack
        span = Span.__new__(Span)
        span.name = name
        span.kind = kind
        span.start = start
        span.end = end
        span.attributes = attributes
        span.children = []
        if stack:
            stack[-1].children.append(span)
        else:
            roots = self.roots
            if roots.maxlen is not None and len(roots) == roots.maxlen:
                self.dropped_roots += 1
            roots.append(span)
        return span

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def last_root(self) -> Optional[Span]:
        """The most recently started root span."""
        return self.roots[-1] if self.roots else None

    def clear(self) -> None:
        self._stack.clear()
        self.roots.clear()
        self.dropped_roots = 0
