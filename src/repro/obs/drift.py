"""Prediction-drift detection: is the latency model still telling the truth?

The paper's Figure 6/Table 1 claim is that bound-derived latency
predictions match observation — but that comparison was made once, offline,
against the training workload.  A live fleet can drift away from its model
(nodes degrade, contention patterns shift, data grows into different
regimes) without any single query violating its bound.  This module
monitors the claim *continuously*: every audited query contributes its
whole-query latency residual (observed minus predicted p50) to a rolling
per-query-class distribution, and a class is flagged as **drifting** when
its median residual leaves the envelope the model itself stated — the span
between its predicted low and high quantiles, re-centred on the median::

    envelope = [p_low - p50, p_high - p50]      (model-stated spread)
    drifting = median(residuals) outside envelope

Using the model's own spread as the yardstick makes the check
self-calibrating: a class whose prediction is a wide distribution tolerates
proportionally wide residuals, a tight prediction is held to a tight line.

Per-plan predicted quantiles are cached keyed by ``id(plan)`` with a strong
reference to the plan (the same discipline as the auditor's bound-slice
cache), so steady-state cost per query is a dict hit and a deque append.
State is bounded: rolling windows per class, a cap on tracked classes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..errors import PredictionError
from ..stats import nearest_rank_percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..optimizer.optimizer import OptimizedQuery
    from ..prediction.model import QueryLatencyModel


@dataclass(frozen=True)
class PredictionEnvelope:
    """The model's stated latency quantiles for one query class."""

    p_low_seconds: float
    p50_seconds: float
    p_high_seconds: float

    @property
    def low_residual(self) -> float:
        return self.p_low_seconds - self.p50_seconds

    @property
    def high_residual(self) -> float:
        return self.p_high_seconds - self.p50_seconds


@dataclass(frozen=True)
class DriftReport:
    """Rolling residual summary of one query class."""

    query_class: str
    observations: int
    envelope: PredictionEnvelope
    median_residual_seconds: float
    p90_residual_seconds: float
    drifting: bool

    def describe(self) -> str:
        state = "DRIFTING" if self.drifting else "ok"
        return (
            f"{self.query_class!r}: median residual "
            f"{self.median_residual_seconds * 1000.0:+.2f} ms over "
            f"{self.observations} obs, envelope "
            f"[{self.envelope.low_residual * 1000.0:+.2f}, "
            f"{self.envelope.high_residual * 1000.0:+.2f}] ms — {state}"
        )


class _ClassState:
    __slots__ = ("envelope", "residuals", "observations")

    def __init__(self, envelope: PredictionEnvelope, window: int):
        self.envelope = envelope
        self.residuals: Deque[float] = deque(maxlen=window)
        self.observations = 0


class PredictionDriftDetector:
    """Rolling predicted-vs-observed residuals per query class.

    Parameters
    ----------
    latency_model:
        The trained :class:`~repro.prediction.model.QueryLatencyModel` whose
        predictions are being checked.
    window:
        Residuals retained per class (rolling).
    min_observations:
        A class reports ``drifting=False`` until it has at least this many
        residuals — one slow cold-cache query must not flag a class.
    low_quantile / high_quantile:
        Which model quantiles state the envelope.
    max_classes:
        Cap on distinct tracked classes; further classes are counted in
        :attr:`dropped_classes` and ignored (ad-hoc one-off queries must
        not grow state without bound).
    """

    def __init__(
        self,
        latency_model: "QueryLatencyModel",
        window: int = 128,
        min_observations: int = 8,
        low_quantile: float = 0.05,
        high_quantile: float = 0.99,
        max_classes: int = 64,
    ):
        if not (0.0 < low_quantile < 0.5 < high_quantile < 1.0):
            raise ValueError("need low < 0.5 < high quantiles in (0, 1)")
        self.latency_model = latency_model
        self.window = window
        self.min_observations = min_observations
        self.low_quantile = low_quantile
        self.high_quantile = high_quantile
        self.max_classes = max_classes
        self._classes: Dict[str, _ClassState] = {}
        #: Query classes turned away by the cap.
        self.dropped_classes = 0
        #: Queries skipped because the model could not price their plan.
        self.unpredictable = 0
        # Predicted envelope per plan, keyed by id() with a strong plan
        # reference (same aliasing discipline as the auditor's slice cache).
        self._envelope_cache: Dict[int, Tuple[object, PredictionEnvelope]] = {}

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def observe(self, query: "OptimizedQuery", observed_seconds: float) -> None:
        """Record one finished execution of an audited query."""
        key = " ".join(query.sql.split())
        state = self._classes.get(key)
        if state is None:
            if len(self._classes) >= self.max_classes:
                self.dropped_classes += 1
                return
            envelope = self._predict_envelope(query)
            if envelope is None:
                self.unpredictable += 1
                return
            state = _ClassState(envelope, self.window)
            self._classes[key] = state
        state.residuals.append(observed_seconds - state.envelope.p50_seconds)
        state.observations += 1

    def _predict_envelope(
        self, query: "OptimizedQuery"
    ) -> Optional[PredictionEnvelope]:
        plan = query.physical_plan
        cached = self._envelope_cache.get(id(plan))
        if cached is not None and cached[0] is plan:
            return cached[1]
        try:
            distribution = self.latency_model.predict_distribution(plan)
            envelope = PredictionEnvelope(
                p_low_seconds=distribution.quantile(self.low_quantile),
                p50_seconds=distribution.quantile(0.5),
                p_high_seconds=distribution.quantile(self.high_quantile),
            )
        except PredictionError:
            return None
        if len(self._envelope_cache) >= 128:
            self._envelope_cache.clear()
        self._envelope_cache[id(plan)] = (plan, envelope)
        return envelope

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> List[DriftReport]:
        """Per-class drift summaries, sorted by query class."""
        reports: List[DriftReport] = []
        for key in sorted(self._classes):
            state = self._classes[key]
            residuals = list(state.residuals)
            if not residuals:
                continue
            median = nearest_rank_percentile(residuals, 0.5)
            p90 = nearest_rank_percentile(residuals, 0.9)
            envelope = state.envelope
            drifting = state.observations >= self.min_observations and not (
                envelope.low_residual <= median <= envelope.high_residual
            )
            reports.append(
                DriftReport(
                    query_class=key,
                    observations=state.observations,
                    envelope=envelope,
                    median_residual_seconds=median,
                    p90_residual_seconds=p90,
                    drifting=drifting,
                )
            )
        return reports

    @property
    def drifting_classes(self) -> List[str]:
        return [r.query_class for r in self.report() if r.drifting]

    @property
    def any_drifting(self) -> bool:
        return any(r.drifting for r in self.report())

    def reset(self) -> None:
        self._classes.clear()
        self.dropped_classes = 0
        self.unpredictable = 0
