"""Fleet telemetry: a scrape loop turning live state into time-series.

PR 6 gave the repo per-query observability (span trees, the bound auditor);
this module watches the *fleet over time*.  A :class:`TelemetryCollector`
runs on the serving event kernel and, every scrape interval, snapshots

* the cluster :class:`~repro.obs.metrics.MetricsRegistry` (replication
  health: hint backlog, hinted-handoff replay, read repairs, anti-entropy
  copy work),
* per-node signals — up/down, utilisation, request-queue backlog, measured
  arrival rate and busy fraction, hint backlog destined for the node, and
  the node's own counters,
* per-node storage-engine gauges (``engine.memtable_bytes``,
  ``engine.segment_count``, ``engine.compaction_backlog``, ...) for nodes
  running a durable engine,
* fleet roll-ups of the application-server registries (``serving.*``
  traffic counters, ``views.deltas.*`` maintenance rates),
* SLO totals from the monitor and the admission controller's decisions

into a fixed-memory :class:`~repro.obs.timeseries.TimeSeriesStore`, then
lets the burn-rate alerter evaluate.  Everything downstream — burn-rate
alerting, the dashboard, the Prometheus/JSON exporters — reads only the
store, so it works identically on a live run or a saved artifact.

The collector deliberately imports nothing from ``repro.serving`` or
``repro.kvstore`` at module level (``kvstore.node`` imports ``obs.metrics``,
so a module-level back-edge would cycle); cluster, monitor, and admission
objects are passed in and duck-typed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from .metrics import MetricsRegistry
from .timeseries import TimeSeriesStore

#: Cumulative SLO counters the collector writes and the alerter reads.
SLO_TOTAL_METRIC = "serving.slo.total"
SLO_GOOD_METRIC = "serving.slo.good"


class TelemetryCollector:
    """Periodic scraper of fleet state into a time-series store.

    Parameters
    ----------
    store:
        Destination time-series store.
    cluster:
        A :class:`~repro.kvstore.cluster.KeyValueCluster` (duck-typed:
        ``nodes``, ``metrics``, ``replication``); optional so the collector
        can also serve registry-only setups.
    monitor:
        The serving :class:`~repro.serving.monitor.SLOMonitor`; its running
        totals become the ``serving.slo.total`` / ``serving.slo.good``
        counters the burn-rate alerter differentiates.
    admission:
        The :class:`~repro.serving.admission.AdmissionController`; decision
        counters and the live shed probability are scraped.
    registries_fn:
        Callable returning the per-app-server
        :class:`~repro.obs.metrics.MetricsRegistry` objects to roll up
        (called each scrape so autoscaled fleets stay covered).
    alerter:
        Optional burn-rate alerter; :meth:`scrape` calls its ``evaluate``
        after recording, so alerts see the freshest counters.
    breakers_fn:
        Callable returning the live per-client
        :class:`~repro.resilience.breaker.BreakerBoard` objects (one per
        app server with breakers enabled).  Each scrape records, per
        storage node, how many clients currently hold that node's breaker
        open (``resilience.breaker.open_clients``) plus the board count
        (``resilience.breaker.boards``) — the fleet-wide suspicion view
        the dashboard's BREAKERS section renders.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        cluster: Optional[object] = None,
        monitor: Optional[object] = None,
        admission: Optional[object] = None,
        registries_fn: Optional[Callable[[], Iterable[MetricsRegistry]]] = None,
        alerter: Optional[object] = None,
        breakers_fn: Optional[Callable[[], Iterable[object]]] = None,
    ):
        self.store = store
        self.cluster = cluster
        self.monitor = monitor
        self.admission = admission
        self.registries_fn = registries_fn
        self.alerter = alerter
        self.breakers_fn = breakers_fn
        #: Completed scrape ticks.
        self.scrapes = 0
        #: Simulated times of each scrape (bounded implicitly by run length).
        self.last_scrape_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    # One scrape
    # ------------------------------------------------------------------
    def scrape(self, now: float) -> None:
        """Snapshot every configured source at simulated time ``now``."""
        record = self.store.record
        cluster = self.cluster
        if cluster is not None:
            for name, value in cluster.metrics.counters().items():
                record(name, value, now)
            replication = getattr(cluster, "replication", None)
            for node in cluster.nodes:
                labels = {"node": node.node_id}
                record("node.up", 1.0 if node.up else 0.0, now, labels)
                record("node.utilization", node.utilization, now, labels)
                queue = getattr(node, "request_queue", None)
                if queue is not None:
                    record(
                        "node.queue.backlog_seconds",
                        queue.backlog_seconds(now),
                        now,
                        labels,
                    )
                    rate, busy = queue.sample(now)
                    record("node.queue.arrival_rate", rate, now, labels)
                    record("node.queue.busy_fraction", busy, now, labels)
                if replication is not None:
                    record(
                        "replication.hint_backlog",
                        replication.hint_count(node.node_id),
                        now,
                        labels,
                    )
                for name, value in node.stats.metrics.counters().items():
                    record(name, value, now, labels)
            engines = getattr(cluster, "engines", None)
            if engines:
                for node_id, engine in engines.items():
                    gauges = engine.gauges()
                    if not gauges:
                        continue
                    labels = {"node": node_id}
                    for name, value in gauges.items():
                        record(f"engine.{name}", float(value), now, labels)
        if self.breakers_fn is not None and cluster is not None:
            boards = list(self.breakers_fn())
            open_clients: Dict[int, int] = {
                node.node_id: 0 for node in cluster.nodes
            }
            for board in boards:
                for node_id in board.suspects(now):
                    if node_id in open_clients:
                        open_clients[node_id] += 1
            record("resilience.breaker.boards", float(len(boards)), now)
            for node_id, count in open_clients.items():
                record(
                    "resilience.breaker.open_clients",
                    float(count),
                    now,
                    {"node": node_id},
                )
        if self.registries_fn is not None:
            rollup: Dict[str, float] = {}
            for registry in self.registries_fn():
                for name, value in registry.live_counters.items():
                    rollup[name] = rollup.get(name, 0.0) + value
            for name, value in rollup.items():
                record(name, value, now)
        monitor = self.monitor
        if monitor is not None:
            # Failed interactions burn error budget too: they join the
            # total but can never be good, so burn-rate alerting sees
            # fast-dying requests as clearly as slow ones.
            record(
                SLO_TOTAL_METRIC,
                monitor.total_observations + getattr(monitor, "total_failed", 0),
                now,
            )
            record(SLO_GOOD_METRIC, monitor.total_compliant, now)
            record("serving.slo.recent_compliance", monitor.recent_compliance(now), now)
        admission = self.admission
        if admission is not None:
            counters = admission.counters
            record("admission.admitted", counters.admitted, now)
            record("admission.queued", counters.queued, now)
            record("admission.shed", counters.shed, now)
            record("admission.shed_probability", admission.shed_probability, now)
        self.scrapes += 1
        self.last_scrape_seconds = now
        if self.alerter is not None:
            self.alerter.evaluate(now)

    # ------------------------------------------------------------------
    # Kernel scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, kernel, interval_seconds: float, until_seconds: float
    ) -> None:
        """Run :meth:`scrape` every ``interval_seconds`` of simulated time.

        The loop is self-perpetuating (each tick schedules the next) and
        stops once the next tick would land past ``until_seconds``; the
        caller should invoke a final :meth:`scrape` at shutdown if it wants
        the very end of the run covered.
        """
        if interval_seconds <= 0:
            raise ValueError("scrape interval must be positive")

        def tick(sim) -> None:
            self.scrape(sim.now)
            next_tick = sim.now + interval_seconds
            if next_tick <= until_seconds:
                kernel.schedule_at(next_tick, tick, name="telemetry-scrape")

        kernel.schedule_at(interval_seconds, tick, name="telemetry-scrape")


class FleetTelemetry:
    """The assembled telemetry stack of one serving run (or database).

    Bundles the store, collector, alerter, and drift detector so callers
    hold one object; rendering and export helpers live in
    :mod:`repro.obs.dashboard` and :mod:`repro.obs.export` and read from
    this bundle.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        collector: TelemetryCollector,
        alerter: Optional[object] = None,
        drift: Optional[object] = None,
    ):
        self.store = store
        self.collector = collector
        self.alerter = alerter
        self.drift = drift

    @property
    def alerts(self) -> List[object]:
        return list(self.alerter.alerts) if self.alerter is not None else []

    def dashboard(self, width: int = 72) -> str:
        from .dashboard import render_dashboard

        return render_dashboard(self, width=width)

    def to_json(self) -> Dict[str, object]:
        from .export import telemetry_to_json

        return telemetry_to_json(self)

    def save(self, path: str) -> str:
        from .export import write_telemetry_json

        return write_telemetry_json(self, path)
