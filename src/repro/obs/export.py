"""Observability export: traces, Prometheus text, telemetry artifacts.

``trace_to_json`` gives a faithful, nested dump of a span tree for
programmatic consumption.  ``trace_to_chrome_events`` flattens the same
tree into Chrome's trace-event format (``ph="X"`` complete events with
microsecond timestamps), so a serving run's traces can be dropped straight
into ``chrome://tracing`` or Perfetto.  Simulated seconds are exported as
microseconds, the convention those viewers expect.

The telemetry exporters render a :class:`~repro.obs.telemetry.FleetTelemetry`
bundle two ways: ``prometheus_text`` emits the latest value of every series
in the Prometheus exposition format (dotted metric names become
underscored, labels carry through), and ``telemetry_to_json`` /
``write_telemetry_json`` produce the ``results/telemetry_*.json`` artifact
— full downsampled history per series plus the alert timeline and drift
report — that CI uploads and tests assert against.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional

from .timeseries import TimeSeriesStore
from .trace import Span


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def span_to_dict(span: Span) -> Dict[str, object]:
    """One span (and its subtree) as JSON-serialisable nested dicts."""
    return {
        "name": span.name,
        "kind": span.kind,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "attributes": {
            key: _json_safe(value) for key, value in span.attributes.items()
        },
        "children": [span_to_dict(child) for child in span.children],
    }


def trace_to_json(
    roots: Iterable[Span], indent: Optional[int] = 2
) -> str:
    """Serialise root spans to a JSON document (``{"spans": [...]}``)."""
    return json.dumps(
        {"spans": [span_to_dict(root) for root in roots]}, indent=indent
    )


def trace_to_chrome_events(
    roots: Iterable[Span], pid: int = 1
) -> List[Dict[str, object]]:
    """Flatten span trees into Chrome trace-event ``ph="X"`` records.

    Each root span gets its own ``tid`` so concurrent interactions render
    as separate rows in the viewer; nesting within a row comes from the
    events' time containment, which the viewer reconstructs.
    """
    events: List[Dict[str, object]] = []
    for tid, root in enumerate(roots):
        for span in root.walk():
            if span.end is None:
                continue
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {
                    key: _json_safe(value)
                    for key, value in span.attributes.items()
                },
            })
    return events


def write_chrome_trace(path: str, roots: Iterable[Span]) -> None:
    """Write root spans to ``path`` as a Chrome trace-viewer JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": trace_to_chrome_events(roots)}, handle)


# ----------------------------------------------------------------------
# Telemetry export
# ----------------------------------------------------------------------
_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    """Dotted metric path → Prometheus metric name (``node.up`` → ``node_up``)."""
    cleaned = _PROM_NAME_BAD.sub("_", name.replace(".", "_"))
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prometheus_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(store: TimeSeriesStore) -> str:
    """The latest value of every series, in Prometheus exposition format.

    Each line is ``metric_name{label="value",...} last_value timestamp_ms``
    — the textual scrape a real Prometheus server would ingest.  Only the
    freshest bucket of each series is exported (history lives in the JSON
    artifact; Prometheus keeps its own).
    """
    lines: List[str] = []
    for name, labels in store.series_keys():
        point = store.latest(name, dict(labels))
        if point is None:
            continue
        metric = _prometheus_name(name)
        if labels:
            rendered = ",".join(
                f'{_prometheus_name(key)}="{_prometheus_label_value(value)}"'
                for key, value in labels
            )
            metric = f"{metric}{{{rendered}}}"
        timestamp_ms = int(point.end_seconds * 1000)
        lines.append(f"{metric} {point.last:.10g} {timestamp_ms}")
    return "\n".join(lines) + ("\n" if lines else "")


def _series_to_dict(store: TimeSeriesStore, name: str, labels) -> Dict[str, object]:
    return {
        "name": name,
        "labels": dict(labels),
        "points": [
            {
                "start": point.start_seconds,
                "width": point.width_seconds,
                "count": point.count,
                "sum": point.sum,
                "min": point.min,
                "max": point.max,
                "last": point.last,
            }
            for point in store.points(name, dict(labels))
        ],
    }


def telemetry_to_json(telemetry) -> Dict[str, object]:
    """A :class:`~repro.obs.telemetry.FleetTelemetry` bundle as plain dicts."""
    store = telemetry.store
    payload: Dict[str, object] = {
        "schema": "fleet-telemetry/v1",
        "scrapes": telemetry.collector.scrapes,
        "last_scrape_seconds": telemetry.collector.last_scrape_seconds,
        "dropped_samples": store.dropped_samples,
        "dropped_series": store.dropped_series,
        "series": [
            _series_to_dict(store, name, labels)
            for name, labels in store.series_keys()
        ],
    }
    alerter = telemetry.alerter
    if alerter is not None:
        payload["alerts"] = [
            {
                "rule": alert.rule.name,
                "fast_window_seconds": alert.rule.fast_seconds,
                "slow_window_seconds": alert.rule.slow_seconds,
                "threshold": alert.rule.threshold,
                "fired_at": alert.fired_at,
                "cleared_at": alert.cleared_at,
                "fast_burn": alert.fast_burn,
                "slow_burn": alert.slow_burn,
                "peak_fast_burn": alert.peak_fast_burn,
            }
            for alert in alerter.alerts
        ]
    drift = telemetry.drift
    if drift is not None:
        payload["drift"] = [
            {
                "query_class": report.query_class,
                "observations": report.observations,
                "median_residual_seconds": report.median_residual_seconds,
                "p90_residual_seconds": report.p90_residual_seconds,
                "envelope_low_seconds": report.envelope.low_residual,
                "envelope_high_seconds": report.envelope.high_residual,
                "drifting": report.drifting,
            }
            for report in drift.report()
        ]
    return payload


def write_telemetry_json(telemetry, path: str) -> str:
    """Write the telemetry artifact to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(telemetry_to_json(telemetry), handle, indent=2)
    return path
