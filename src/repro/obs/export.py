"""Trace export: plain JSON and the Chrome trace-event format.

``trace_to_json`` gives a faithful, nested dump of a span tree for
programmatic consumption.  ``trace_to_chrome_events`` flattens the same
tree into Chrome's trace-event format (``ph="X"`` complete events with
microsecond timestamps), so a serving run's traces can be dropped straight
into ``chrome://tracing`` or Perfetto.  Simulated seconds are exported as
microseconds, the convention those viewers expect.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .trace import Span


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def span_to_dict(span: Span) -> Dict[str, object]:
    """One span (and its subtree) as JSON-serialisable nested dicts."""
    return {
        "name": span.name,
        "kind": span.kind,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "attributes": {
            key: _json_safe(value) for key, value in span.attributes.items()
        },
        "children": [span_to_dict(child) for child in span.children],
    }


def trace_to_json(
    roots: Iterable[Span], indent: Optional[int] = 2
) -> str:
    """Serialise root spans to a JSON document (``{"spans": [...]}``)."""
    return json.dumps(
        {"spans": [span_to_dict(root) for root in roots]}, indent=indent
    )


def trace_to_chrome_events(
    roots: Iterable[Span], pid: int = 1
) -> List[Dict[str, object]]:
    """Flatten span trees into Chrome trace-event ``ph="X"`` records.

    Each root span gets its own ``tid`` so concurrent interactions render
    as separate rows in the viewer; nesting within a row comes from the
    events' time containment, which the viewer reconstructs.
    """
    events: List[Dict[str, object]] = []
    for tid, root in enumerate(roots):
        for span in root.walk():
            if span.end is None:
                continue
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {
                    key: _json_safe(value)
                    for key, value in span.attributes.items()
                },
            })
    return events


def write_chrome_trace(path: str, roots: Iterable[Span]) -> None:
    """Write root spans to ``path`` as a Chrome trace-viewer JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": trace_to_chrome_events(roots)}, handle)
