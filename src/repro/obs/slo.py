"""Multi-window SLO burn-rate alerting over telemetry counters.

An SLO like "99% of queries complete within 500 ms" grants an *error
budget*: 1% of requests may miss.  The **burn rate** of a window is how
fast that budget is being consumed relative to plan::

    burn = (bad fraction over the window) / (1 - slo.quantile)

``burn == 1`` spends the budget exactly on schedule; ``burn == 10`` spends
it ten times too fast.  Alerting on a single window forces a bad trade —
short windows flap on noise, long windows page hours late — so each alert
rule here pairs a **fast** and a **slow** window (the multi-window,
multi-burn-rate pattern): the alert fires only when *both* exceed the
threshold (the problem is real *and* still happening) and clears as soon as
the fast window drops back under (recovery is visible within seconds, even
while the slow window still remembers the incident).

The alerter is a pure reader of the telemetry store's cumulative
``serving.slo.total`` / ``serving.slo.good`` counters — windowed bad
fractions come from :meth:`~repro.obs.timeseries.TimeSeriesStore.counter_delta`
— so it needs no hook into the request path.  On firing it notifies a sink
(the serving :class:`~repro.serving.monitor.SLOMonitor` keeps the alert
timeline) and can **pre-arm** the admission controller: seeding a small
shed probability while the budget is burning, before the monitor's own
quantile check would react.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..prediction.slo import ServiceLevelObjective
from .telemetry import SLO_GOOD_METRIC, SLO_TOTAL_METRIC
from .timeseries import TimeSeriesStore


@dataclass(frozen=True)
class BurnRateRule:
    """One fast/slow window pair with its burn-rate threshold."""

    fast_seconds: float
    slow_seconds: float
    threshold: float

    def __post_init__(self) -> None:
        if self.fast_seconds <= 0 or self.slow_seconds <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.fast_seconds > self.slow_seconds:
            raise ValueError("fast window must not exceed the slow window")
        if self.threshold <= 0:
            raise ValueError("burn-rate threshold must be positive")

    @property
    def name(self) -> str:
        return f"burn[{self.fast_seconds:g}s/{self.slow_seconds:g}s]x{self.threshold:g}"


#: Default rule ladder, scaled for simulated serving runs of tens of
#: seconds (production ladders use 5m/1h and 30m/6h; the shape is what
#: matters): a fast pair that pages on sharp budget burn and a slower pair
#: that catches sustained low-grade burn.
DEFAULT_RULES: Sequence[BurnRateRule] = (
    BurnRateRule(fast_seconds=2.0, slow_seconds=10.0, threshold=10.0),
    BurnRateRule(fast_seconds=5.0, slow_seconds=25.0, threshold=4.0),
)


@dataclass
class SLOAlert:
    """One firing (and possibly cleared) burn-rate alert."""

    rule: BurnRateRule
    fired_at: float
    fast_burn: float
    slow_burn: float
    cleared_at: Optional[float] = None
    peak_fast_burn: float = 0.0

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    @property
    def duration_seconds(self) -> float:
        return (self.cleared_at - self.fired_at) if self.cleared_at is not None else 0.0

    def describe(self) -> str:
        state = (
            "ACTIVE"
            if self.active
            else f"cleared @ {self.cleared_at:.2f}s"
        )
        return (
            f"{self.rule.name} fired @ {self.fired_at:.2f}s "
            f"(fast {self.fast_burn:.1f}x, slow {self.slow_burn:.1f}x, "
            f"peak {self.peak_fast_burn:.1f}x) {state}"
        )


class BurnRateAlerter:
    """Evaluates burn-rate rules against scraped SLO counters.

    Parameters
    ----------
    store:
        Telemetry store holding the cumulative total/good counters.
    slo:
        The objective whose error budget is being tracked.
    rules:
        Fast/slow window pairs; defaults to :data:`DEFAULT_RULES`.
    min_events:
        Minimum requests inside the fast window before a rule may fire
        (cold starts and idle periods must not page).
    sink:
        Called with each :class:`SLOAlert` when it fires (e.g. the SLO
        monitor's ``record_alert``).
    admission:
        Optional admission controller to pre-arm while burning.
    pre_arm_probability:
        Shed probability seeded into the controller on firing.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        slo: ServiceLevelObjective,
        rules: Optional[Sequence[BurnRateRule]] = None,
        min_events: int = 10,
        sink: Optional[Callable[[SLOAlert], None]] = None,
        admission: Optional[object] = None,
        pre_arm_probability: float = 0.1,
        total_metric: str = SLO_TOTAL_METRIC,
        good_metric: str = SLO_GOOD_METRIC,
    ):
        self.store = store
        self.slo = slo
        self.rules: List[BurnRateRule] = list(rules if rules is not None else DEFAULT_RULES)
        if not self.rules:
            raise ValueError("need at least one burn-rate rule")
        self.min_events = min_events
        self.sink = sink
        self.admission = admission
        self.pre_arm_probability = pre_arm_probability
        self.total_metric = total_metric
        self.good_metric = good_metric
        #: Every alert ever fired, in firing order (active ones included).
        self.alerts: List[SLOAlert] = []
        self._active: dict = {}

    # ------------------------------------------------------------------
    # Burn-rate math
    # ------------------------------------------------------------------
    @property
    def error_budget(self) -> float:
        return 1.0 - self.slo.quantile

    def window_events(self, now: float, window_seconds: float) -> float:
        return self.store.counter_delta(
            self.total_metric, now - window_seconds, now
        )

    def burn_rate(self, now: float, window_seconds: float) -> float:
        """Budget-consumption speed over the trailing window (0 when idle)."""
        total = self.window_events(now, window_seconds)
        if total <= 0:
            return 0.0
        good = self.store.counter_delta(
            self.good_metric, now - window_seconds, now
        )
        bad_fraction = max(0.0, total - good) / total
        return bad_fraction / self.error_budget

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> List[SLOAlert]:
        """Step every rule at ``now``; returns alerts that newly fired."""
        fired: List[SLOAlert] = []
        for rule in self.rules:
            fast = self.burn_rate(now, rule.fast_seconds)
            slow = self.burn_rate(now, rule.slow_seconds)
            active = self._active.get(rule.name)
            if active is not None:
                active.peak_fast_burn = max(active.peak_fast_burn, fast)
                if fast < rule.threshold:
                    active.cleared_at = now
                    del self._active[rule.name]
                continue
            if (
                fast >= rule.threshold
                and slow >= rule.threshold
                and self.window_events(now, rule.fast_seconds) >= self.min_events
            ):
                alert = SLOAlert(
                    rule=rule,
                    fired_at=now,
                    fast_burn=fast,
                    slow_burn=slow,
                    peak_fast_burn=fast,
                )
                self.alerts.append(alert)
                self._active[rule.name] = alert
                fired.append(alert)
                if self.sink is not None:
                    self.sink(alert)
                if self.admission is not None:
                    pre_arm = getattr(self.admission, "pre_arm", None)
                    if pre_arm is not None:
                        pre_arm(self.pre_arm_probability)
        return fired

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def active_alerts(self) -> List[SLOAlert]:
        return [alert for alert in self.alerts if alert.active]

    def fired_and_cleared(self) -> List[SLOAlert]:
        return [alert for alert in self.alerts if not alert.active]
