"""The runtime bound auditor: static guarantees checked as live assertions.

PIQL's compiler proves a *static* operation bound for every admitted query
(Section 5.2 of the paper).  Historically the simulator only verified that
claim offline, in benchmark scripts diffing aggregate counters.  The
:class:`BoundAuditor` moves the check into the execution path: every
finished query is compared against its bound, violations become structured
:class:`AuditEvent` objects (strict mode raises
:class:`~repro.errors.BoundViolationError`, serving mode feeds them to a
sink such as the SLO monitor), and — when a trained latency model is
attached — each operator span is annotated with the slice of the bound it
was charged against and its predicted-vs-observed latency residual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..errors import (
    BoundViolationError,
    NotScaleIndependentError,
    PredictionError,
)
from ..plans import physical as P
from ..plans.bounds import compute_bound
from .trace import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..optimizer.optimizer import OptimizedQuery
    from ..prediction.model import QueryLatencyModel


@dataclass(frozen=True)
class AuditEvent:
    """One observed violation of a query's static operation bound."""

    sql: str
    observed_operations: int
    bound_operations: int
    latency_seconds: float

    def describe(self) -> str:
        return (
            f"bound violation: {self.observed_operations} ops > bound "
            f"{self.bound_operations} ({self.sql.strip()!r})"
        )


@dataclass(frozen=True)
class LatencyResidual:
    """Predicted-vs-observed latency of one operator span."""

    operator: str
    predicted_seconds: float
    observed_seconds: float

    @property
    def residual_seconds(self) -> float:
        """Observed minus predicted: positive means slower than modelled."""
        return self.observed_seconds - self.predicted_seconds


class BoundAuditor:
    """Asserts observed operations ≤ static bound on every finished query.

    Parameters
    ----------
    mode:
        ``"strict"`` raises :class:`BoundViolationError` on a violation
        (tests and benchmarks); ``"serving"`` records the event and feeds
        the sink but lets the query's result stand (a live service should
        degrade observably, not crash).
    latency_model:
        Optional trained :class:`~repro.prediction.model.QueryLatencyModel`;
        when present, operator spans gain ``predicted_seconds`` and
        residuals are accumulated in :attr:`residuals`.
    sink:
        Called with each :class:`AuditEvent` (e.g. the SLO monitor's
        ``record_bound_violation``).
    """

    def __init__(
        self,
        mode: str = "strict",
        latency_model: Optional["QueryLatencyModel"] = None,
        sink: Optional[Callable[[AuditEvent], None]] = None,
        max_events: int = 256,
    ):
        if mode not in ("strict", "serving"):
            raise ValueError(f"unknown auditor mode: {mode!r}")
        self.mode = mode
        self.latency_model = latency_model
        self.sink = sink
        self.max_events = max_events
        #: Optional :class:`~repro.obs.drift.PredictionDriftDetector`;
        #: when attached, every audited query feeds its rolling per-class
        #: residual distribution (set by ``db.enable_telemetry()`` or the
        #: serving simulator).
        self.drift = None
        #: Optional :class:`~repro.obs.flightrec.FlightRecorder`; when
        #: attached, every audited traced query is offered for tail-based
        #: retention (with its audit event, so bound violations pin their
        #: trace).  The auditor is shared by every ``new_client`` view, so
        #: one recorder covers the whole app-server fleet.
        self.recorder = None
        #: Queries checked since construction (or the last :meth:`reset`).
        self.audited = 0
        #: Violations observed, oldest first, capped at ``max_events``.
        self.events: List[AuditEvent] = []
        #: Per-operator residuals of audited traced queries (bounded).
        self.residuals: List[LatencyResidual] = []
        # Bound slices per plan, keyed by id().  The plan itself is kept as
        # a strong reference so a recycled id() can never alias a new plan.
        self._slice_cache: Dict[
            int, Tuple[P.PhysicalOperator, Dict[int, Tuple[int, int]]]
        ] = {}

    @property
    def violations(self) -> int:
        return len(self.events)

    def reset(self) -> None:
        self.audited = 0
        self.events.clear()
        self.residuals.clear()

    # ------------------------------------------------------------------
    # The live assertion
    # ------------------------------------------------------------------
    def observe_query(
        self,
        query: "OptimizedQuery",
        observed_operations: int,
        latency_seconds: float,
        span: Optional[Span] = None,
        enforce: bool = True,
    ) -> Optional[AuditEvent]:
        """Audit one finished execution; returns the event on violation.

        ``span`` is the query's root span when tracing is enabled.  With a
        latency model attached it is annotated in place (bound slices,
        predictions, residuals); without one annotation is deferred to the
        readers that want it (:func:`~repro.obs.explain.explain_analyze`
        calls :meth:`annotate_span` explicitly), keeping the per-query cost
        of plain tracing to the bound comparison below.
        ``enforce=False`` still records violations but never raises (the
        executor passes this for strategies exempt from the bound).
        """
        self.audited += 1
        if span is not None and self.latency_model is not None:
            self.annotate_span(query, span)
        if self.drift is not None:
            self.drift.observe(query, latency_seconds)
        bound = query.bound
        event: Optional[AuditEvent] = None
        if bound is not None and observed_operations > bound.max_operations:
            event = AuditEvent(
                sql=query.sql,
                observed_operations=observed_operations,
                bound_operations=bound.max_operations,
                latency_seconds=latency_seconds,
            )
            if len(self.events) < self.max_events:
                self.events.append(event)
            if self.sink is not None:
                self.sink(event)
        # The flight recorder sees every traced query — violation or not —
        # and must be fed before strict mode raises, so the offending trace
        # is retained even when the query dies.
        recorder = self.recorder
        if recorder is not None and span is not None:
            recorder.observe_query(query, span, latency_seconds, event=event)
        if event is not None and enforce and self.mode == "strict":
            raise BoundViolationError(
                observed_operations, bound.max_operations, query.sql
            )
        return event

    # ------------------------------------------------------------------
    # Span annotation
    # ------------------------------------------------------------------
    def annotate_span(self, query: "OptimizedQuery", span: Span) -> None:
        """Attach bound slices (and predictions, if modelled) to a trace.

        Each ``operator`` span carries ``node_id = id(plan node)``; this maps
        them back to the plan, charges every operator the *slice* of the
        static bound it owns (its subtree bound minus its children's), and —
        with a latency model — records the predicted p50 next to the
        observed duration.
        """
        plan = query.physical_plan
        slices = self._bound_slices(plan)
        predicted = self._predicted_by_node(plan)
        for op_span in span.find("operator"):
            node_id = op_span.attributes.get("node_id")
            if not isinstance(node_id, int):
                continue
            entry = slices.get(node_id)
            if entry is not None:
                own, subtree = entry
                op_span.attributes["bound_slice"] = own
                op_span.attributes["bound_subtree"] = subtree
            prediction = predicted.get(node_id)
            if prediction is not None and op_span.end is not None:
                op_span.attributes["predicted_seconds"] = prediction
                residual = LatencyResidual(
                    operator=op_span.name,
                    predicted_seconds=prediction,
                    observed_seconds=op_span.duration,
                )
                op_span.attributes["residual_seconds"] = residual.residual_seconds
                if len(self.residuals) < self.max_events:
                    self.residuals.append(residual)

    def _bound_slices(
        self, plan: P.PhysicalOperator
    ) -> Dict[int, Tuple[int, int]]:
        """``id(node) -> (own slice, subtree bound)`` for a plan, cached."""
        cached = self._slice_cache.get(id(plan))
        if cached is not None and cached[0] is plan:
            return cached[1]
        slices: Dict[int, Tuple[int, int]] = {}
        for node in P.walk(plan):
            try:
                subtree = compute_bound(node).max_operations
                own = subtree - sum(
                    compute_bound(child).max_operations
                    for child in node.children()
                )
            except NotScaleIndependentError:
                # Cost-based-baseline plans are deliberately unbounded.
                continue
            slices[id(node)] = (own, subtree)
        if len(self._slice_cache) >= 128:
            self._slice_cache.clear()
        self._slice_cache[id(plan)] = (plan, slices)
        return slices

    def _predicted_by_node(
        self, plan: P.PhysicalOperator
    ) -> Dict[int, float]:
        """Predicted p50 seconds per plan node, summed over its Θ models."""
        if self.latency_model is None:
            return {}
        try:
            pairs = self.latency_model.requirements_with_operators(plan)
        except PredictionError:
            return {}
        predicted: Dict[int, float] = {}
        for node, requirement in pairs:
            try:
                histogram = self.latency_model.store.histogram(requirement.key)
            except PredictionError:
                continue
            predicted[id(node)] = (
                predicted.get(id(node), 0.0) + histogram.quantile(0.5)
            )
        return predicted
