"""A fixed-memory time-series store: ring buffers with tumbling downsampling.

The telemetry collector samples dozens of fleet signals every scrape tick;
a naive append-only list per signal would grow without bound over a long
serving run.  This store keeps every series in **fixed memory**:

* samples land in tumbling buckets of ``resolution_seconds`` held in a ring
  of ``capacity`` slots, each bucket aggregating ``count/sum/min/max/last``;
* when the ring wraps, the evicted fine bucket is folded into the next
  coarser level (``resolution * downsample_factor``, same slot count), so
  old history survives at reduced resolution instead of vanishing — recent
  windows are sharp, the far past is a summary;
* series are keyed by metric name plus a label set (``node="3"``), with a
  hard cap on total series so an accidental high-cardinality label (a user
  id, say) cannot eat the heap — series beyond the cap are counted and
  dropped, never stored.

Out-of-order samples (the serving tier charges work on many private client
clocks) fold into their own bucket while that bucket is still in the ring;
samples older than the ring's horizon are dropped and counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Label sets are stored as sorted ``(key, value)`` tuples so equal label
#: dicts always produce the same series key.
Labels = Tuple[Tuple[str, str], ...]


def make_labels(labels: Optional[Dict[str, object]] = None) -> Labels:
    """Normalise a label dict into the canonical tuple form."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class TimeSeriesPoint:
    """One aggregated bucket of a series."""

    start_seconds: float
    width_seconds: float
    count: int
    sum: float
    min: float
    max: float
    last: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def end_seconds(self) -> float:
        return self.start_seconds + self.width_seconds


class _Ring:
    """One resolution level: ``capacity`` tumbling buckets in a ring."""

    __slots__ = ("width", "capacity", "bucket_ids", "aggs")

    _EMPTY = -1

    def __init__(self, width: float, capacity: int):
        self.width = width
        self.capacity = capacity
        # Absolute bucket index stored in each slot (-1 = empty).
        self.bucket_ids: List[int] = [self._EMPTY] * capacity
        # (count, sum, min, max, last) per slot.
        self.aggs: List[Optional[List[float]]] = [None] * capacity

    def bucket_of(self, t: float) -> int:
        return int(t // self.width)

    def offer(self, t: float, agg: Sequence[float]) -> Tuple[bool, Optional[Tuple[int, List[float]]]]:
        """Fold an aggregate into the bucket containing ``t``.

        Returns ``(accepted, evicted)`` where ``evicted`` is the
        ``(bucket_id, agg)`` pushed out of the ring to make room (the store
        rolls it into the next coarser level).  ``accepted`` is False when
        the sample is older than the ring's horizon (the slot it maps to
        already holds a *newer* bucket).
        """
        bucket = self.bucket_of(t)
        slot = bucket % self.capacity
        held = self.bucket_ids[slot]
        evicted: Optional[Tuple[int, List[float]]] = None
        if held == bucket:
            self._merge(self.aggs[slot], agg)
            return True, None
        if held > bucket:
            return False, None  # older than everything this ring remembers
        if held != self._EMPTY:
            evicted = (held, self.aggs[slot])  # type: ignore[arg-type]
        self.bucket_ids[slot] = bucket
        self.aggs[slot] = [agg[0], agg[1], agg[2], agg[3], agg[4]]
        return True, evicted

    @staticmethod
    def _merge(into: Optional[List[float]], agg: Sequence[float]) -> None:
        assert into is not None
        into[0] += agg[0]
        into[1] += agg[1]
        into[2] = min(into[2], agg[2])
        into[3] = max(into[3], agg[3])
        into[4] = agg[4]  # "last" follows arrival order within a bucket

    def points(self) -> List[TimeSeriesPoint]:
        """Every populated bucket, oldest first."""
        filled = [
            (bucket, self.aggs[slot])
            for slot, bucket in enumerate(self.bucket_ids)
            if bucket != self._EMPTY
        ]
        filled.sort(key=lambda entry: entry[0])
        return [
            TimeSeriesPoint(
                start_seconds=bucket * self.width,
                width_seconds=self.width,
                count=int(agg[0]),
                sum=agg[1],
                min=agg[2],
                max=agg[3],
                last=agg[4],
            )
            for bucket, agg in filled
            if agg is not None
        ]


class _Series:
    """One metric+labels series: a stack of resolution levels."""

    __slots__ = ("rings",)

    def __init__(self, resolution: float, capacity: int, levels: int, factor: int):
        self.rings = [
            _Ring(resolution * (factor ** level), capacity)
            for level in range(levels)
        ]

    def record(self, t: float, value: float) -> bool:
        agg = (1.0, value, value, value, value)
        return self._offer(0, t, agg)

    def _offer(self, level: int, t: float, agg: Sequence[float]) -> bool:
        if level >= len(self.rings):
            return False  # fell off the coarsest level: history truly expired
        accepted, evicted = self.rings[level].offer(t, agg)
        if evicted is not None:
            bucket_id, old_agg = evicted
            self._offer(
                level + 1, bucket_id * self.rings[level].width, old_agg
            )
        if not accepted:
            # Too old for this ring — maybe a coarser level still covers it.
            return self._offer(level + 1, t, agg)
        return True

    def points(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> List[TimeSeriesPoint]:
        """Buckets overlapping ``[start, end)``, finest-available first.

        Fine levels win where they still have data; coarser levels fill in
        the older range the fine ring has already recycled.
        """
        chosen: List[TimeSeriesPoint] = []
        fine_horizon: Optional[float] = None
        # Per level: take all fine points, then only those coarser points
        # ending at/before the finest data already chosen.
        for ring in self.rings:
            ring_points = ring.points()
            if not ring_points:
                continue
            if fine_horizon is None:
                chosen.extend(ring_points)
            else:
                chosen.extend(
                    p for p in ring_points if p.end_seconds <= fine_horizon
                )
            level_start = min(p.start_seconds for p in ring_points)
            fine_horizon = (
                level_start
                if fine_horizon is None
                else min(fine_horizon, level_start)
            )
        chosen.sort(key=lambda p: (p.start_seconds, p.width_seconds))
        if start is not None:
            chosen = [p for p in chosen if p.end_seconds > start]
        if end is not None:
            chosen = [p for p in chosen if p.start_seconds < end]
        return chosen

    def latest(self) -> Optional[TimeSeriesPoint]:
        for ring in self.rings:
            ring_points = ring.points()
            if ring_points:
                return ring_points[-1]
        return None


class TimeSeriesStore:
    """Cluster-wide fixed-memory time-series, keyed by name + labels.

    Parameters
    ----------
    resolution_seconds:
        Width of a finest-level tumbling bucket.
    capacity:
        Buckets retained per resolution level (per series).
    levels:
        Number of resolution levels (each ``downsample_factor`` coarser).
    downsample_factor:
        Width multiplier between adjacent levels.
    max_series:
        Hard cap on distinct (name, labels) series; further series are
        dropped and counted in :attr:`dropped_series`.
    """

    def __init__(
        self,
        resolution_seconds: float = 1.0,
        capacity: int = 128,
        levels: int = 3,
        downsample_factor: int = 8,
        max_series: int = 512,
    ):
        if resolution_seconds <= 0:
            raise ValueError("resolution_seconds must be positive")
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        if levels < 1:
            raise ValueError("need at least one resolution level")
        if downsample_factor < 2:
            raise ValueError("downsample_factor must be at least 2")
        if max_series < 1:
            raise ValueError("max_series must be positive")
        self.resolution_seconds = resolution_seconds
        self.capacity = capacity
        self.levels = levels
        self.downsample_factor = downsample_factor
        self.max_series = max_series
        self._series: Dict[Tuple[str, Labels], _Series] = {}
        #: Samples rejected because they were older than every ring horizon.
        self.dropped_samples = 0
        #: Distinct series turned away by the cardinality cap.
        self.dropped_series = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        value: float,
        t: float,
        labels: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Record one sample; returns False when it was dropped."""
        key = (name, make_labels(labels))
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self.dropped_series += 1
                return False
            series = _Series(
                self.resolution_seconds,
                self.capacity,
                self.levels,
                self.downsample_factor,
            )
            self._series[key] = series
        if not series.record(t, value):
            self.dropped_samples += 1
            return False
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def series_keys(self) -> List[Tuple[str, Labels]]:
        """Every stored ``(name, labels)`` pair, sorted."""
        return sorted(self._series)

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._series})

    def label_sets(self, name: str) -> List[Labels]:
        return sorted(
            labels for series_name, labels in self._series if series_name == name
        )

    def points(
        self,
        name: str,
        labels: Optional[Dict[str, object]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[TimeSeriesPoint]:
        series = self._series.get((name, make_labels(labels)))
        if series is None:
            return []
        return series.points(start, end)

    def latest(
        self, name: str, labels: Optional[Dict[str, object]] = None
    ) -> Optional[TimeSeriesPoint]:
        series = self._series.get((name, make_labels(labels)))
        return series.latest() if series is not None else None

    def latest_value(
        self,
        name: str,
        labels: Optional[Dict[str, object]] = None,
        default: float = 0.0,
    ) -> float:
        point = self.latest(name, labels)
        return point.last if point is not None else default

    def counter_delta(
        self,
        name: str,
        start: float,
        end: float,
        labels: Optional[Dict[str, object]] = None,
    ) -> float:
        """Increase of a *cumulative* counter series over ``(start, end]``.

        The series holds scraped cumulative values; the delta is the last
        value at/before ``end`` minus the last value at/before ``start``
        (zero when the window precedes all data).  Robust to empty windows:
        a window with no scrape inside it reports zero increase.
        """
        value_end = self._last_at_or_before(name, labels, end)
        if value_end is None:
            return 0.0
        value_start = self._last_at_or_before(name, labels, start)
        if value_start is None:
            # Window opens before the first scrape: treat the series as
            # starting from its earliest observed value, not from zero, so
            # pre-existing totals are not misread as fresh burn.
            first = self._first_point(name, labels)
            value_start = first.last if first is not None else 0.0
        return max(0.0, value_end - value_start)

    def _last_at_or_before(
        self, name: str, labels: Optional[Dict[str, object]], t: float
    ) -> Optional[float]:
        candidates = [
            p for p in self.points(name, labels) if p.start_seconds <= t
        ]
        return candidates[-1].last if candidates else None

    def _first_point(
        self, name: str, labels: Optional[Dict[str, object]]
    ) -> Optional[TimeSeriesPoint]:
        all_points = self.points(name, labels)
        return all_points[0] if all_points else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeSeriesStore({len(self._series)} series, "
            f"res={self.resolution_seconds}s x{self.capacity} "
            f"x{self.levels} levels)"
        )
