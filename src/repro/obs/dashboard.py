"""A rendered ASCII dashboard over the fleet-telemetry store.

One screenful answering the operator questions in order of urgency: is the
SLO burning (burn-rate gauges, alert timeline), is the fleet healthy
(per-node table: up/down, utilisation, queue backlog, hint backlog), are
durable storage engines keeping up (memtable/WAL/segment/compaction table,
shown only when a node runs one), is the
prediction model still honest (drift table), and what has traffic been
doing (sparkline history of throughput-ish counters).  Everything renders
from the :class:`~repro.obs.telemetry.FleetTelemetry` bundle alone, so the
same function serves ``db.dashboard()``, ``ServingReport.dashboard()``, the
demo script, and the CI artifact.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .telemetry import FleetTelemetry
from .timeseries import TimeSeriesPoint

#: Eight-level block characters, lowest to highest.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render values as a fixed-width unicode sparkline (empty-safe)."""
    if not values:
        return ""
    values = list(values)[-width:]
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    chars = []
    top = len(_SPARK_BLOCKS) - 1
    for value in values:
        index = int((value - low) / span * top + 0.5)
        chars.append(_SPARK_BLOCKS[max(0, min(top, index))])
    return "".join(chars)


def _rate_series(points: List[TimeSeriesPoint]) -> List[float]:
    """Per-bucket increase of a cumulative counter series."""
    rates: List[float] = []
    previous: Optional[float] = None
    for point in points:
        if previous is not None:
            rates.append(max(0.0, point.last - previous))
        previous = point.last
    return rates


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths)).rstrip()


def render_dashboard(telemetry: FleetTelemetry, width: int = 72) -> str:
    """Render the fleet dashboard as one multi-line string."""
    store = telemetry.store
    lines: List[str] = []
    rule = "─" * width

    lines.append("FLEET TELEMETRY".center(width))
    lines.append(rule)
    scrapes = telemetry.collector.scrapes
    last = telemetry.collector.last_scrape_seconds
    lines.append(
        f"scrapes: {scrapes}"
        + (f"   last @ {last:.2f}s" if last is not None else "")
        + f"   series: {len(store)}"
        + (f"   dropped: {store.dropped_samples}" if store.dropped_samples else "")
    )

    # ------------------------------------------------------------------
    # SLO burn
    # ------------------------------------------------------------------
    alerter = telemetry.alerter
    if alerter is not None and last is not None:
        lines.append("")
        lines.append("SLO BURN")
        budget_pct = alerter.error_budget * 100.0
        slo = alerter.slo
        lines.append(
            f"  objective: p{slo.quantile * 100:g} < {slo.latency_ms:g} ms "
            f"(budget {budget_pct:g}%)"
        )
        for rule_def in alerter.rules:
            fast = alerter.burn_rate(last, rule_def.fast_seconds)
            slow = alerter.burn_rate(last, rule_def.slow_seconds)
            state = (
                "FIRING"
                if any(
                    a.active and a.rule.name == rule_def.name
                    for a in alerter.alerts
                )
                else "ok"
            )
            lines.append(
                f"  {rule_def.name:<24} fast {fast:6.2f}x  slow {slow:6.2f}x  {state}"
            )
        if alerter.alerts:
            lines.append("  alerts:")
            for alert in alerter.alerts:
                lines.append(f"    {alert.describe()}")
        else:
            lines.append("  alerts: none")

    # ------------------------------------------------------------------
    # Node health
    # ------------------------------------------------------------------
    node_labels = store.label_sets("node.up")
    if node_labels:
        lines.append("")
        lines.append("NODES")
        header = ("node", "up", "util", "backlog", "hints", "utilization")
        widths = (4, 4, 6, 9, 6, 34)
        lines.append("  " + _format_row(header, widths))
        for labels in node_labels:
            label_dict = dict(labels)
            node_id = label_dict.get("node", "?")
            up = store.latest_value("node.up", label_dict, default=1.0)
            util_points = store.points("node.utilization", label_dict)
            util = util_points[-1].last if util_points else 0.0
            backlog = store.latest_value(
                "node.queue.backlog_seconds", label_dict
            )
            hints = store.latest_value("replication.hint_backlog", label_dict)
            spark = sparkline([p.mean for p in util_points], width=32)
            lines.append(
                "  "
                + _format_row(
                    (
                        node_id,
                        "UP" if up >= 0.5 else "DOWN",
                        f"{util:.2f}",
                        f"{backlog * 1000.0:6.1f}ms",
                        f"{int(hints)}",
                        spark,
                    ),
                    widths,
                )
            )

    # ------------------------------------------------------------------
    # Circuit breakers (only present when clients run resilience breakers)
    # ------------------------------------------------------------------
    breaker_labels = store.label_sets("resilience.breaker.open_clients")
    if breaker_labels:
        lines.append("")
        boards = store.latest_value("resilience.breaker.boards")
        lines.append(f"BREAKERS ({int(boards)} client boards)")
        header = ("node", "open now", "peak", "open history")
        widths = (4, 9, 5, 34)
        lines.append("  " + _format_row(header, widths))
        for labels in breaker_labels:
            label_dict = dict(labels)
            node_id = label_dict.get("node", "?")
            points = store.points(
                "resilience.breaker.open_clients", label_dict
            )
            open_now = points[-1].last if points else 0.0
            peak = max((p.max for p in points), default=0.0)
            spark = sparkline([p.mean for p in points], width=32)
            lines.append(
                "  "
                + _format_row(
                    (node_id, f"{int(open_now)}", f"{int(peak)}", spark),
                    widths,
                )
            )

    # ------------------------------------------------------------------
    # Storage engines (only present when nodes run a durable engine)
    # ------------------------------------------------------------------
    engine_labels = store.label_sets("engine.memtable_bytes")
    if engine_labels:
        lines.append("")
        lines.append("STORAGE ENGINE")
        header = ("node", "memtable", "wal", "segs", "seg bytes", "compact", "memtable history")
        widths = (4, 9, 9, 5, 10, 8, 24)
        lines.append("  " + _format_row(header, widths))
        for labels in engine_labels:
            label_dict = dict(labels)
            node_id = label_dict.get("node", "?")
            mem_points = store.points("engine.memtable_bytes", label_dict)
            memtable = mem_points[-1].last if mem_points else 0.0
            wal = store.latest_value("engine.wal_bytes", label_dict)
            segments = store.latest_value("engine.segment_count", label_dict)
            seg_bytes = store.latest_value("engine.segment_bytes", label_dict)
            compactions = store.latest_value("engine.compactions", label_dict)
            backlog = store.latest_value("engine.compaction_backlog", label_dict)
            spark = sparkline([p.mean for p in mem_points], width=24)
            lines.append(
                "  "
                + _format_row(
                    (
                        node_id,
                        f"{int(memtable)}B",
                        f"{int(wal)}B",
                        f"{int(segments)}",
                        f"{int(seg_bytes)}B",
                        f"{int(compactions)}"
                        + (f"+{int(backlog)}" if backlog else ""),
                        spark,
                    ),
                    widths,
                )
            )

    # ------------------------------------------------------------------
    # Replication health (cluster-wide counters)
    # ------------------------------------------------------------------
    repl_names = [
        name
        for name in store.names()
        if name.startswith("replication.") and () in {
            labels for series_name, labels in store.series_keys()
            if series_name == name
        }
    ]
    if repl_names:
        lines.append("")
        lines.append("REPLICATION")
        for name in repl_names:
            value = store.latest_value(name)
            lines.append(f"  {name:<36} {value:12.0f}")

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    traffic_names = [
        name for name in ("serving.slo.total", "serving.completed", "admission.shed")
        if store.points(name)
    ]
    if traffic_names:
        lines.append("")
        lines.append("TRAFFIC (per-bucket rate)")
        for name in traffic_names:
            rates = _rate_series(store.points(name))
            total = store.latest_value(name)
            lines.append(
                f"  {name:<24} {sparkline(rates, width=32):<32} total {total:.0f}"
            )

    # ------------------------------------------------------------------
    # Prediction drift
    # ------------------------------------------------------------------
    drift = telemetry.drift
    if drift is not None:
        lines.append("")
        lines.append("PREDICTION DRIFT")
        reports = drift.report()
        if not reports:
            lines.append("  no audited query classes yet")
        for report in reports:
            state = "DRIFTING" if report.drifting else "ok"
            name = report.query_class
            if len(name) > 40:
                name = name[:37] + "..."
            lines.append(
                f"  {name:<40} median {report.median_residual_seconds * 1000.0:+7.2f} ms"
                f"  n={report.observations:<4d} {state}"
            )

    # ------------------------------------------------------------------
    # Latency breakdown (critical-path aggregates scraped by forensics)
    # ------------------------------------------------------------------
    share_labels = store.label_sets("forensics.segment_share")
    if share_labels:
        lines.append("")
        lines.append("LATENCY BREAKDOWN (critical-path share)")
        analyzed = store.latest_value("forensics.traces_analyzed")
        dropped_roots = store.latest_value("obs.trace.dropped_roots")
        summary = f"  traces analyzed: {int(analyzed)}"
        if dropped_roots:
            summary += f"   tracer dropped roots: {int(dropped_roots)}"
        lines.append(summary)
        by_class: dict = {}
        for labels in share_labels:
            label_dict = dict(labels)
            query_class = label_dict.get("query_class", "?")
            segment = label_dict.get("segment", "?")
            by_class.setdefault(query_class, []).append((segment, label_dict))
        for query_class in sorted(by_class):
            name = query_class
            if len(name) > width - 4:
                name = name[: width - 7] + "..."
            lines.append(f"  {name}")
            rows = []
            for segment, label_dict in by_class[query_class]:
                points = store.points("forensics.segment_share", label_dict)
                share = points[-1].last if points else 0.0
                rows.append((share, segment, points))
            for share, segment, points in sorted(rows, reverse=True):
                if share <= 0.0:
                    continue
                spark = sparkline([p.mean for p in points], width=24)
                lines.append(
                    f"    {segment:<24} {share * 100.0:5.1f}%  {spark}"
                )

    lines.append(rule)
    return "\n".join(lines)
