"""Interpreter for physical plans.

Each physical operator is executed against the simulated key/value store
through the :class:`~repro.kvstore.client.StorageClient`, honouring the
execution strategy (LAZY / SIMPLE / PARALLEL) that Section 8.5 compares:
the strategy decides whether limit hints are used to batch requests and
whether a remote operator's requests are issued in parallel.

Operators exchange *internal rows* — dictionaries mapping a relation alias
to that relation's column values — so joins simply merge dictionaries and
the final projection flattens them into user-visible rows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import ExecutionError
from ..plans import logical as L
from ..plans import physical as P
from ..schema.ddl import Table
from ..schema.keys import encode_key, encode_value, prefix_upper_bound, successor
from ..sql.ast import Parameter
from ..storage.fulltext import query_token
from ..storage.rows import deserialize_pk, deserialize_row, index_namespace, pk_key
from .context import ExecutionContext, ExecutionStrategy, InternalRow
from .evaluate import (
    column_value,
    evaluate_all,
    resolve_in_list,
    resolve_key_part,
    resolve_value,
    sort_rows,
)

KeyValuePairs = List[Tuple[bytes, bytes]]


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def execute_plan(plan: P.PhysicalOperator, context: ExecutionContext) -> List[InternalRow]:
    """Execute any physical operator, returning internal rows."""
    if isinstance(plan, P.PhysicalIndexScan):
        return _execute_index_scan(plan, context)
    if isinstance(plan, P.PhysicalIndexLookup):
        return _execute_index_lookup(plan, context)
    if isinstance(plan, P.PhysicalIndexFKJoin):
        return _execute_fk_join(plan, context)
    if isinstance(plan, P.PhysicalSortedIndexJoin):
        return _execute_sorted_index_join(plan, context)
    if isinstance(plan, P.PhysicalLocalSelection):
        rows = execute_plan(plan.child, context)
        return [r for r in rows if evaluate_all(plan.predicates, r, context)]
    if isinstance(plan, P.PhysicalLocalSort):
        return sort_rows(execute_plan(plan.child, context), plan.keys)
    if isinstance(plan, P.PhysicalLocalStop):
        rows = execute_plan(plan.child, context)
        count = _resolve_count(plan.count, context)
        return rows if count is None else rows[:count]
    if isinstance(plan, P.PhysicalLocalAggregate):
        return _execute_aggregate(plan, context)
    if isinstance(plan, P.PhysicalLocalProjection):
        # Projection is normally driven through execute_output; executing it
        # as an inner node just forwards the child rows.
        return execute_plan(plan.child, context)
    raise ExecutionError(f"cannot execute operator {type(plan).__name__}")


def execute_output(
    plan: P.PhysicalOperator, context: ExecutionContext
) -> List[Dict[str, Any]]:
    """Execute a full plan and flatten its rows for the user."""
    if isinstance(plan, P.PhysicalLocalProjection):
        rows = execute_plan(plan.child, context)
        return [_project_row(plan.items, row) for row in rows]
    rows = execute_plan(plan, context)
    return [_project_row((L.StarItem(None),), row) for row in rows]


# ----------------------------------------------------------------------
# Remote operators
# ----------------------------------------------------------------------
def _resolve_count(
    count: Optional[object], context: ExecutionContext
) -> Optional[int]:
    if count is None:
        return None
    if isinstance(count, int):
        return count
    if isinstance(count, Parameter):
        try:
            return int(context.parameter(count.name))
        except KeyError:
            if count.max_cardinality is not None:
                return count.max_cardinality
            raise
    raise ExecutionError(f"cannot resolve count {count!r}")


def _scan_limit(op: P.PhysicalIndexScan, context: ExecutionContext) -> Optional[int]:
    candidates: List[int] = []
    hint = _resolve_count(op.limit_hint, context) if op.limit_hint is not None else None
    if hint is not None:
        candidates.append(hint)
    if op.data_stop is not None:
        candidates.append(op.data_stop)
    return min(candidates) if candidates else None


def _range_for_scan(
    op: P.PhysicalIndexScan, context: ExecutionContext
) -> Tuple[bytes, bytes, List[L.ValuePredicate]]:
    """Compute the byte range of a scan plus any residual local checks."""
    prefix_values: List[Any] = []
    for position, part in enumerate(op.prefix):
        value = resolve_key_part(part, context)
        if (
            not op.index.primary
            and op.index.definition is not None
            and position < len(op.index.definition.columns)
            and op.index.definition.columns[position].tokenized
        ):
            value = query_token(str(value))
        prefix_values.append(value)
    prefix_bytes = encode_key(prefix_values)
    start = prefix_bytes
    end = prefix_upper_bound(prefix_bytes) if prefix_bytes else None
    local_checks: List[L.ValuePredicate] = []
    if op.inequality is not None:
        column, operator, value = op.inequality
        resolved = resolve_key_part(value, context)
        encoded = encode_value(resolved)
        if operator == "<":
            end = prefix_bytes + encoded
        elif operator == "<=":
            end = prefix_bytes + encoded + b"\xff"
        elif operator == ">":
            start = prefix_bytes + encoded + b"\xff"
        elif operator == ">=":
            start = prefix_bytes + encoded
        elif operator == "<>":
            local_checks.append(
                L.AttributeInequality(
                    column=L.BoundColumn(
                        relation=op.relation_alias, table=op.table, column=column
                    ),
                    op="<>",
                    value=value if not isinstance(value, L.BoundColumn) else value,
                )
            )
        else:
            raise ExecutionError(f"unsupported inequality operator {operator!r}")
    return start, end, local_checks


def _fetch_range(
    namespace: str,
    start: Optional[bytes],
    end: Optional[bytes],
    limit: Optional[int],
    ascending: bool,
    context: ExecutionContext,
) -> KeyValuePairs:
    """Fetch a range honouring the execution strategy's batching behaviour."""
    if context.strategy is ExecutionStrategy.LAZY:
        pairs: KeyValuePairs = []
        current_start, current_end = start, end
        while limit is None or len(pairs) < limit:
            batch = context.client.get_range(
                namespace, current_start, current_end, limit=1, ascending=ascending
            )
            if not batch:
                break
            key, value = batch[0]
            pairs.append((key, value))
            if ascending:
                current_start = successor(key)
            else:
                current_end = key
        return pairs
    return context.client.get_range(
        namespace, start, end, limit=limit, ascending=ascending
    )


def _dereference(
    table: Table, entries: KeyValuePairs, context: ExecutionContext
) -> List[Dict[str, Any]]:
    """Fetch base records referenced by secondary index entries."""
    keys = [pk_key(deserialize_pk(value)) for _, value in entries]
    if not keys:
        return []
    if context.strategy is ExecutionStrategy.LAZY:
        values = [context.client.get(table.namespace, key) for key in keys]
    else:
        values = context.client.multi_get(table.namespace, keys, parallel=True)
    return [deserialize_row(value) for value in values if value is not None]


def _execute_index_scan(
    op: P.PhysicalIndexScan, context: ExecutionContext
) -> List[InternalRow]:
    table = context.catalog.table(op.table)
    namespace = (
        table.namespace if op.index.primary else index_namespace(op.index.definition)
    )
    start, end, local_checks = _range_for_scan(op, context)
    limit = _scan_limit(op, context)

    resume = context.resume_positions.get(op.scan_id)
    if resume is not None:
        if op.ascending:
            start = max(start, successor(resume)) if start else successor(resume)
        else:
            end = min(end, resume) if end else resume

    pairs = _fetch_range(namespace, start, end, limit, op.ascending, context)
    if pairs:
        # pairs are returned in scan order, so the last one is the position
        # to resume after (largest key for ascending scans, smallest for
        # descending ones).
        context.new_positions[op.scan_id] = pairs[-1][0]
    context.scan_exhausted[op.scan_id] = limit is None or len(pairs) < limit

    if op.index.primary:
        records = [deserialize_row(value) for _, value in pairs]
    else:
        records = _dereference(table, pairs, context)
    rows: List[InternalRow] = [{op.relation_alias: record} for record in records]
    if local_checks:
        rows = [r for r in rows if evaluate_all(local_checks, r, context)]
    return rows


def _execute_index_lookup(
    op: P.PhysicalIndexLookup, context: ExecutionContext
) -> List[InternalRow]:
    table = context.catalog.table(op.table)
    # Expand the cartesian product of fixed values and the (single) IN list.
    key_value_lists: List[List[Any]] = []
    for part in op.key_parts:
        if isinstance(part, P.InListPart):
            key_value_lists.append(resolve_in_list(part, context))
        else:
            key_value_lists.append([resolve_key_part(part, context)])
    keys: List[bytes] = []
    _expand_keys(key_value_lists, 0, [], keys)
    if context.strategy is ExecutionStrategy.PARALLEL:
        values = context.client.multi_get(table.namespace, keys, parallel=True)
    else:
        values = [context.client.get(table.namespace, key) for key in keys]
    return [
        {op.relation_alias: deserialize_row(value)}
        for value in values
        if value is not None
    ]


def _expand_keys(
    value_lists: List[List[Any]], position: int, prefix: List[Any], out: List[bytes]
) -> None:
    if position == len(value_lists):
        out.append(encode_key(prefix))
        return
    for value in value_lists[position]:
        _expand_keys(value_lists, position + 1, prefix + [value], out)


def _execute_fk_join(
    op: P.PhysicalIndexFKJoin, context: ExecutionContext
) -> List[InternalRow]:
    table = context.catalog.table(op.table)
    child_rows = execute_plan(op.child, context)
    if not child_rows:
        return []
    keys: List[Optional[bytes]] = []
    for row in child_rows:
        values = [resolve_key_part(part, context, row) for part in op.key_parts]
        keys.append(None if any(v is None for v in values) else encode_key(values))

    lookup_keys = [key for key in keys if key is not None]
    if context.strategy is ExecutionStrategy.PARALLEL:
        fetched = context.client.multi_get(table.namespace, lookup_keys, parallel=True)
    else:
        fetched = [context.client.get(table.namespace, key) for key in lookup_keys]
    by_key: Dict[bytes, Optional[bytes]] = dict(zip(lookup_keys, fetched))

    joined: List[InternalRow] = []
    for row, key in zip(child_rows, keys):
        if key is None:
            continue
        payload = by_key.get(key)
        if payload is None:
            continue
        merged = dict(row)
        merged[op.relation_alias] = deserialize_row(payload)
        joined.append(merged)
    return joined


def _execute_sorted_index_join(
    op: P.PhysicalSortedIndexJoin, context: ExecutionContext
) -> List[InternalRow]:
    table = context.catalog.table(op.table)
    namespace = (
        table.namespace if op.index.primary else index_namespace(op.index.definition)
    )
    child_rows = execute_plan(op.child, context)
    if not child_rows:
        return []

    ranges = []
    for row in child_rows:
        prefix_values = [resolve_key_part(part, context, row) for part in op.prefix]
        prefix_bytes = encode_key(prefix_values)
        ranges.append(
            (prefix_bytes, prefix_upper_bound(prefix_bytes), op.limit_hint, op.ascending)
        )

    strategy = context.strategy
    per_child_entries: List[KeyValuePairs] = []
    if strategy is ExecutionStrategy.LAZY:
        for start, end, limit, ascending in ranges:
            per_child_entries.append(
                _fetch_range(namespace, start, end, limit, ascending, context)
            )
    elif strategy is ExecutionStrategy.SIMPLE:
        per_child_entries = context.client.multi_get_range(
            namespace, ranges, parallel=False
        )
    else:
        per_child_entries = context.client.multi_get_range(
            namespace, ranges, parallel=True
        )

    joined: List[InternalRow] = []
    for row, entries in zip(child_rows, per_child_entries):
        if op.index.primary:
            records = [deserialize_row(value) for _, value in entries]
        else:
            records = _dereference(table, entries, context)
        for record in records:
            merged = dict(row)
            merged[op.relation_alias] = record
            joined.append(merged)

    if op.sort_keys:
        keys = [
            (
                L.BoundColumn(
                    relation=op.relation_alias, table=op.table, column=name
                ),
                ascending,
            )
            for name, ascending in op.sort_keys
        ]
        joined = sort_rows(joined, keys)
    stop = _resolve_count(op.stop_count, context) if op.stop_count is not None else None
    if stop is not None:
        joined = joined[:stop]
    return joined


# ----------------------------------------------------------------------
# Local aggregation and projection
# ----------------------------------------------------------------------
def _execute_aggregate(
    op: P.PhysicalLocalAggregate, context: ExecutionContext
) -> List[InternalRow]:
    rows = execute_plan(op.child, context)
    groups: Dict[Tuple, List[InternalRow]] = {}
    for row in rows:
        key = tuple(column_value(row, column) for column in op.group_by)
        groups.setdefault(key, []).append(row)
    if not op.group_by and not groups:
        groups[()] = []

    output: List[InternalRow] = []
    for key, members in groups.items():
        result: InternalRow = {}
        for column, value in zip(op.group_by, key):
            result.setdefault(column.relation, {})[column.column] = value
        aggregate_values: Dict[str, Any] = {}
        for spec in op.aggregates:
            aggregate_values[spec.output_name] = _aggregate_value(spec, members)
        result["__agg__"] = aggregate_values
        output.append(result)
    return output


def _aggregate_value(spec: L.AggregateSpec, rows: List[InternalRow]) -> Any:
    if spec.function == "COUNT":
        if spec.argument is None:
            return len(rows)
        return sum(1 for row in rows if column_value(row, spec.argument) is not None)
    values = [
        column_value(row, spec.argument)
        for row in rows
        if spec.argument is not None and column_value(row, spec.argument) is not None
    ]
    if not values:
        return None
    if spec.function == "SUM":
        return sum(values)
    if spec.function == "AVG":
        return sum(values) / len(values)
    if spec.function == "MIN":
        return min(values)
    if spec.function == "MAX":
        return max(values)
    raise ExecutionError(f"unknown aggregate {spec.function!r}")


def _project_row(
    items: Tuple[L.ProjectionItem, ...], row: InternalRow
) -> Dict[str, Any]:
    output: Dict[str, Any] = {}

    def add(name: str, value: Any, qualifier: str) -> None:
        if name in output and output[name] != value:
            output[f"{qualifier}.{name}"] = value
        else:
            output[name] = value

    for item in items:
        if isinstance(item, L.StarItem):
            relations = (
                [item.relation] if item.relation is not None else
                [alias for alias in row if alias != "__agg__"]
            )
            for alias in relations:
                for column, value in row.get(alias, {}).items():
                    add(column, value, alias)
        elif isinstance(item, L.BoundColumn):
            add(item.column, column_value(row, item), item.relation)
        elif isinstance(item, L.AggregateSpec):
            output[item.output_name] = row.get("__agg__", {}).get(item.output_name)
        else:  # pragma: no cover
            raise ExecutionError(f"unsupported projection item {item!r}")
    return output
