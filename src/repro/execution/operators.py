"""Interpreter for physical plans.

Each physical operator is executed against the simulated key/value store
through the :class:`~repro.kvstore.client.StorageClient`, honouring the
execution strategy (LAZY / SIMPLE / PARALLEL) that Section 8.5 compares:
the strategy decides whether limit hints are used to batch requests and
whether a remote operator's requests are issued in parallel.

On top of the strategy, the executor plans its fetches **batch-at-a-time**
(``context.fused``, on by default):

* **RPC fusion** — the secondary-index dereferences of a sorted index join
  are collected across *all* children and issued as one deduplicated bulk
  ``multi_get`` round instead of one round per child (per-child attribution
  is preserved for the merge);
* **stop-aware dereference** — when the plan carries a data stop / LIMIT,
  index entries are put in output order *before* the base records are
  fetched (the sort columns are decoded from the entry keys), dereferenced
  in stop-sized chunks, and the fetch stops as soon as the stop is
  satisfied;
* **predicate pushdown** — residual predicates that only touch index-key
  fields are evaluated server-side on the index entries
  (``pushed_predicates``), so non-matching entries are charged as examined
  but never shipped or dereferenced.

None of this changes the rows returned, the per-query operation counts, or
the static bounds — logical operations measure *requested* work (skipped
fetches are charged through ``ClientStats.saved_reads``) and only the RPC
round structure and the latency composition improve.  The LAZY strategy
ignores fusion entirely (one request per tuple, as in Figure 12).

Operators exchange *internal rows* — dictionaries mapping a relation alias
to that relation's column values — so joins simply merge dictionaries and
the final projection flattens them into user-visible rows.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ExecutionError
from ..plans import logical as L
from ..plans import physical as P
from ..schema.ddl import Table
from ..schema.keys import (
    decode_key,
    encode_key,
    encode_value,
    prefix_upper_bound,
    successor,
)
from ..sql.ast import Parameter
from ..storage.fulltext import query_token
from ..storage.rows import (
    cached_pk_key,
    deserialize_pk,
    deserialize_row,
    index_namespace,
    pk_key,
)
from .context import ExecutionContext, ExecutionStrategy, InternalRow
from .evaluate import (
    column_value,
    evaluate_all,
    ordering_key,
    resolve_in_list,
    resolve_key_part,
    resolve_value,
    sort_rows,
    top_k_rows,
)

KeyValuePairs = List[Tuple[bytes, bytes]]

#: Per-operator-class span metadata, computed once: the display name
#: ("Physical" prefix stripped) and whether the operator is a purely local
#: transform (no storage work, no simulated time) whose span is only worth
#: recording when the tracer is in verbose mode (EXPLAIN ANALYZE).
_SPAN_INFO: Dict[type, Tuple[str, bool]] = {}

_LOCAL_OPERATORS = (
    P.PhysicalLocalSelection,
    P.PhysicalLocalSort,
    P.PhysicalLocalStop,
    P.PhysicalLocalAggregate,
    P.PhysicalLocalProjection,
)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def execute_plan(plan: P.PhysicalOperator, context: ExecutionContext) -> List[InternalRow]:
    """Execute any physical operator, returning internal rows.

    When the execution is traced, every storage-touching operator gets one
    ``operator`` span carrying ``node_id = id(plan node)`` (how the bound
    auditor and ``EXPLAIN ANALYZE`` map spans back to the plan) plus the
    operations, round trips, and rows its subtree produced.  Purely local
    operators are only spanned when the tracer is in verbose mode
    (``EXPLAIN ANALYZE`` sets it): they issue no storage work and take no
    simulated time, so steady-state traces skip them.
    """
    tracer = context.tracer
    if tracer is None:
        return _dispatch(plan, context)
    cls = type(plan)
    info = _SPAN_INFO.get(cls)
    if info is None:
        info = _SPAN_INFO[cls] = (
            cls.__name__.removeprefix("Physical"),
            issubclass(cls, _LOCAL_OPERATORS),
        )
    name, local = info
    if local and not tracer.verbose:
        return _dispatch(plan, context)
    counters = context.counters
    if counters is None:
        counters = context.counters = context.client.stats.metrics.live_counters
    ops_before = counters.get("client.operations", 0)
    rpcs_before = counters.get("client.rpcs", 0)
    span = tracer.start_span(name, "operator", node_id=id(plan))
    try:
        rows = _dispatch(plan, context)
    finally:
        tracer.end_span(span)
    attributes = span.attributes
    attributes["operations"] = counters.get("client.operations", 0) - ops_before
    attributes["rpcs"] = counters.get("client.rpcs", 0) - rpcs_before
    attributes["rows"] = len(rows)
    return rows


def _dispatch(plan: P.PhysicalOperator, context: ExecutionContext) -> List[InternalRow]:
    if isinstance(plan, P.PhysicalIndexScan):
        return _execute_index_scan(plan, context)
    if isinstance(plan, P.PhysicalIndexLookup):
        return _execute_index_lookup(plan, context)
    if isinstance(plan, P.PhysicalIndexFKJoin):
        return _execute_fk_join(plan, context)
    if isinstance(plan, P.PhysicalSortedIndexJoin):
        return _execute_sorted_index_join(plan, context)
    if isinstance(plan, P.PhysicalLocalSelection):
        rows = execute_plan(plan.child, context)
        return [r for r in rows if evaluate_all(plan.predicates, r, context)]
    if isinstance(plan, P.PhysicalLocalSort):
        return sort_rows(execute_plan(plan.child, context), plan.keys)
    if isinstance(plan, P.PhysicalLocalStop):
        rows = execute_plan(plan.child, context)
        count = _resolve_count(plan.count, context)
        return rows if count is None else rows[:count]
    if isinstance(plan, P.PhysicalLocalAggregate):
        return _execute_aggregate(plan, context)
    if isinstance(plan, P.PhysicalLocalProjection):
        # Projection is normally driven through execute_output; executing it
        # as an inner node just forwards the child rows.
        return execute_plan(plan.child, context)
    raise ExecutionError(f"cannot execute operator {type(plan).__name__}")


def execute_output(
    plan: P.PhysicalOperator, context: ExecutionContext
) -> List[Dict[str, Any]]:
    """Execute a full plan and flatten its rows for the user."""
    if isinstance(plan, P.PhysicalLocalProjection):
        # Going through execute_plan (whose dispatch forwards projection to
        # its child) keeps the projection node in the trace.
        rows = execute_plan(plan, context)
        return [_project_row(plan.items, row) for row in rows]
    rows = execute_plan(plan, context)
    return [_project_row((L.StarItem(None),), row) for row in rows]


# ----------------------------------------------------------------------
# Remote operators
# ----------------------------------------------------------------------
def _resolve_count(
    count: Optional[object], context: ExecutionContext
) -> Optional[int]:
    if count is None:
        return None
    if isinstance(count, int):
        return count
    if isinstance(count, Parameter):
        try:
            return int(context.parameter(count.name))
        except KeyError:
            if count.max_cardinality is not None:
                return count.max_cardinality
            raise
    raise ExecutionError(f"cannot resolve count {count!r}")


def _fused(context: ExecutionContext) -> bool:
    """Whether batch-at-a-time fetch planning applies to this execution."""
    return context.fused and context.strategy is not ExecutionStrategy.LAZY


def _scan_limit(op: P.PhysicalIndexScan, context: ExecutionContext) -> Optional[int]:
    candidates: List[int] = []
    hint = _resolve_count(op.limit_hint, context) if op.limit_hint is not None else None
    if hint is not None:
        candidates.append(hint)
    if op.data_stop is not None:
        candidates.append(op.data_stop)
    return min(candidates) if candidates else None


def _range_for_scan(
    op: P.PhysicalIndexScan, context: ExecutionContext
) -> Tuple[bytes, bytes, List[L.ValuePredicate]]:
    """Compute the byte range of a scan plus any residual local checks."""
    prefix_values: List[Any] = []
    for position, part in enumerate(op.prefix):
        value = resolve_key_part(part, context)
        if (
            not op.index.primary
            and op.index.definition is not None
            and position < len(op.index.definition.columns)
            and op.index.definition.columns[position].tokenized
        ):
            value = query_token(str(value))
        prefix_values.append(value)
    prefix_bytes = encode_key(prefix_values)
    start = prefix_bytes
    end = prefix_upper_bound(prefix_bytes) if prefix_bytes else None
    local_checks: List[L.ValuePredicate] = []
    if op.inequality is not None:
        column, operator, value = op.inequality
        resolved = resolve_key_part(value, context)
        encoded = encode_value(resolved)
        if operator == "<":
            end = prefix_bytes + encoded
        elif operator == "<=":
            end = prefix_bytes + encoded + b"\xff"
        elif operator == ">":
            start = prefix_bytes + encoded + b"\xff"
        elif operator == ">=":
            start = prefix_bytes + encoded
        elif operator == "<>":
            local_checks.append(
                L.AttributeInequality(
                    column=L.BoundColumn(
                        relation=op.relation_alias, table=op.table, column=column
                    ),
                    op="<>",
                    value=value if not isinstance(value, L.BoundColumn) else value,
                )
            )
        else:
            raise ExecutionError(f"unsupported inequality operator {operator!r}")
    return start, end, local_checks


def _fetch_range(
    namespace: str,
    start: Optional[bytes],
    end: Optional[bytes],
    limit: Optional[int],
    ascending: bool,
    context: ExecutionContext,
) -> KeyValuePairs:
    """Fetch a range honouring the execution strategy's batching behaviour."""
    if context.strategy is ExecutionStrategy.LAZY:
        pairs: KeyValuePairs = []
        current_start, current_end = start, end
        while limit is None or len(pairs) < limit:
            batch = context.client.get_range(
                namespace, current_start, current_end, limit=1, ascending=ascending
            )
            if not batch:
                break
            key, value = batch[0]
            pairs.append((key, value))
            if ascending:
                current_start = successor(key)
            else:
                current_end = key
        return pairs
    return context.client.get_range(
        namespace, start, end, limit=limit, ascending=ascending
    )


# ----------------------------------------------------------------------
# Dereferencing (index entry -> base record)
# ----------------------------------------------------------------------
def _dereference(
    table: Table, entries: KeyValuePairs, context: ExecutionContext
) -> List[Dict[str, Any]]:
    """Fetch base records referenced by secondary index entries (legacy path:
    one request per tuple under LAZY, one batched round per call otherwise)."""
    keys = [pk_key(deserialize_pk(value)) for _, value in entries]
    if not keys:
        return []
    if context.strategy is ExecutionStrategy.LAZY:
        values = [context.client.get(table.namespace, key) for key in keys]
        context.client.stats.dereference_rounds += len(keys)
    else:
        values = context.client.multi_get(table.namespace, keys, parallel=True)
        context.client.stats.dereference_rounds += 1
    return [deserialize_row(value) for value in values if value is not None]


def _fused_dereference_map(
    table: Table, entries: KeyValuePairs, context: ExecutionContext
) -> Dict[bytes, Optional[bytes]]:
    """One deduplicated bulk dereference round over many index entries.

    Returns a ``record key -> payload`` map for per-entry attribution.
    Operations are charged per *logical* lookup (one per entry), duplicates
    are fetched once.
    """
    keys = [cached_pk_key(value) for _, value in entries]
    unique = list(dict.fromkeys(keys))
    if not unique:
        return {}
    values = context.client.multi_get(
        table.namespace, unique, parallel=True, logical_operations=len(keys)
    )
    context.client.stats.dereference_rounds += 1
    return dict(zip(unique, values))


# ----------------------------------------------------------------------
# Predicate pushdown (evaluate residuals on index entries, server-side)
# ----------------------------------------------------------------------
def _build_entry_filter(
    op: P.PhysicalIndexScan,
    table: Table,
    checks: List[L.ValuePredicate],
    context: ExecutionContext,
) -> Optional[Callable[[bytes, bytes], bool]]:
    """Server-side filter evaluating ``checks`` on raw index entries.

    Pushability is decided by the shared
    :func:`repro.plans.physical.pushable_predicate_columns` rules — the
    same ones Phase II used to annotate the scan — re-checked here because
    runtime-built local checks (the ``<>`` rewrite) also land in
    ``checks``; an unpushable predicate simply disables the server-side
    filter and falls back to post-materialization evaluation.
    """
    alias = op.relation_alias
    if op.index.primary:
        for predicate in checks:
            if P.pushable_predicate_columns(predicate, alias, True) is None:
                return None

        def record_filter(key: bytes, value: bytes) -> bool:
            return evaluate_all(checks, {alias: deserialize_row(value)}, context)

        return record_filter

    positions = P.entry_decodable_columns(op.index, table)
    if positions is None:
        return None
    needed: List[str] = []
    for predicate in checks:
        columns = P.pushable_predicate_columns(predicate, alias, False)
        if columns is None:
            return None
        needed.extend(columns)
    if any(column not in positions for column in needed):
        return None
    wanted = {column: positions[column] for column in set(needed)}
    components = max(wanted.values()) + 1

    def entry_filter(key: bytes, value: bytes) -> bool:
        decoded = decode_key(key, count=components)
        row = {column: decoded[offset] for column, offset in wanted.items()}
        return evaluate_all(checks, {alias: row}, context)

    return entry_filter


# ----------------------------------------------------------------------
# Index scan
# ----------------------------------------------------------------------
def _execute_index_scan(
    op: P.PhysicalIndexScan, context: ExecutionContext
) -> List[InternalRow]:
    table = context.catalog.table(op.table)
    namespace = (
        table.namespace if op.index.primary else index_namespace(op.index.definition)
    )
    start, end, local_checks = _range_for_scan(op, context)
    limit = _scan_limit(op, context)

    resume = context.resume_positions.get(op.scan_id)
    if resume is not None:
        if op.ascending:
            start = max(start, successor(resume)) if start else successor(resume)
        else:
            end = min(end, resume) if end else resume

    checks = list(local_checks) + list(op.pushed_predicates)
    entry_filter = None
    if checks and _fused(context):
        entry_filter = _build_entry_filter(op, table, checks, context)

    if entry_filter is not None:
        pairs, examined, last_examined = context.client.filtered_range(
            namespace, start, end, limit, op.ascending, entry_filter
        )
        if last_examined is not None:
            # Resume after the last *examined* entry: a page whose entries
            # all fail the pushed predicate must still make progress.
            context.new_positions[op.scan_id] = last_examined
        context.scan_exhausted[op.scan_id] = limit is None or examined < limit
        if op.index.primary:
            records = [deserialize_row(value) for _, value in pairs]
        else:
            by_key = _fused_dereference_map(table, pairs, context)
            records = _records_for_entries(pairs, by_key)
            # Entries the filter pruned would each have cost one dereference
            # in the unfused plan; charge them as requested-but-saved work so
            # operation counts stay identical.
            context.client.charge_saved_reads(examined - len(pairs))
        return [{op.relation_alias: record} for record in records]

    pairs = _fetch_range(namespace, start, end, limit, op.ascending, context)
    if pairs:
        # pairs are returned in scan order, so the last one is the position
        # to resume after (largest key for ascending scans, smallest for
        # descending ones).
        context.new_positions[op.scan_id] = pairs[-1][0]
    context.scan_exhausted[op.scan_id] = limit is None or len(pairs) < limit

    if op.index.primary:
        records = [deserialize_row(value) for _, value in pairs]
    elif _fused(context):
        by_key = _fused_dereference_map(table, pairs, context)
        records = _records_for_entries(pairs, by_key)
    else:
        records = _dereference(table, pairs, context)
    rows: List[InternalRow] = [{op.relation_alias: record} for record in records]
    if checks:
        rows = [r for r in rows if evaluate_all(checks, r, context)]
    return rows


def _records_for_entries(
    entries: KeyValuePairs, by_key: Dict[bytes, Optional[bytes]]
) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    for _, value in entries:
        payload = by_key.get(cached_pk_key(value))
        if payload is not None:
            records.append(deserialize_row(payload))
    return records


# ----------------------------------------------------------------------
# Bounded point lookups
# ----------------------------------------------------------------------
def _execute_index_lookup(
    op: P.PhysicalIndexLookup, context: ExecutionContext
) -> List[InternalRow]:
    table = context.catalog.table(op.table)
    # Expand the cartesian product of fixed values and the (single) IN list.
    key_value_lists: List[List[Any]] = []
    for part in op.key_parts:
        if isinstance(part, P.InListPart):
            key_value_lists.append(resolve_in_list(part, context))
        else:
            key_value_lists.append([resolve_key_part(part, context)])
    keys: List[bytes] = []
    _expand_keys(key_value_lists, 0, [], keys)
    values = _point_fetch(table.namespace, keys, context)
    return [
        {op.relation_alias: deserialize_row(value)}
        for value in values
        if value is not None
    ]


def _point_fetch(
    namespace: str, keys: List[bytes], context: ExecutionContext
) -> List[Optional[bytes]]:
    """Fetch point keys per the strategy; fused mode deduplicates first.

    Returns one value slot per *requested* key (duplicates share the fetched
    payload), and always charges one logical operation per requested key.
    """
    client = context.client
    if _fused(context):
        unique = list(dict.fromkeys(keys))
        if context.strategy is ExecutionStrategy.PARALLEL:
            fetched = client.multi_get(
                namespace, unique, parallel=True, logical_operations=len(keys)
            )
        else:
            fetched = [client.get(namespace, key) for key in unique]
            client.charge_saved_reads(len(keys) - len(unique))
        by_key = dict(zip(unique, fetched))
        return [by_key[key] for key in keys]
    if context.strategy is ExecutionStrategy.PARALLEL:
        return client.multi_get(namespace, keys, parallel=True)
    return [client.get(namespace, key) for key in keys]


def _expand_keys(
    value_lists: List[List[Any]], position: int, prefix: List[Any], out: List[bytes]
) -> None:
    if position == len(value_lists):
        out.append(encode_key(prefix))
        return
    for value in value_lists[position]:
        _expand_keys(value_lists, position + 1, prefix + [value], out)


def _execute_fk_join(
    op: P.PhysicalIndexFKJoin, context: ExecutionContext
) -> List[InternalRow]:
    table = context.catalog.table(op.table)
    child_rows = execute_plan(op.child, context)
    if not child_rows:
        return []
    keys: List[Optional[bytes]] = []
    for row in child_rows:
        values = [resolve_key_part(part, context, row) for part in op.key_parts]
        keys.append(None if any(v is None for v in values) else encode_key(values))

    lookup_keys = [key for key in keys if key is not None]
    fetched = _point_fetch(table.namespace, lookup_keys, context)
    by_key: Dict[bytes, Optional[bytes]] = dict(zip(lookup_keys, fetched))

    joined: List[InternalRow] = []
    for row, key in zip(child_rows, keys):
        if key is None:
            continue
        payload = by_key.get(key)
        if payload is None:
            continue
        merged = dict(row)
        merged[op.relation_alias] = deserialize_row(payload)
        joined.append(merged)
    return joined


# ----------------------------------------------------------------------
# Sorted index join
# ----------------------------------------------------------------------
def _bound_sort_keys(
    op: P.PhysicalSortedIndexJoin,
) -> List[Tuple[L.BoundColumn, bool]]:
    return [
        (
            L.BoundColumn(relation=op.relation_alias, table=op.table, column=name),
            ascending,
        )
        for name, ascending in op.sort_keys
    ]


def _sort_component_slice(
    op: P.PhysicalSortedIndexJoin, table: Table
) -> Optional[Tuple[int, int]]:
    """Key-component positions of the join's sort columns, if decodable.

    Both for a primary-index join (entry key = primary key) and for a
    secondary index built by the optimizer, the sort columns sit directly
    after the join-prefix columns, so their encoded values start at
    component ``len(op.prefix)``.  Returns ``None`` when the layout does
    not match (e.g. a tokenized component), which disables entry-order
    selection but not round fusion.
    """
    start = len(op.prefix)
    names = [name for name, _ in op.sort_keys]
    if not names:
        return (start, 0)
    if op.index.primary:
        layout = list(table.primary_key)
        if layout[start : start + len(names)] != names:
            return None
    else:
        definition = op.index.definition
        if definition is None:
            return None
        layout = [column.name for column in definition.columns]
        if layout[start : start + len(names)] != names:
            return None
        if any(c.tokenized for c in definition.columns[start : start + len(names)]):
            return None
    return (start, len(names))


def _execute_sorted_index_join(
    op: P.PhysicalSortedIndexJoin, context: ExecutionContext
) -> List[InternalRow]:
    table = context.catalog.table(op.table)
    namespace = (
        table.namespace if op.index.primary else index_namespace(op.index.definition)
    )
    child_rows = execute_plan(op.child, context)
    if not child_rows:
        return []

    ranges = []
    for row in child_rows:
        prefix_values = [resolve_key_part(part, context, row) for part in op.prefix]
        prefix_bytes = encode_key(prefix_values)
        ranges.append(
            (prefix_bytes, prefix_upper_bound(prefix_bytes), op.limit_hint, op.ascending)
        )

    strategy = context.strategy
    per_child_entries: List[KeyValuePairs] = []
    if strategy is ExecutionStrategy.LAZY:
        for start, end, limit, ascending in ranges:
            per_child_entries.append(
                _fetch_range(namespace, start, end, limit, ascending, context)
            )
    elif strategy is ExecutionStrategy.SIMPLE:
        per_child_entries = context.client.multi_get_range(
            namespace, ranges, parallel=False
        )
    else:
        per_child_entries = context.client.multi_get_range(
            namespace, ranges, parallel=True
        )

    stop = _resolve_count(op.stop_count, context) if op.stop_count is not None else None

    if _fused(context):
        return _fused_sorted_join(op, table, child_rows, per_child_entries, stop, context)

    # Unfused path: materialize every joined row (one dereference round per
    # child), then order and truncate locally.
    joined: List[InternalRow] = []
    for row, entries in zip(child_rows, per_child_entries):
        if op.index.primary:
            records = [deserialize_row(value) for _, value in entries]
        else:
            records = _dereference(table, entries, context)
        for record in records:
            merged = dict(row)
            merged[op.relation_alias] = record
            joined.append(merged)

    if op.sort_keys:
        keys = _bound_sort_keys(op)
        if stop is not None:
            # Top-K selection instead of a full sort of every joined row.
            return top_k_rows(joined, keys, stop)
        joined = sort_rows(joined, keys)
    if stop is not None:
        joined = joined[:stop]
    return joined


def _fused_sorted_join(
    op: P.PhysicalSortedIndexJoin,
    table: Table,
    child_rows: List[InternalRow],
    per_child_entries: List[KeyValuePairs],
    stop: Optional[int],
    context: ExecutionContext,
) -> List[InternalRow]:
    """Batch-at-a-time sorted index join.

    Orders the fetched index entries into the final output order *first*
    (decoding sort values from the entry keys, with the (child, entry)
    position as the stable tiebreaker — the exact order the unfused
    sort-then-truncate produces), then materializes base records lazily:
    primary-index payloads are deserialised only as needed, and secondary
    entries are dereferenced in one deduplicated bulk round per stop-sized
    chunk, stopping as soon as the stop is satisfied.
    """
    client = context.client
    total_entries = sum(len(entries) for entries in per_child_entries)
    if total_entries == 0:
        return []

    component_slice = _sort_component_slice(op, table)
    if component_slice is None:
        # Sort order not recoverable from the entry keys: still fuse the
        # dereference into one bulk round, then order locally.
        joined: List[InternalRow] = []
        by_key: Dict[bytes, Optional[bytes]] = {}
        if not op.index.primary:
            flat = [entry for entries in per_child_entries for entry in entries]
            by_key = _fused_dereference_map(table, flat, context)
        for child_index, entries in enumerate(per_child_entries):
            row = child_rows[child_index]
            for key, value in entries:
                if op.index.primary:
                    record = deserialize_row(value)
                else:
                    payload = by_key.get(cached_pk_key(value))
                    if payload is None:
                        continue
                    record = deserialize_row(payload)
                merged = dict(row)
                merged[op.relation_alias] = record
                joined.append(merged)
        if op.sort_keys:
            keys = _bound_sort_keys(op)
            if stop is not None:
                return top_k_rows(joined, keys, stop)
            joined = sort_rows(joined, keys)
        return joined[:stop] if stop is not None else joined

    start, components = component_slice
    ordered = _entries_in_output_order(
        op, per_child_entries, start, components
    )
    needed = stop if stop is not None else total_entries

    joined = []
    if op.index.primary:
        # The payloads already travelled with the range replies; ordering
        # first just avoids deserialising rows the stop would discard.
        for child_index, _, value in islice(ordered, needed):
            merged = dict(child_rows[child_index])
            merged[op.relation_alias] = deserialize_row(value)
            joined.append(merged)
        return joined

    # Secondary index: stop-aware chunked dereference.  Each chunk is one
    # deduplicated bulk round; entries never reached are charged as
    # requested-but-saved lookups so operation counts match the unfused plan.
    chunk_size = max(1, needed)
    by_key = {}
    examined = 0
    while len(joined) < needed:
        chunk = list(islice(ordered, chunk_size))
        if not chunk:
            break
        examined += len(chunk)
        chunk_keys = [cached_pk_key(value) for _, _, value in chunk]
        missing = [key for key in dict.fromkeys(chunk_keys) if key not in by_key]
        if missing:
            fetched = client.multi_get(
                table.namespace, missing, parallel=True,
                logical_operations=len(chunk),
            )
            client.stats.dereference_rounds += 1
            by_key.update(zip(missing, fetched))
        else:
            client.charge_saved_reads(len(chunk))
        for (child_index, _, _), key in zip(chunk, chunk_keys):
            payload = by_key.get(key)
            if payload is None:
                continue
            merged = dict(child_rows[child_index])
            merged[op.relation_alias] = deserialize_row(payload)
            joined.append(merged)
            if len(joined) >= needed:
                break
    client.charge_saved_reads(total_entries - examined)
    return joined


def _entries_in_output_order(
    op: P.PhysicalSortedIndexJoin,
    per_child_entries: List[KeyValuePairs],
    start: int,
    components: int,
) -> Iterator[Tuple[int, int, bytes]]:
    """Yield ``(child index, entry index, entry value)`` in final output order.

    With no sort keys the output order is simply child order then index
    order.  With sort keys, each entry's sort values are decoded from its
    key and a heap yields entries lazily in the exact order the unfused
    executor's stable sort would produce (position is the tiebreaker), so a
    stop consumes O(total + stop log total) work instead of a full sort.
    """
    if components == 0:
        for child_index, entries in enumerate(per_child_entries):
            for entry_index, (_, value) in enumerate(entries):
                yield (child_index, entry_index, value)
        return
    directions = [ascending for _, ascending in op.sort_keys]
    decorated = []
    for child_index, entries in enumerate(per_child_entries):
        for entry_index, (key, value) in enumerate(entries):
            sort_values = decode_key(key, count=start + components)[start:]
            decorated.append((
                ordering_key(sort_values, directions) + (child_index, entry_index),
                child_index,
                entry_index,
                value,
            ))
    heapq.heapify(decorated)
    while decorated:
        _, child_index, entry_index, value = heapq.heappop(decorated)
        yield (child_index, entry_index, value)


# ----------------------------------------------------------------------
# Local aggregation and projection
# ----------------------------------------------------------------------
def _try_count_fast_path(
    op: P.PhysicalLocalAggregate, context: ExecutionContext
) -> Optional[List[InternalRow]]:
    """Serve ``COUNT(*)`` over a clean index scan with one ``count_range``.

    Applies when the aggregate is COUNT(*)-only with no grouping and the
    scan carries no residual predicate: the count of index entries in the
    scan's byte range *is* the answer, so fetching (and for a secondary
    index, dereferencing and deserialising) every entry client-side is pure
    waste.  The count is capped at the scan's limit, matching what the
    fetch-and-count plan would have seen.
    """
    if context.strategy is ExecutionStrategy.LAZY:
        return None
    if context.paginated:
        # A paginated COUNT counts one page per execution through the
        # scan's cursor machinery; the fast path would answer the whole
        # range at once and break page-by-page equivalence.
        return None
    if op.group_by or not op.aggregates:
        return None
    if any(
        spec.function != "COUNT" or spec.argument is not None
        for spec in op.aggregates
    ):
        return None
    child = op.child
    if not isinstance(child, P.PhysicalIndexScan):
        return None
    if child.pushed_predicates:
        return None
    if context.resume_positions.get(child.scan_id) is not None:
        return None
    table = context.catalog.table(child.table)
    namespace = (
        table.namespace
        if child.index.primary
        else index_namespace(child.index.definition)
    )
    start, end, local_checks = _range_for_scan(child, context)
    if local_checks:
        return None
    limit = _scan_limit(child, context)
    count = context.client.count_range(namespace, start, end)
    if limit is not None:
        count = min(count, limit)
    context.scan_exhausted[child.scan_id] = True
    return [{"__agg__": {spec.output_name: count for spec in op.aggregates}}]


def _execute_aggregate(
    op: P.PhysicalLocalAggregate, context: ExecutionContext
) -> List[InternalRow]:
    fast = _try_count_fast_path(op, context)
    if fast is not None:
        return fast
    rows = execute_plan(op.child, context)
    groups: Dict[Tuple, List[InternalRow]] = {}
    for row in rows:
        key = tuple(column_value(row, column) for column in op.group_by)
        groups.setdefault(key, []).append(row)
    if not op.group_by and not groups:
        groups[()] = []

    output: List[InternalRow] = []
    for key, members in groups.items():
        result: InternalRow = {}
        for column, value in zip(op.group_by, key):
            result.setdefault(column.relation, {})[column.column] = value
        aggregate_values: Dict[str, Any] = {}
        for spec in op.aggregates:
            aggregate_values[spec.output_name] = _aggregate_value(spec, members)
        result["__agg__"] = aggregate_values
        output.append(result)
    return output


def _aggregate_value(spec: L.AggregateSpec, rows: List[InternalRow]) -> Any:
    if spec.function == "COUNT":
        if spec.argument is None:
            return len(rows)
        return sum(1 for row in rows if column_value(row, spec.argument) is not None)
    values = [
        column_value(row, spec.argument)
        for row in rows
        if spec.argument is not None and column_value(row, spec.argument) is not None
    ]
    if not values:
        return None
    if spec.function == "SUM":
        return sum(values)
    if spec.function == "AVG":
        return sum(values) / len(values)
    if spec.function == "MIN":
        return min(values)
    if spec.function == "MAX":
        return max(values)
    raise ExecutionError(f"unknown aggregate {spec.function!r}")


def _project_row(
    items: Tuple[L.ProjectionItem, ...], row: InternalRow
) -> Dict[str, Any]:
    output: Dict[str, Any] = {}

    def add(name: str, value: Any, qualifier: str) -> None:
        if name in output and output[name] != value:
            output[f"{qualifier}.{name}"] = value
        else:
            output[name] = value

    for item in items:
        if isinstance(item, L.StarItem):
            relations = (
                [item.relation] if item.relation is not None else
                [alias for alias in row if alias != "__agg__"]
            )
            for alias in relations:
                for column, value in row.get(alias, {}).items():
                    add(column, value, alias)
        elif isinstance(item, L.BoundColumn):
            add(item.column, column_value(row, item), item.relation)
        elif isinstance(item, L.AggregateSpec):
            output[item.output_name] = row.get("__agg__", {}).get(item.output_name)
        else:  # pragma: no cover
            raise ExecutionError(f"unsupported projection item {item!r}")
    return output
