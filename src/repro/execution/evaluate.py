"""Evaluation of analyzed predicates and key parts against in-flight tuples."""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Sequence, Union

from ..errors import ExecutionError
from ..plans import logical as L
from ..plans import physical as P
from ..sql.ast import Literal, Parameter
from ..storage.fulltext import query_token, tokenize
from .context import ExecutionContext, InternalRow


def resolve_value(
    value: Union[Literal, Parameter], context: ExecutionContext
) -> Any:
    """Resolve a literal or parameter to a concrete Python value."""
    if isinstance(value, Literal):
        return value.value
    if isinstance(value, Parameter):
        return context.parameter(value.name)
    raise ExecutionError(f"cannot resolve value {value!r}")


def resolve_key_part(
    part: P.KeyPart, context: ExecutionContext, row: Optional[InternalRow] = None
) -> Any:
    """Resolve a key component: literal, parameter, or child-tuple column."""
    if isinstance(part, (Literal, Parameter)):
        return resolve_value(part, context)
    if isinstance(part, L.BoundColumn):
        if row is None:
            raise ExecutionError(
                f"key part {part.render()} needs a child tuple but none was given"
            )
        return column_value(row, part)
    raise ExecutionError(f"cannot resolve key part {part!r}")


def resolve_in_list(
    part: P.InListPart, context: ExecutionContext
) -> List[Any]:
    """Resolve the value list of an IN predicate."""
    if isinstance(part.values, Parameter):
        values = context.parameter(part.values.name)
        if not isinstance(values, (list, tuple)):
            raise ExecutionError(
                f"parameter {part.values.name!r} must be bound to a list for IN"
            )
        return list(values)
    return [literal.value for literal in part.values]


def column_value(row: InternalRow, column: L.BoundColumn) -> Any:
    """Read a column of the internal tuple representation."""
    relation = row.get(column.relation)
    if relation is None:
        raise ExecutionError(
            f"tuple has no relation {column.relation!r}; present: {sorted(row)}"
        )
    return relation.get(column.column)


def evaluate_predicate(
    predicate: L.ValuePredicate, row: InternalRow, context: ExecutionContext
) -> bool:
    """Evaluate one analyzed value predicate against an internal tuple."""
    if isinstance(predicate, L.AttributeEquality):
        return column_value(row, predicate.column) == resolve_value(
            predicate.value, context
        )
    if isinstance(predicate, L.AttributeInequality):
        actual = column_value(row, predicate.column)
        expected = resolve_value(predicate.value, context)
        if actual is None:
            return False
        if predicate.op == "<":
            return actual < expected
        if predicate.op == "<=":
            return actual <= expected
        if predicate.op == ">":
            return actual > expected
        if predicate.op == ">=":
            return actual >= expected
        if predicate.op == "<>":
            return actual != expected
        raise ExecutionError(f"unknown operator {predicate.op!r}")
    if isinstance(predicate, L.TokenMatch):
        actual = column_value(row, predicate.column)
        needle = query_token(str(resolve_value(predicate.value, context)))
        if actual is None or not needle:
            return False
        return needle in tokenize(str(actual))
    if isinstance(predicate, L.AttributeIn):
        actual = column_value(row, predicate.column)
        if isinstance(predicate.values, Parameter):
            values = context.parameter(predicate.values.name)
        else:
            values = [literal.value for literal in predicate.values]
        return actual in list(values)
    raise ExecutionError(f"cannot evaluate predicate {predicate!r}")


def evaluate_all(
    predicates: Sequence[L.ValuePredicate], row: InternalRow, context: ExecutionContext
) -> bool:
    """Conjunction of predicates."""
    return all(evaluate_predicate(p, row, context) for p in predicates)


def sort_rows(
    rows: List[InternalRow],
    keys: Sequence[tuple],
) -> List[InternalRow]:
    """Stable multi-key sort of internal tuples.

    ``keys`` is a sequence of ``(BoundColumn, ascending)`` pairs.  The sort
    is applied from the least-significant key to the most significant one,
    relying on Python's stable sort; ``None`` values order before everything
    else on ascending keys (and after on descending ones).
    """
    ordered = list(rows)
    for column, ascending in reversed(list(keys)):
        ordered.sort(
            key=lambda row: _null_safe_key(column_value(row, column)),
            reverse=not ascending,
        )
    return ordered


def _null_safe_key(value: Any):
    # (0, None) sorts before (1, value) so NULLs group first on ascending sorts.
    return (0, "") if value is None else (1, value)


class Descending:
    """Order-reversing comparison wrapper for heap-based top-K selection.

    Wrapping a sort component in ``Descending`` makes "smaller" mean
    "larger underlying value", so a single ``heapq.nsmallest`` call can
    select the top K under per-column sort directions while leaving the
    positional tiebreaker ascending (which is what reproduces the stable
    ordering of :func:`sort_rows` exactly).
    """

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "Descending") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Descending) and other.key == self.key


def ordering_key(values: Sequence[Any], directions: Sequence[bool]):
    """Comparable tuple for values under per-column ascending flags."""
    return tuple(
        _null_safe_key(value) if ascending else Descending(_null_safe_key(value))
        for value, ascending in zip(values, directions)
    )


def top_k_rows(
    rows: List[InternalRow],
    keys: Sequence[tuple],
    count: int,
) -> List[InternalRow]:
    """Exactly ``sort_rows(rows, keys)[:count]`` via heap selection.

    A chain of stable sorts (what :func:`sort_rows` does) orders rows
    lexicographically by the sort columns with ties broken by original
    position; encoding that as one comparison key — per-column null-safe
    values, direction applied per column, position appended — lets
    ``heapq.nsmallest`` pick the K winners in O(n log k) instead of fully
    sorting every joined row first.
    """
    if count >= len(rows):
        return sort_rows(rows, keys)
    directions = [ascending for _, ascending in keys]

    def selection_key(indexed):
        position, row = indexed
        values = [column_value(row, column) for column, _ in keys]
        return ordering_key(values, directions) + (position,)

    selected = heapq.nsmallest(count, enumerate(rows), key=selection_key)
    return [row for _, row in selected]
