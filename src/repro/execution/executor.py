"""The query executor: runs compiled plans and measures their cost.

The executor binds parameters, resumes pagination cursors, runs the physical
plan under a chosen :class:`ExecutionStrategy`, and reports both the rows
and the simulated cost of the execution (latency, key/value operations,
round trips) — the quantities all of the paper's experiments are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import BoundViolationError, CursorError, ExecutionError
from ..kvstore.client import StorageClient
from ..obs.audit import BoundAuditor
from ..optimizer.optimizer import OptimizedQuery
from ..plans import physical as P
from ..plans.printer import plan_to_string
from ..schema.catalog import Catalog
from .context import ExecutionContext, ExecutionStrategy, QueryResult
from .cursor import PaginationCursor, maybe_deserialize, query_fingerprint
from .operators import execute_output


@dataclass
class ExecutorConfig:
    """Executor-wide settings."""

    strategy: ExecutionStrategy = ExecutionStrategy.PARALLEL
    #: When true, executing a query that exceeds its static operation bound
    #: raises instead of silently continuing.  Tests enable this; benchmark
    #: harnesses keep it on as a safety net.
    enforce_bounds: bool = True
    #: Batch-at-a-time round fusion (see ExecutionContext.fused).  On by
    #: default; the operator-fusion benchmark disables it for its baseline
    #: arm.
    fused: bool = True
    #: Runtime bound auditor.  When set, every finished query is routed
    #: through it (structured events, span annotation, strict/serving
    #: policy); when ``None`` the executor falls back to its inline check.
    auditor: Optional[BoundAuditor] = None


class QueryExecutor:
    """Executes :class:`OptimizedQuery` plans against the key/value store."""

    def __init__(
        self,
        client: StorageClient,
        catalog: Catalog,
        strategy: ExecutionStrategy = ExecutionStrategy.PARALLEL,
        enforce_bounds: bool = True,
        fused: bool = True,
        auditor: Optional[BoundAuditor] = None,
    ):
        self.client = client
        self.catalog = catalog
        self.config = ExecutorConfig(
            strategy=strategy,
            enforce_bounds=enforce_bounds,
            fused=fused,
            auditor=auditor,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: OptimizedQuery,
        parameters: Optional[Dict[str, Any]] = None,
        cursor: Optional[object] = None,
        strategy: Optional[ExecutionStrategy] = None,
    ) -> QueryResult:
        """Execute a compiled query (or the next page of a paginated one)."""
        strategy = strategy or self.config.strategy
        fingerprint = self._fingerprint(query)
        resume_positions: Dict[str, bytes] = {}
        previous = maybe_deserialize(cursor)
        if previous is not None:
            if not query.is_paginated:
                raise CursorError("a cursor was supplied for a non-paginated query")
            previous.check_matches(fingerprint)
            resume_positions = dict(previous.positions)

        context = ExecutionContext(
            client=self.client,
            catalog=self.catalog,
            parameters=dict(parameters or {}),
            strategy=strategy,
            paginated=query.is_paginated,
            resume_positions=resume_positions,
            fused=self.config.fused,
        )

        tracer = self.client.tracer
        context.tracer = tracer

        stats_before = self.client.stats.snapshot()
        time_before = self.client.clock.now
        root_span = None
        if tracer is not None:
            root_span = tracer.start_span(
                "query", "query", sql=query.sql, strategy=strategy.value
            )
        try:
            rows = execute_output(query.physical_plan, context)
        except Exception as exc:
            # Errored executions never reach the auditor, so the flight
            # recorder would miss exactly the traces it exists to keep —
            # close the root span, mark it, and offer it directly.  Each
            # path ends the span exactly once: end_span on an already
            # closed span drains the whole stack.
            if root_span is not None:
                tracer.end_span(root_span)
                root_span.attributes["error"] = type(exc).__name__
                root_span.attributes["latency_seconds"] = (
                    self.client.clock.now - time_before
                )
                auditor = self.config.auditor
                recorder = (
                    getattr(auditor, "recorder", None)
                    if auditor is not None
                    else None
                )
                if recorder is not None:
                    recorder.observe_error(query, root_span)
            raise
        if root_span is not None:
            tracer.end_span(root_span)
        stats_after = self.client.stats.snapshot()
        delta = stats_after.delta(stats_before)
        latency = self.client.clock.now - time_before
        if root_span is not None:
            attributes = root_span.attributes
            attributes["operations"] = delta.operations
            attributes["rpcs"] = delta.rpcs
            attributes["latency_seconds"] = latency
            attributes["rows"] = len(rows)
            if query.bound is not None:
                attributes["bound"] = query.bound.max_operations

        # The static bound assumes the executor uses the compiler's limit
        # hints to batch requests; the Lazy baseline deliberately ignores
        # them (one request per tuple), so it is exempt from enforcement.
        auditor = self.config.auditor
        if strategy is ExecutionStrategy.LAZY:
            pass
        elif auditor is not None:
            auditor.observe_query(
                query,
                delta.operations,
                latency,
                span=root_span,
                enforce=self.config.enforce_bounds,
            )
        elif (
            self.config.enforce_bounds
            and query.bound is not None
            and delta.operations > query.bound.max_operations
        ):
            raise BoundViolationError(
                delta.operations, query.bound.max_operations, query.sql
            )

        next_cursor: Optional[str] = None
        has_more = False
        if query.is_paginated:
            positions = dict(resume_positions)
            positions.update(context.new_positions)
            exhausted = all(context.scan_exhausted.values()) if context.scan_exhausted else True
            has_more = not exhausted
            next_cursor = PaginationCursor(
                query_fingerprint=fingerprint,
                positions=positions,
                exhausted=exhausted,
            ).serialize()

        return QueryResult(
            rows=rows,
            latency_seconds=latency,
            operations=delta.operations,
            rpcs=delta.rpcs,
            cursor=next_cursor,
            has_more=has_more,
        )

    def execute_all_pages(
        self,
        query: OptimizedQuery,
        parameters: Optional[Dict[str, Any]] = None,
        max_pages: int = 1000,
        strategy: Optional[ExecutionStrategy] = None,
    ):
        """Iterate every page of a paginated query (test/tooling helper)."""
        if not query.is_paginated:
            yield self.execute(query, parameters, strategy=strategy)
            return
        cursor: Optional[str] = None
        for _ in range(max_pages):
            result = self.execute(query, parameters, cursor=cursor, strategy=strategy)
            yield result
            if not result.has_more:
                return
            cursor = result.cursor
        raise ExecutionError(f"pagination did not terminate within {max_pages} pages")

    def execute_physical_plan(
        self,
        plan: P.PhysicalOperator,
        parameters: Optional[Dict[str, Any]] = None,
        strategy: Optional[ExecutionStrategy] = None,
    ) -> QueryResult:
        """Execute a bare physical plan (no cursor or bound handling).

        Used by the cost-based-optimizer baseline of Section 8.3, whose plans
        are deliberately *not* scale-independent and therefore have no static
        bound to enforce.
        """
        context = ExecutionContext(
            client=self.client,
            catalog=self.catalog,
            parameters=dict(parameters or {}),
            strategy=strategy or self.config.strategy,
            fused=self.config.fused,
            tracer=self.client.tracer,
        )
        stats_before = self.client.stats.snapshot()
        time_before = self.client.clock.now
        rows = execute_output(plan, context)
        delta = self.client.stats.snapshot().delta(stats_before)
        return QueryResult(
            rows=rows,
            latency_seconds=self.client.clock.now - time_before,
            operations=delta.operations,
            rpcs=delta.rpcs,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _fingerprint(query: OptimizedQuery) -> str:
        return query_fingerprint(query.sql, plan_to_string(query.physical_plan))

    @staticmethod
    def driving_scans(query: OptimizedQuery) -> list:
        """The index scans of a plan (diagnostics for pagination)."""
        return P.find_scans(query.physical_plan)
