"""Execution engine: strategies, cursors, operator interpreter, executor."""

from .context import ExecutionContext, ExecutionStrategy, QueryResult
from .cursor import PaginationCursor, query_fingerprint
from .executor import ExecutorConfig, QueryExecutor
from .operators import execute_output, execute_plan

__all__ = [
    "ExecutionContext",
    "ExecutionStrategy",
    "ExecutorConfig",
    "PaginationCursor",
    "QueryExecutor",
    "QueryResult",
    "execute_output",
    "execute_plan",
    "query_fingerprint",
]
