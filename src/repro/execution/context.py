"""Execution strategies, context, and result types.

The PIQL execution engine supports three strategies (Section 8.5 /
Figure 12):

* **LAZY** — one tuple per key/value request, requests issued sequentially;
  this is how a traditional single-node iterator would behave.
* **SIMPLE** — uses the compiler's limit hints to fetch data in batches, but
  waits for each request before issuing the next.
* **PARALLEL** — uses limit hints *and* issues all of an operator's requests
  against the key/value store in parallel.

The strategy only changes how many round trips are paid and whether their
latencies add or overlap; the rows produced are identical, which the test
suite checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..kvstore.client import StorageClient
from ..schema.catalog import Catalog


class ExecutionStrategy(enum.Enum):
    """How remote operators issue their key/value store requests."""

    LAZY = "lazy"
    SIMPLE = "simple"
    PARALLEL = "parallel"


#: Internal tuple representation: relation alias -> column -> value.
InternalRow = Dict[str, Dict[str, Any]]


@dataclass
class ExecutionContext:
    """Everything an operator needs while executing one query."""

    client: StorageClient
    catalog: Catalog
    parameters: Dict[str, Any] = field(default_factory=dict)
    strategy: ExecutionStrategy = ExecutionStrategy.PARALLEL
    #: Batch-at-a-time execution: fuse dereference rounds across an
    #: operator's inputs, stop dereferencing once a data stop is satisfied,
    #: and push index-only predicates below the base-record fetch.  Rows,
    #: operation counts, and static bounds are identical either way — the
    #: flag exists so paired benchmarks can measure exactly what fusion
    #: buys.  LAZY execution ignores it (one request per tuple, always).
    fused: bool = True
    #: Whether this execution is one page of a PAGINATE query.  Fast paths
    #: that would bypass the scan's cursor bookkeeping (e.g. the COUNT
    #: fast path) must stand down for paginated executions.
    paginated: bool = False
    #: Scan positions to resume from (PAGINATE cursors): scan_id -> last key.
    resume_positions: Dict[str, bytes] = field(default_factory=dict)
    #: Scan positions observed during this execution (for the next cursor).
    new_positions: Dict[str, bytes] = field(default_factory=dict)
    #: Whether each scan ran out of data (no further pages).
    scan_exhausted: Dict[str, bool] = field(default_factory=dict)
    #: The client's tracer while tracing is enabled (``repro.obs.trace.Tracer``),
    #: else ``None``.  Operators open one ``operator`` span per plan node.
    tracer: Optional[Any] = None
    #: The client's live metric-counter mapping, cached here while tracing
    #: so operator spans can read operation deltas without re-resolving the
    #: ``client.stats.metrics`` chain per plan node.
    counters: Optional[Dict[str, float]] = None

    def parameter(self, name: str) -> Any:
        if name not in self.parameters:
            raise KeyError(
                f"query parameter {name!r} was not bound; "
                f"bound parameters: {sorted(self.parameters)}"
            )
        return self.parameters[name]


@dataclass
class QueryResult:
    """The outcome of executing one query (or one page of a paginated query)."""

    rows: List[Dict[str, Any]]
    latency_seconds: float
    operations: int
    rpcs: int
    cursor: Optional[str] = None
    has_more: bool = False

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1000.0

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)
