"""Serialisable client-side pagination cursors (Section 4.1).

PIQL implements ``PAGINATE`` with client-side cursors that can be serialised
and shipped to the user together with a page of results; any application
server can later deserialise the cursor and resume execution, preserving the
stateless application tier.  The state is tiny: the last key returned by
each uncompleted index scan of the query.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import CursorError


@dataclass
class PaginationCursor:
    """Resumption state of a paginated query."""

    query_fingerprint: str
    positions: Dict[str, bytes] = field(default_factory=dict)
    exhausted: bool = False

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def serialize(self) -> str:
        """Encode the cursor as an opaque URL-safe string."""
        payload = {
            "fingerprint": self.query_fingerprint,
            "positions": {k: v.hex() for k, v in self.positions.items()},
            "exhausted": self.exhausted,
        }
        raw = json.dumps(payload, sort_keys=True).encode("utf-8")
        return base64.urlsafe_b64encode(raw).decode("ascii")

    @classmethod
    def deserialize(cls, token: str) -> "PaginationCursor":
        """Decode a cursor previously produced by :meth:`serialize`."""
        try:
            raw = base64.urlsafe_b64decode(token.encode("ascii"))
            payload = json.loads(raw.decode("utf-8"))
            positions = {
                k: bytes.fromhex(v) for k, v in payload["positions"].items()
            }
            return cls(
                query_fingerprint=payload["fingerprint"],
                positions=positions,
                exhausted=bool(payload["exhausted"]),
            )
        except (ValueError, KeyError, TypeError) as error:
            raise CursorError(f"invalid pagination cursor: {error}") from error

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_matches(self, fingerprint: str) -> None:
        """Ensure the cursor belongs to the query it is being used with."""
        if self.query_fingerprint != fingerprint:
            raise CursorError(
                "pagination cursor was created by a different query"
            )


def query_fingerprint(sql: str, plan_description: str) -> str:
    """A stable fingerprint binding a cursor to one compiled query."""
    import hashlib

    digest = hashlib.sha256()
    digest.update(sql.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(plan_description.encode("utf-8"))
    return digest.hexdigest()[:16]


def maybe_deserialize(cursor: Optional[object]) -> Optional[PaginationCursor]:
    """Accept a cursor object, a serialised token, or ``None``."""
    if cursor is None:
        return None
    if isinstance(cursor, PaginationCursor):
        return cursor
    if isinstance(cursor, str):
        return PaginationCursor.deserialize(cursor)
    raise CursorError(f"unsupported cursor value: {cursor!r}")
