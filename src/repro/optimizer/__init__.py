"""The scale-independent PIQL optimizer and its baselines/assistant."""

from .assistant import PerformanceInsightAssistant, QueryDiagnosis
from .cost_based import CostBasedOptimizer, CostedPlan, TableStatistics
from .optimizer import OptimizedQuery, PiqlOptimizer
from .phase1 import AccessInfo, PreparedPlan, StopOperatorPrepare
from .phase2 import GeneratedPlan, PlanGenerator

__all__ = [
    "AccessInfo",
    "CostBasedOptimizer",
    "CostedPlan",
    "GeneratedPlan",
    "OptimizedQuery",
    "PerformanceInsightAssistant",
    "PiqlOptimizer",
    "PlanGenerator",
    "PreparedPlan",
    "QueryDiagnosis",
    "StopOperatorPrepare",
    "TableStatistics",
]
