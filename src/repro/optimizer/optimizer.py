"""The PIQL optimizer facade.

``PiqlOptimizer.optimize`` runs the whole pipeline of Section 5:

1. parse (if given SQL text) and analyze the query against the catalog,
2. Phase I — linear join ordering, predicate push-down, stop / data-stop
   insertion and push-down (:mod:`repro.optimizer.phase1`),
3. Phase II — physical operator selection with the bounded-remote-operator
   invariant (:mod:`repro.optimizer.phase2`),
4. static operation-bound computation (:mod:`repro.plans.bounds`), and
5. index selection — the list of secondary indexes the plan requires
   (Section 5.3), which the engine creates automatically.

The result is an :class:`OptimizedQuery`, which carries everything the
execution engine and the SLO prediction model need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..errors import NotScaleIndependentError, PlanningError
from ..plans import logical as L
from ..plans import physical as P
from ..plans.bounds import PlanBound, compute_bound
from ..plans.builder import LogicalPlanBuilder
from ..plans.printer import plan_to_string
from ..schema.catalog import Catalog
from ..schema.ddl import IndexDefinition
from ..sql import ast
from ..sql.parser import parse_select
from ..views.rewrite import ViewRewriter
from .phase1 import PreparedPlan, StopOperatorPrepare
from .phase2 import GeneratedPlan, PlanGenerator


@dataclass
class OptimizedQuery:
    """A compiled, scale-independent PIQL query."""

    sql: str
    statement: ast.SelectStatement
    spec: L.QuerySpec
    prepared: PreparedPlan
    physical_plan: P.PhysicalOperator
    required_indexes: List[IndexDefinition] = field(default_factory=list)
    bound: Optional[PlanBound] = None
    #: Name of the materialized view this query was rewritten against, when
    #: the precomputation phase rescued an otherwise-rejected aggregate.
    view_used: Optional[str] = None

    @property
    def logical_plan(self) -> L.LogicalOperator:
        """The prepared (pushed-down) logical plan, Figure 3(c)."""
        return self.prepared.logical_plan

    @property
    def operation_bound(self) -> int:
        """Maximum number of key/value store operations per execution."""
        if self.bound is None:
            raise PlanningError("query has no computed bound")
        return self.bound.max_operations

    @property
    def is_paginated(self) -> bool:
        return self.spec.stop is not None and self.spec.stop.paginate

    def parameters(self) -> List[ast.Parameter]:
        """Parameters that must be bound at execution time."""
        return self.statement.parameters()

    def describe(self) -> str:
        """Multi-line description: logical plan, physical plan, bounds, indexes."""
        lines = [
            "-- logical plan --",
            plan_to_string(self.logical_plan),
            "-- physical plan --",
            plan_to_string(self.physical_plan),
        ]
        if self.bound is not None:
            lines.append(
                f"-- bound: {self.bound.max_operations} key/value operations, "
                f"{self.bound.max_tuples} tuples --"
            )
        if self.required_indexes:
            lines.append("-- required indexes --")
            for index in self.required_indexes:
                lines.append("  " + index.describe())
        return "\n".join(lines)


class PiqlOptimizer:
    """Compiles PIQL SELECT statements into bounded physical plans."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._builder = LogicalPlanBuilder(catalog)
        self._phase1 = StopOperatorPrepare(catalog)
        self._phase2 = PlanGenerator(catalog)
        self._rewriter = ViewRewriter(catalog)

    def optimize(
        self, query: Union[str, ast.SelectStatement]
    ) -> OptimizedQuery:
        """Compile ``query`` (SQL text or a parsed statement) into a plan.

        Queries the normal Phase I/II pipeline rejects — and queries ordered
        by an aggregate output, which no bounded base-table plan can satisfy
        — get one more chance: the precomputation phase matches them against
        the catalog's materialized views and, on a hit, compiles a bounded
        scan of the view instead (the paper's Section 4.3 escape hatch).

        Raises :class:`~repro.errors.NotScaleIndependentError` when no
        bounded plan exists; the exception carries suggestions for the
        Performance Insight Assistant.
        """
        if isinstance(query, str):
            sql = query
            statement = parse_select(query)
        else:
            sql = ""
            statement = query
        spec = self._builder.build_spec(statement)

        rejection: Optional[NotScaleIndependentError] = None
        if not spec.aggregate_sort_keys:
            try:
                return self._compile(sql, statement, spec, spec)
            except NotScaleIndependentError as error:
                rejection = error

        match = self._rewriter.rewrite(statement, spec)
        if match is not None:
            rewritten_statement, view = match
            rewritten_spec = self._builder.build_spec(rewritten_statement)
            try:
                compiled = self._compile(
                    sql, statement, spec, rewritten_spec
                )
                compiled.view_used = view.name
                return compiled
            except NotScaleIndependentError:
                pass  # the rewrite itself was unbounded; fall through

        if rejection is not None:
            raise rejection
        ordering = ", ".join(
            f"{name} {'ASC' if ascending else 'DESC'}"
            for name, ascending in spec.aggregate_sort_keys
        )
        raise NotScaleIndependentError(
            f"ordering by the aggregate output(s) {ordering} requires ranking "
            "every group, which cannot be bounded by any base-table plan "
            "(Section 4.3); precompute it instead",
            relation=spec.relations[0].alias,
            suggestions=[
                "CREATE MATERIALIZED VIEW ... GROUP BY the query's grouping "
                f"and partition columns ORDER BY {ordering} LIMIT k",
            ],
        )

    def _compile(
        self,
        sql: str,
        statement: ast.SelectStatement,
        spec: L.QuerySpec,
        plan_spec: L.QuerySpec,
    ) -> OptimizedQuery:
        """Run Phase I/II + bounds over ``plan_spec`` (possibly rewritten)."""
        prepared = self._phase1.prepare(plan_spec)
        generated: GeneratedPlan = self._phase2.generate(prepared)
        bound = compute_bound(generated.physical_plan)
        return OptimizedQuery(
            sql=sql,
            statement=statement,
            spec=spec,
            prepared=prepared,
            physical_plan=generated.physical_plan,
            required_indexes=generated.required_indexes,
            bound=bound,
        )

    def initial_logical_plan(
        self, query: Union[str, ast.SelectStatement]
    ) -> L.LogicalOperator:
        """The naive pre-optimization logical plan (Figure 3(b)); for diagnostics."""
        statement = parse_select(query) if isinstance(query, str) else query
        spec = self._builder.build_spec(statement)
        return self._builder.build_initial_plan(spec)

    def prepared_logical_plan(
        self, query: Union[str, ast.SelectStatement]
    ) -> L.LogicalOperator:
        """The Phase-I logical plan with stops pushed down (Figure 3(c))."""
        statement = parse_select(query) if isinstance(query, str) else query
        spec = self._builder.build_spec(statement)
        return self._phase1.prepare(spec).logical_plan
