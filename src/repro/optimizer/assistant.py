"""The Performance Insight Assistant (Section 6.4).

The assistant has two jobs:

1. **Explain rejected queries.**  When the optimizer cannot produce a
   bounded plan it raises :class:`NotScaleIndependentError`; the assistant
   renders the logical plan, highlights the problematic relation, and lists
   the attributes on which a ``CARDINALITY LIMIT`` would let optimization
   proceed.
2. **Recommend cardinality limits.**  Given a trained SLO prediction model
   and an SLO, it evaluates candidate cardinality settings (or pairs of
   settings, as in the paper's Figure 6 heatmap) and reports which of them
   keep the predicted 99th-percentile latency within the objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import NotScaleIndependentError
from ..plans.printer import plan_to_string
from ..schema.catalog import Catalog
from ..sql import ast
from ..sql.parser import parse_select
from .optimizer import OptimizedQuery, PiqlOptimizer


@dataclass
class QueryDiagnosis:
    """The assistant's report for one query."""

    sql: str
    scale_independent: bool
    message: str
    logical_plan: Optional[str] = None
    problem_relation: Optional[str] = None
    candidate_attributes: Sequence[str] = ()
    suggestions: Sequence[str] = ()
    optimized: Optional[OptimizedQuery] = None

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines: List[str] = []
        if self.scale_independent:
            lines.append("query is scale-independent")
            lines.append(self.message)
        else:
            lines.append("query is NOT scale-independent")
            lines.append(self.message)
            if self.problem_relation:
                lines.append(f"problem relation: {self.problem_relation}")
            if self.candidate_attributes:
                lines.append(
                    "candidate CARDINALITY LIMIT attributes: "
                    + ", ".join(self.candidate_attributes)
                )
            for suggestion in self.suggestions:
                lines.append("suggestion: " + suggestion)
        if self.logical_plan:
            lines.append("logical plan:")
            lines.append(self.logical_plan)
        return "\n".join(lines)


class PerformanceInsightAssistant:
    """Developer-facing feedback on scale independence and SLO compliance."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.optimizer = PiqlOptimizer(catalog)

    # ------------------------------------------------------------------
    # Diagnosing queries
    # ------------------------------------------------------------------
    def diagnose(self, query: Union[str, ast.SelectStatement]) -> QueryDiagnosis:
        """Try to compile ``query`` and explain the outcome either way."""
        sql = query if isinstance(query, str) else ""
        statement = parse_select(query) if isinstance(query, str) else query
        logical = None
        try:
            logical = plan_to_string(self.optimizer.prepared_logical_plan(statement))
        except NotScaleIndependentError:
            # Even Phase I can fail (Cartesian products); fall back to the
            # naive plan for display.
            try:
                logical = plan_to_string(self.optimizer.initial_logical_plan(statement))
            except Exception:  # pragma: no cover - display best effort only
                logical = None
        try:
            optimized = self.optimizer.optimize(statement)
        except NotScaleIndependentError as error:
            return QueryDiagnosis(
                sql=sql,
                scale_independent=False,
                message=str(error),
                logical_plan=logical,
                problem_relation=error.relation,
                candidate_attributes=error.candidate_attributes,
                suggestions=error.suggestions,
            )
        message = (
            f"bounded plan found: at most {optimized.operation_bound} key/value "
            f"operations and {optimized.bound.max_tuples} intermediate tuples"
        )
        return QueryDiagnosis(
            sql=sql,
            scale_independent=True,
            message=message,
            logical_plan=logical,
            optimized=optimized,
        )

    # ------------------------------------------------------------------
    # Cardinality recommendations
    # ------------------------------------------------------------------
    def evaluate_cardinalities(
        self,
        predict_quantile: Callable[..., float],
        candidates: Dict[str, Sequence[int]],
        slo_latency_seconds: float,
    ) -> List[Tuple[Dict[str, int], float, bool]]:
        """Evaluate every combination of candidate cardinality settings.

        ``predict_quantile`` is called with one keyword argument per
        parameter name (e.g. ``subscriptions=200, per_page=20``) and must
        return the predicted high-quantile latency in seconds — typically a
        closure around the trained
        :class:`~repro.prediction.model.QueryLatencyModel`.

        Returns ``(setting, predicted_latency, meets_slo)`` tuples, one per
        combination, in deterministic (sorted) order.
        """
        names = sorted(candidates)
        results: List[Tuple[Dict[str, int], float, bool]] = []

        def expand(index: int, chosen: Dict[str, int]) -> None:
            if index == len(names):
                latency = predict_quantile(**chosen)
                results.append((dict(chosen), latency, latency <= slo_latency_seconds))
                return
            name = names[index]
            for value in candidates[name]:
                chosen[name] = value
                expand(index + 1, chosen)
            del chosen[name]

        expand(0, {})
        return results

    def recommend_max_cardinality(
        self,
        predict_quantile: Callable[[int], float],
        slo_latency_seconds: float,
        candidates: Sequence[int],
    ) -> Optional[int]:
        """Largest candidate cardinality whose predicted latency meets the SLO.

        This is the assistant behaviour described at the end of Section 6.4:
        "suggest values that maximize functionality while still meeting
        performance requirements".  Returns ``None`` if no candidate meets
        the SLO.
        """
        acceptable = [
            c for c in candidates if predict_quantile(c) <= slo_latency_seconds
        ]
        return max(acceptable) if acceptable else None
