"""Phase II of the PIQL optimizer: physical operator selection (Algorithm 2).

Phase II maps the prepared logical plan onto PIQL's physical operators.  The
invariant it enforces is the one that makes query plans scale-independent:
**every remote operator must carry an explicit bound** — either a stop
operator (LIMIT / PAGINATE), a data-stop derived from a schema constraint,
or a primary-key / foreign-key uniqueness guarantee.  If any plan section
cannot be bounded, the plan is rejected with
:class:`~repro.errors.NotScaleIndependentError` describing the unbounded
relation and candidate ``CARDINALITY LIMIT`` columns (this feeds the
Performance Insight Assistant).

The mapping rules follow Figure 4 of the paper:

* IndexScan       — predicates describing a contiguous index section,
* IndexFKJoin     — a join whose predicates cover the target's primary key,
* SortedIndexJoin — a join with a per-join-key limit hint, optionally
                    satisfying a sort through a composite index,
* IndexLookup     — a bounded set of random primary-key reads (the access
                    path of the subscriber-intersection query, Section 8.3),

plus local selection / sort / stop / aggregation / projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NotScaleIndependentError, PlanningError
from ..plans import logical as L
from ..plans import physical as P
from ..schema.catalog import Catalog
from ..schema.ddl import IndexColumn, IndexDefinition, Table
from ..sql.ast import Parameter
from .phase1 import AccessInfo, PreparedPlan


@dataclass
class GeneratedPlan:
    """Output of Phase II."""

    physical_plan: P.PhysicalOperator
    required_indexes: List[IndexDefinition] = field(default_factory=list)


class PlanGenerator:
    """Generates a bounded physical plan from a prepared logical plan."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def generate(self, prepared: PreparedPlan) -> GeneratedPlan:
        spec = prepared.spec
        required_indexes: List[IndexDefinition] = []
        scan_counter = [0]

        stop_count = self._static_stop_count(spec)
        sort_pending = list(spec.sort_keys)
        sort_consumed_by_driving = False

        driving_alias = prepared.join_order[0]
        plan, sort_consumed_by_driving = self._build_driving(
            prepared.access_for(driving_alias),
            spec,
            stop_count=stop_count,
            is_only_relation=len(prepared.join_order) == 1,
            required_indexes=required_indexes,
            scan_counter=scan_counter,
        )

        placed = [driving_alias]
        for alias in prepared.join_order[1:]:
            is_last = alias == prepared.join_order[-1]
            plan, consumed_sort = self._build_join(
                plan,
                prepared.access_for(alias),
                spec,
                placed=placed,
                is_last=is_last,
                stop_count=stop_count,
                sort_pending=sort_pending,
                required_indexes=required_indexes,
            )
            if consumed_sort:
                sort_pending = []
                sort_consumed_by_driving = False
            elif sort_consumed_by_driving and not isinstance(
                plan, (P.PhysicalIndexFKJoin, P.PhysicalLocalSelection)
            ):
                # A multiplying join below the sort invalidates the ordering
                # produced by the driving scan; fall back to a local sort.
                sort_consumed_by_driving = False
            placed.append(alias)

        if sort_consumed_by_driving:
            sort_pending = []

        # Top of the plan: aggregation, residual sort, stop, projection.
        if spec.aggregates or spec.group_by:
            plan = P.PhysicalLocalAggregate(
                child=plan, group_by=spec.group_by, aggregates=spec.aggregates
            )
        if sort_pending:
            plan = P.PhysicalLocalSort(child=plan, keys=tuple(sort_pending))
        if spec.stop is not None:
            plan = P.PhysicalLocalStop(
                child=plan, count=spec.stop.count, paginate=spec.stop.paginate
            )
        plan = P.PhysicalLocalProjection(child=plan, items=spec.projection)
        return GeneratedPlan(physical_plan=plan, required_indexes=required_indexes)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _static_stop_count(spec: L.QuerySpec) -> Optional[int]:
        if spec.stop is None:
            return None
        count = spec.stop.count
        if isinstance(count, int):
            return count
        if isinstance(count, Parameter) and count.max_cardinality is not None:
            return count.max_cardinality
        return None

    @staticmethod
    def _split_predicates(info: AccessInfo):
        predicates = info.all_predicates()
        equalities = [p for p in predicates if isinstance(p, L.AttributeEquality)]
        tokens = [p for p in predicates if isinstance(p, L.TokenMatch)]
        ins = [p for p in predicates if isinstance(p, L.AttributeIn)]
        inequalities = [p for p in predicates if isinstance(p, L.AttributeInequality)]
        return equalities, tokens, ins, inequalities

    def _sort_keys_on(self, spec: L.QuerySpec, alias: str) -> bool:
        return bool(spec.sort_keys) and all(
            column.relation == alias for column, _ in spec.sort_keys
        )

    @staticmethod
    def _sort_direction(spec: L.QuerySpec) -> Optional[bool]:
        """The common scan direction of the sort, or None for mixed directions."""
        directions = {asc for _, asc in spec.sort_keys}
        if len(directions) == 1:
            return directions.pop()
        return None

    def _find_or_create_index(
        self,
        table: Table,
        columns: Sequence[IndexColumn],
        required_indexes: List[IndexDefinition],
    ) -> IndexDefinition:
        """Reuse an existing index with the right leading columns or create one."""
        existing = self.catalog.find_index(table.name, list(columns))
        if existing is not None:
            # An index that only exists because automatic index selection
            # created it earlier is still one this plan *requires* beyond the
            # declared schema — report it, so ``required_indexes`` does not
            # depend on compilation order (Table 1's "additional indexes").
            if (
                self.catalog.is_auto_created(existing.name)
                and existing not in required_indexes
            ):
                required_indexes.append(existing)
            return existing
        for candidate in required_indexes:
            if candidate.table == table.name and list(candidate.columns[: len(columns)]) == list(columns):
                return candidate
        full_columns = list(columns) + [
            IndexColumn(pk)
            for pk in table.primary_key
            if pk not in {c.name for c in columns if not c.tokenized}
        ]
        index = IndexDefinition(
            name=self.catalog.index_name(table.name, full_columns),
            table=table.name,
            columns=tuple(full_columns),
        )
        required_indexes.append(index)
        return index

    @staticmethod
    def _split_pushdown(
        index: P.IndexChoice,
        table: Table,
        alias: str,
        predicates: Sequence[L.ValuePredicate],
    ) -> Tuple[List[L.ValuePredicate], List[L.ValuePredicate]]:
        """Split residual predicates into (pushable, kept-local).

        A predicate can be pushed below the base-record fetch when the
        executor can evaluate it on the index entry alone; the rules live
        in :func:`repro.plans.physical.pushable_predicate_columns` /
        :func:`repro.plans.physical.entry_decodable_columns`, shared with
        the executor's filter builder so the two can never drift.  Pushing
        is an execution detail — operation counts and static bounds are
        charged per examined entry either way.
        """
        decodable = P.entry_decodable_columns(index, table)
        pushed: List[L.ValuePredicate] = []
        remaining: List[L.ValuePredicate] = []
        for predicate in predicates:
            columns = P.pushable_predicate_columns(predicate, alias, index.primary)
            ok = columns is not None and (
                decodable is None or all(c in decodable for c in columns)
            )
            (pushed if ok else remaining).append(predicate)
        return pushed, remaining

    @staticmethod
    def _is_primary_prefix(table: Table, columns: Sequence[str]) -> bool:
        """True if ``columns`` (as a set) equal the first len(columns) pk columns."""
        prefix = list(table.primary_key[: len(columns)])
        return sorted(prefix) == sorted(columns)

    @staticmethod
    def _pk_follows(table: Table, prefix_len: int, columns: Sequence[str]) -> bool:
        """True if ``columns`` appear, in order, right after the pk prefix."""
        following = list(table.primary_key[prefix_len : prefix_len + len(columns)])
        return following == list(columns)

    # ------------------------------------------------------------------
    # Driving relation
    # ------------------------------------------------------------------
    def _build_driving(
        self,
        info: AccessInfo,
        spec: L.QuerySpec,
        stop_count: Optional[int],
        is_only_relation: bool,
        required_indexes: List[IndexDefinition],
        scan_counter: List[int],
    ) -> Tuple[P.PhysicalOperator, bool]:
        """Build the access operator for the first relation of the join order.

        Returns the operator and whether it satisfies the query's sort order.
        """
        table = self.catalog.table(info.table)
        equalities, tokens, ins, inequalities = self._split_predicates(info)

        # ---- Case A: primary key fully covered -> bounded point lookups.
        if info.data_stop is not None and info.data_stop_from_primary_key:
            return self._build_primary_lookup(info, table), False

        sort_here = self._sort_keys_on(spec, info.alias)
        sort_direction = self._sort_direction(spec) if sort_here else None

        # ---- Case B: cardinality-constraint data-stop.
        if info.data_stop is not None:
            return self._build_datastop_scan(
                info,
                table,
                spec,
                stop_count,
                sort_here,
                sort_direction,
                required_indexes,
                scan_counter,
            )

        # ---- Case C: bounded by the query's stop operator.
        #
        # A LIMIT/PAGINATE may bound the driving scan only when fetching the
        # first ``stop_count`` matching rows is guaranteed to be enough to
        # answer the query: the query is over a single relation, or the scan
        # itself produces the final sort order (later FK joins preserve it),
        # or no ordering was requested at all.  Otherwise — e.g. the
        # thoughtstream query without its subscription cardinality limit —
        # rows beyond the first ``stop_count`` could still contribute to the
        # result and no bounded plan exists (Section 6.4).
        stop_usable = stop_count is not None and (
            is_only_relation or sort_here or not spec.sort_keys
        )
        if stop_usable:
            return self._build_stop_bounded_scan(
                info,
                table,
                spec,
                stop_count,
                equalities,
                tokens,
                inequalities,
                sort_here,
                sort_direction,
                required_indexes,
                scan_counter,
            )

        # ---- Case D: nothing bounds this access path.
        eq_columns = [p.column.column for p in equalities]
        raise NotScaleIndependentError(
            f"access to relation {info.alias!r} ({info.table}) is unbounded: "
            "no primary-key equality, CARDINALITY LIMIT, or LIMIT/PAGINATE "
            "clause bounds the number of tuples",
            relation=info.alias,
            candidate_attributes=eq_columns or [c for c in table.primary_key],
            suggestions=[
                "add a LIMIT or PAGINATE clause to the query",
                "add a CARDINALITY LIMIT on the predicate columns "
                f"({', '.join(eq_columns) if eq_columns else 'none present'})",
            ],
        )

    def _build_primary_lookup(
        self, info: AccessInfo, table: Table
    ) -> P.PhysicalOperator:
        """Bounded random reads: equality (and bounded IN) covering the pk."""
        causing_by_column: Dict[str, object] = {}
        for predicate in info.causing:
            if isinstance(predicate, L.AttributeEquality):
                causing_by_column[predicate.column.column] = predicate.value
            elif isinstance(predicate, L.AttributeIn):
                causing_by_column[predicate.column.column] = P.InListPart(
                    predicate.values
                )
        key_parts = tuple(causing_by_column[c] for c in table.primary_key)
        lookup = P.PhysicalIndexLookup(
            relation_alias=info.alias,
            table=table.name,
            key_parts=key_parts,
            bound=info.data_stop,
        )
        if info.residual:
            return P.PhysicalLocalSelection(
                child=lookup, predicates=tuple(info.residual)
            )
        return lookup

    def _build_datastop_scan(
        self,
        info: AccessInfo,
        table: Table,
        spec: L.QuerySpec,
        stop_count: Optional[int],
        sort_here: bool,
        sort_direction: Optional[bool],
        required_indexes: List[IndexDefinition],
        scan_counter: List[int],
    ) -> Tuple[P.PhysicalOperator, bool]:
        """IndexScan bounded by a data-stop from a CARDINALITY LIMIT."""
        causing_equalities = [
            p for p in info.causing if isinstance(p, L.AttributeEquality)
        ]
        causing_tokens = [
            p for p in info.causing if isinstance(p, L.TokenMatch)
        ]
        causing_columns = [p.column.column for p in causing_equalities]
        causing_values = {p.column.column: p.value for p in causing_equalities}
        if causing_tokens:
            # A keyword search can never be served by the primary index; it
            # needs an inverted (tokenised) secondary index.
            index_columns = [
                IndexColumn(p.column.column, tokenized=True) for p in causing_tokens
            ] + [IndexColumn(c) for c in causing_columns]
            definition = self._find_or_create_index(
                table, index_columns, required_indexes
            )
            index = P.IndexChoice(
                table=table.name, primary=False, definition=definition
            )
            ordered_prefix = [p.value for p in causing_tokens] + [
                causing_values[c] for c in causing_columns
            ]
            sort_satisfied = False
        elif self._is_primary_prefix(table, causing_columns):
            index = P.IndexChoice(table=table.name, primary=True)
            ordered_prefix = [
                causing_values[c]
                for c in table.primary_key[: len(causing_columns)]
            ]
            sort_satisfied = (
                sort_here
                and sort_direction is not None
                and not info.residual
                and self._pk_follows(
                    table,
                    len(causing_columns),
                    [c.column for c, _ in spec.sort_keys],
                )
            )
        else:
            index_columns = [IndexColumn(c) for c in causing_columns]
            definition = self._find_or_create_index(
                table, index_columns, required_indexes
            )
            index = P.IndexChoice(
                table=table.name, primary=False, definition=definition
            )
            ordered_prefix = [causing_values[c] for c in causing_columns]
            sort_satisfied = False

        limit_hint: Optional[int] = None
        if stop_count is not None and not info.residual and (
            sort_satisfied or not spec.sort_keys
        ):
            limit_hint = min(stop_count, info.data_stop or stop_count)

        pushed, remaining = self._split_pushdown(
            index, table, info.alias, info.residual
        )
        scan = P.PhysicalIndexScan(
            relation_alias=info.alias,
            table=table.name,
            index=index,
            prefix=tuple(ordered_prefix),
            ascending=sort_direction if sort_satisfied else True,
            limit_hint=limit_hint,
            data_stop=info.data_stop,
            needs_dereference=not index.primary,
            scan_id=self._next_scan_id(scan_counter),
            pushed_predicates=tuple(pushed),
        )
        plan: P.PhysicalOperator = scan
        if remaining:
            plan = P.PhysicalLocalSelection(
                child=plan, predicates=tuple(remaining)
            )
        return plan, sort_satisfied

    def _build_stop_bounded_scan(
        self,
        info: AccessInfo,
        table: Table,
        spec: L.QuerySpec,
        stop_count: int,
        equalities: List[L.AttributeEquality],
        tokens: List[L.TokenMatch],
        inequalities: List[L.AttributeInequality],
        sort_here: bool,
        sort_direction: Optional[bool],
        required_indexes: List[IndexDefinition],
        scan_counter: List[int],
    ) -> Tuple[P.PhysicalOperator, bool]:
        """IndexScan whose bound comes from the query's LIMIT / PAGINATE.

        Because a standard stop operator may not be pushed past reductive
        predicates (Section 5.1), *every* predicate of the relation must be
        covered by the chosen index; otherwise the plan would be incorrect
        or unbounded and we reject it.
        """
        if len(tokens) > 1:
            raise NotScaleIndependentError(
                f"relation {info.alias!r} has multiple keyword-search "
                "predicates; at most one token match per relation is supported",
                relation=info.alias,
            )
        inequality_columns = {p.column.column for p in inequalities}
        if len(inequality_columns) > 1:
            raise NotScaleIndependentError(
                f"predicates on {info.alias!r} reference inequalities over "
                f"{sorted(inequality_columns)}; a contiguous index section can "
                "include at most one inequality attribute (Figure 4a)",
                relation=info.alias,
                candidate_attributes=sorted(inequality_columns),
            )
        if sort_here and sort_direction is None:
            raise NotScaleIndependentError(
                "mixed ASC/DESC sort directions cannot be satisfied by an "
                "index scan, so the LIMIT cannot bound the scan; add a "
                "CARDINALITY LIMIT instead",
                relation=info.alias,
            )
        sort_columns = (
            [c.column for c, _ in spec.sort_keys] if sort_here else []
        )
        if inequality_columns and sort_columns:
            ineq_column = next(iter(inequality_columns))
            if sort_columns[0] != ineq_column:
                raise NotScaleIndependentError(
                    f"the inequality attribute {ineq_column!r} must be the "
                    "first sort field for an index scan to satisfy the sort "
                    "(Section 5.2.1)",
                    relation=info.alias,
                )

        equality_columns = [p.column.column for p in equalities]
        equality_values = {p.column.column: p.value for p in equalities}
        token = tokens[0] if tokens else None
        ineq_column = next(iter(inequality_columns)) if inequality_columns else None

        # Column order of the index the scan needs.
        wanted: List[IndexColumn] = []
        if token is not None:
            wanted.append(IndexColumn(token.column.column, tokenized=True))
        wanted.extend(IndexColumn(c) for c in equality_columns)
        range_columns: List[str] = []
        if ineq_column is not None and ineq_column not in equality_columns:
            range_columns.append(ineq_column)
        for column in sort_columns:
            if column not in range_columns and column not in equality_columns:
                range_columns.append(column)

        use_primary = (
            token is None
            and self._is_primary_prefix(table, equality_columns)
            and self._pk_follows(table, len(equality_columns), range_columns)
        )
        if use_primary:
            index = P.IndexChoice(table=table.name, primary=True)
            ordered_prefix = [
                equality_values[c]
                for c in table.primary_key[: len(equality_columns)]
            ]
        else:
            wanted.extend(IndexColumn(c) for c in range_columns)
            definition = self._find_or_create_index(table, wanted, required_indexes)
            index = P.IndexChoice(
                table=table.name, primary=False, definition=definition
            )
            ordered_prefix = []
            if token is not None:
                ordered_prefix.append(token.value)
            ordered_prefix.extend(equality_values[c] for c in equality_columns)

        inequality_spec = None
        if inequalities:
            # All inequalities share one column; the executor applies the
            # tightest one to the range and re-checks the rest locally.
            first = inequalities[0]
            inequality_spec = (first.column.column, first.op, first.value)

        extra_inequalities = inequalities[1:]
        pushed, remaining = self._split_pushdown(
            index, table, info.alias, extra_inequalities
        )
        scan = P.PhysicalIndexScan(
            relation_alias=info.alias,
            table=table.name,
            index=index,
            prefix=tuple(ordered_prefix),
            inequality=inequality_spec,
            ascending=sort_direction if sort_here else True,
            limit_hint=spec.stop.count if spec.stop is not None else stop_count,
            data_stop=None,
            needs_dereference=not use_primary,
            scan_id=self._next_scan_id(scan_counter),
            pushed_predicates=tuple(pushed),
        )
        plan: P.PhysicalOperator = scan
        if remaining:
            plan = P.PhysicalLocalSelection(
                child=plan, predicates=tuple(remaining)
            )
        return plan, sort_here

    # ------------------------------------------------------------------
    # Join relations
    # ------------------------------------------------------------------
    def _build_join(
        self,
        child: P.PhysicalOperator,
        info: AccessInfo,
        spec: L.QuerySpec,
        placed: List[str],
        is_last: bool,
        stop_count: Optional[int],
        sort_pending: List[Tuple[L.BoundColumn, bool]],
        required_indexes: List[IndexDefinition],
    ) -> Tuple[P.PhysicalOperator, bool]:
        """Build the join operator bringing relation ``info`` into the plan.

        Returns the new plan root and whether the join consumed the sort.
        """
        table = self.catalog.table(info.table)
        join_predicates = spec.join_predicates_between(placed, info.alias)
        if not join_predicates:
            raise PlanningError(
                f"no join predicate connects {info.alias!r} to {placed}"
            )
        join_columns = [p.column_for(info.alias).column for p in join_predicates]
        join_sources = {
            p.column_for(info.alias).column: p.other(info.alias)
            for p in join_predicates
        }
        equalities, tokens, ins, inequalities = self._split_predicates(info)
        equality_values = {p.column.column: p.value for p in equalities}

        # ---- IndexFKJoin: join + equality predicates cover the primary key.
        covered = set(join_columns) | set(equality_values)
        if set(table.primary_key) <= covered:
            key_parts: List[P.KeyPart] = []
            for pk_column in table.primary_key:
                if pk_column in join_sources:
                    key_parts.append(join_sources[pk_column])
                else:
                    key_parts.append(equality_values[pk_column])
            join_op: P.PhysicalOperator = P.PhysicalIndexFKJoin(
                child=child,
                relation_alias=info.alias,
                table=table.name,
                key_parts=tuple(key_parts),
            )
            used = set(table.primary_key)
            residual = [
                p
                for p in info.all_predicates()
                if not (
                    isinstance(p, L.AttributeEquality) and p.column.column in used
                )
            ]
            if residual:
                join_op = P.PhysicalLocalSelection(
                    child=join_op, predicates=tuple(residual)
                )
            return join_op, False

        # ---- SortedIndexJoin: needs a per-join-key bound.
        sort_here = bool(sort_pending) and all(
            column.relation == info.alias for column, _ in sort_pending
        )
        sort_direction = self._sort_direction(spec) if sort_here else None
        residual = [
            p for p in info.all_predicates()
            if not isinstance(p, L.AttributeEquality)
        ]

        limit_hint: Optional[int] = None
        consumed_sort = False
        stop_for_join: Optional[object] = None
        cardinality = table.matching_cardinality(
            set(join_columns) | set(equality_values)
        )
        if (
            is_last
            and stop_count is not None
            and sort_here
            and sort_direction is not None
            and not residual
        ):
            limit_hint = stop_count
            consumed_sort = True
            stop_for_join = spec.stop.count if spec.stop is not None else stop_count
        elif cardinality is not None:
            limit_hint = cardinality
        else:
            raise NotScaleIndependentError(
                f"the join against {info.alias!r} ({table.name}) is unbounded: "
                "the number of matching tuples per join key has no limit",
                relation=info.alias,
                candidate_attributes=join_columns,
                suggestions=[
                    "add a CARDINALITY LIMIT on "
                    f"{table.name}({', '.join(join_columns)})",
                    "add an ORDER BY on the joined relation together with a "
                    "LIMIT so a SortedIndexJoin can bound the fetch",
                ],
            )

        sort_columns = [c.column for c, _ in sort_pending] if consumed_sort else []
        prefix_columns = list(equality_values.keys()) + [
            c for c in join_columns if c not in equality_values
        ]
        use_primary = self._is_primary_prefix(
            table, prefix_columns
        ) and self._pk_follows(table, len(prefix_columns), sort_columns)
        if use_primary:
            index = P.IndexChoice(table=table.name, primary=True)
            ordered_columns = list(table.primary_key[: len(prefix_columns)])
        else:
            wanted = [IndexColumn(c) for c in prefix_columns + sort_columns]
            definition = self._find_or_create_index(table, wanted, required_indexes)
            index = P.IndexChoice(
                table=table.name, primary=False, definition=definition
            )
            ordered_columns = prefix_columns

        prefix_parts: List[P.KeyPart] = []
        for column in ordered_columns:
            if column in equality_values:
                prefix_parts.append(equality_values[column])
            else:
                prefix_parts.append(join_sources[column])

        join_op = P.PhysicalSortedIndexJoin(
            child=child,
            relation_alias=info.alias,
            table=table.name,
            index=index,
            prefix=tuple(prefix_parts),
            sort_keys=tuple(
                (column.column, asc) for column, asc in (sort_pending if consumed_sort else [])
            ),
            ascending=sort_direction if consumed_sort else True,
            limit_hint=limit_hint,
            stop_count=stop_for_join,
            needs_dereference=not use_primary,
        )
        plan: P.PhysicalOperator = join_op
        if residual:
            plan = P.PhysicalLocalSelection(child=plan, predicates=tuple(residual))
        return plan, consumed_sort

    @staticmethod
    def _next_scan_id(scan_counter: List[int]) -> str:
        scan_id = f"scan{scan_counter[0]}"
        scan_counter[0] += 1
        return scan_id
