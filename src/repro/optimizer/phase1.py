"""Phase I of the PIQL optimizer: StopOperatorPrepare (Algorithm 1).

Phase I takes the analyzed query, finds a linear join ordering, pushes
predicates down to their relations, and inserts stop / data-stop operators:

* a **data-stop of cardinality 1** wherever equality predicates cover an
  entire primary key,
* a **data-stop of cardinality n** wherever equality predicates cover all
  the columns of a ``CARDINALITY LIMIT n`` constraint, and
* (as an extension needed by the subscriber-intersection access path) a
  data-stop wherever equalities plus a *bounded* ``IN`` list cover a primary
  key.

Data-stops are pushed below every predicate except the ones that caused
them (Section 5.1), which in this representation simply means the causing
predicates end up *below* the data-stop in the per-relation access subtree
and everything else ends up above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import NotScaleIndependentError
from ..schema.catalog import Catalog
from ..plans import logical as L


@dataclass
class AccessInfo:
    """How one relation instance of the query will be accessed.

    ``causing`` are the predicates that justified ``data_stop`` (they must
    stay below it); ``residual`` are the remaining value predicates, which a
    data-stop may be pushed past and which therefore become local selections
    above the bounded access.
    """

    alias: str
    table: str
    causing: List[L.ValuePredicate] = field(default_factory=list)
    residual: List[L.ValuePredicate] = field(default_factory=list)
    data_stop: Optional[int] = None
    data_stop_columns: Tuple[str, ...] = ()
    data_stop_from_primary_key: bool = False

    def all_predicates(self) -> List[L.ValuePredicate]:
        return list(self.causing) + list(self.residual)


@dataclass
class PreparedPlan:
    """Output of Phase I, consumed by Phase II."""

    spec: L.QuerySpec
    join_order: List[str]
    access: Dict[str, AccessInfo]
    logical_plan: L.LogicalOperator

    def access_for(self, alias: str) -> AccessInfo:
        return self.access[alias]


class StopOperatorPrepare:
    """Implements Algorithm 1 over the normalized query specification."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def prepare(self, spec: L.QuerySpec) -> PreparedPlan:
        join_order = self.find_linear_join_ordering(spec)
        access = {
            alias: self._build_access_info(spec.relation(alias)) for alias in join_order
        }
        logical_plan = self._build_logical_plan(spec, join_order, access)
        return PreparedPlan(
            spec=spec, join_order=join_order, access=access, logical_plan=logical_plan
        )

    # ------------------------------------------------------------------
    # Line 1: linear join ordering
    # ------------------------------------------------------------------
    def find_linear_join_ordering(self, spec: L.QuerySpec) -> List[str]:
        """Order relations so that each one joins to the already-placed prefix.

        The driving (first) relation is the most selectively accessible one:
        full primary-key equality beats a cardinality-constraint match beats
        any value predicate.  Queries whose join graph is disconnected have
        an implicit Cartesian product and are rejected as not
        scale-independent.
        """
        if len(spec.relations) == 1:
            return [spec.relations[0].alias]

        def driving_score(relation: L.RelationSpec) -> Tuple[int, int]:
            table = self.catalog.table(relation.table)
            eq_columns = {p.column.column for p in relation.equalities}
            in_columns = {
                p.column.column
                for p in relation.in_predicates
                if p.max_cardinality() is not None
            }
            score = 0
            if table.covers_primary_key(eq_columns):
                score = 4
            elif table.covers_primary_key(eq_columns | in_columns):
                score = 3
            elif table.matching_cardinality(eq_columns) is not None:
                score = 2
            elif relation.equalities or relation.token_matches:
                score = 1
            # Prefer higher scores; among equals, prefer more predicates.
            return (score, len(relation.all_value_predicates()))

        ordered = sorted(spec.relations, key=driving_score, reverse=True)
        placed = [ordered[0].alias]
        remaining = [r.alias for r in ordered[1:]]
        while remaining:
            progressed = False
            for alias in list(remaining):
                if spec.join_predicates_between(placed, alias):
                    placed.append(alias)
                    remaining.remove(alias)
                    progressed = True
                    break
            if not progressed:
                raise NotScaleIndependentError(
                    "query contains a Cartesian product (no join predicate "
                    f"connects {remaining} to {placed}); Cartesian products "
                    "grow super-linearly with database size (Class IV)",
                    relation=remaining[0],
                    suggestions=[
                        "add a join predicate connecting every relation",
                    ],
                )
        return placed

    # ------------------------------------------------------------------
    # Lines 3-11: data-stop insertion
    # ------------------------------------------------------------------
    def _build_access_info(self, relation: L.RelationSpec) -> AccessInfo:
        table = self.catalog.table(relation.table)
        info = AccessInfo(alias=relation.alias, table=table.name)
        equalities = list(relation.equalities)
        eq_columns = {p.column.column for p in equalities}
        all_predicates = relation.all_value_predicates()

        # Primary-key equality -> data-stop of cardinality 1.
        if table.covers_primary_key(eq_columns):
            info.data_stop = 1
            info.data_stop_columns = tuple(table.primary_key)
            info.data_stop_from_primary_key = True
            causing_columns = set(table.primary_key)
            info.causing = [
                p for p in equalities if p.column.column in causing_columns
            ]
            info.residual = [p for p in all_predicates if p not in info.causing]
            return info

        # Primary key covered by equalities plus a bounded IN list.
        bounded_ins = [
            p for p in relation.in_predicates if p.max_cardinality() is not None
        ]
        for in_predicate in bounded_ins:
            if table.covers_primary_key(eq_columns | {in_predicate.column.column}):
                info.data_stop = in_predicate.max_cardinality()
                info.data_stop_columns = tuple(table.primary_key)
                info.data_stop_from_primary_key = True
                causing_columns = set(table.primary_key)
                info.causing = [
                    p for p in equalities if p.column.column in causing_columns
                ] + [in_predicate]
                info.residual = [p for p in all_predicates if p not in info.causing]
                return info

        # CARDINALITY LIMIT covered by equality predicates (and, for keyword
        # searches over single-word columns such as an author's last name,
        # token-match predicates: the tokenised lookup returns at most the
        # rows sharing one value of the constrained column).
        token_columns = {p.column.column for p in relation.token_matches}
        limit = table.cardinality_limit_for(eq_columns | token_columns)
        if limit is not None:
            info.data_stop = limit.limit
            info.data_stop_columns = tuple(limit.columns)
            causing_columns = set(limit.columns)
            info.causing = [
                p for p in equalities if p.column.column in causing_columns
            ] + [
                p for p in relation.token_matches
                if p.column.column in causing_columns
            ]
            info.residual = [p for p in all_predicates if p not in info.causing]
            return info

        info.causing = []
        info.residual = all_predicates
        return info

    # ------------------------------------------------------------------
    # Line 12: canonical (pushed-down) logical plan for display / Phase II
    # ------------------------------------------------------------------
    def _build_logical_plan(
        self,
        spec: L.QuerySpec,
        join_order: List[str],
        access: Dict[str, AccessInfo],
    ) -> L.LogicalOperator:
        plan = self._access_subtree(access[join_order[0]])
        placed = [join_order[0]]
        for alias in join_order[1:]:
            right = self._access_subtree(access[alias])
            predicates = tuple(spec.join_predicates_between(placed, alias))
            plan = L.Join(left=plan, right=right, predicates=predicates)
            placed.append(alias)
        if spec.aggregates or spec.group_by:
            plan = L.Aggregate(
                child=plan, group_by=spec.group_by, aggregates=spec.aggregates
            )
        if spec.sort_keys:
            plan = L.Sort(child=plan, keys=tuple(spec.sort_keys))
        if spec.stop is not None:
            plan = L.Stop(
                child=plan, count=spec.stop.count, paginate=spec.stop.paginate
            )
        return L.Project(child=plan, items=spec.projection)

    @staticmethod
    def _access_subtree(info: AccessInfo) -> L.LogicalOperator:
        plan: L.LogicalOperator = L.Relation(table=info.table, alias=info.alias)
        if info.causing:
            plan = L.Selection(child=plan, predicates=tuple(info.causing))
        if info.data_stop is not None:
            plan = L.DataStop(
                child=plan,
                count=info.data_stop,
                relation=info.alias,
                constraint_columns=info.data_stop_columns,
                caused_by=tuple(info.causing),
            )
        if info.residual:
            plan = L.Selection(child=plan, predicates=tuple(info.residual))
        return plan
