"""A conventional cost-based optimizer used as the baseline of Section 8.3.

The paper contrasts PIQL's scale-independent plan selection with a
traditional cost-based optimizer that minimises the *average* number of
key/value store operations given current statistics.  For the subscriber
intersection query::

    SELECT * FROM subscriptions
    WHERE target = <target_user> AND owner IN <friends>

the cost-based optimizer prefers a single unbounded index scan over the
``target`` index (on average only ~126 subscribers per user) followed by a
local filter, whereas PIQL performs one bounded random read per friend.
The scan is 4x faster for unpopular users but blows through the SLO for
popular ones (Figure 7).

This module implements that baseline: given table statistics it enumerates
the same access paths PIQL knows about *plus* unbounded index scans, and it
chooses by expected operation count instead of worst-case bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

#: How many secondary-index matches the baseline assumes fit in one batched
#: dereference round trip when estimating average cost.
_DEREFERENCE_BATCH_SIZE = 50

from ..errors import PlanningError
from ..plans import logical as L
from ..plans import physical as P
from ..plans.builder import LogicalPlanBuilder
from ..schema.catalog import Catalog
from ..schema.ddl import IndexColumn, IndexDefinition
from ..sql import ast
from ..sql.parser import parse_select


@dataclass
class TableStatistics:
    """Average-case statistics the cost-based optimizer relies on.

    ``avg_rows_per_value`` maps a tuple of column names to the average
    number of rows sharing one combination of values for those columns
    (e.g. ``("target",) -> 126`` for the average number of subscribers).
    """

    row_count: int = 0
    avg_rows_per_value: Dict[Tuple[str, ...], float] = field(default_factory=dict)

    def expected_matches(self, columns: Tuple[str, ...]) -> float:
        key = tuple(sorted(columns))
        for stat_columns, value in self.avg_rows_per_value.items():
            if tuple(sorted(stat_columns)) == key:
                return value
        return float(self.row_count)


@dataclass
class CostedPlan:
    """A candidate plan with its estimated average cost."""

    physical_plan: P.PhysicalOperator
    expected_operations: float
    description: str
    scale_independent: bool
    required_indexes: List[IndexDefinition] = field(default_factory=list)


class CostBasedOptimizer:
    """Chooses the cheapest plan *on average*, ignoring worst-case bounds."""

    def __init__(self, catalog: Catalog, statistics: Dict[str, TableStatistics]):
        self.catalog = catalog
        self.statistics = statistics
        self._builder = LogicalPlanBuilder(catalog)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def optimize(
        self, query: Union[str, ast.SelectStatement]
    ) -> CostedPlan:
        """Return the cheapest candidate plan for a single-relation query."""
        candidates = self.enumerate_plans(query)
        if not candidates:
            raise PlanningError("cost-based optimizer found no candidate plan")
        return min(candidates, key=lambda plan: plan.expected_operations)

    def enumerate_plans(
        self, query: Union[str, ast.SelectStatement]
    ) -> List[CostedPlan]:
        """Enumerate bounded-lookup and index-scan plans for the query.

        Only single-relation queries are supported — that is all the paper's
        comparison (Section 8.3) requires, and it keeps the baseline honest:
        both optimizers see exactly the same access paths.
        """
        statement = parse_select(query) if isinstance(query, str) else query
        spec = self._builder.build_spec(statement)
        if len(spec.relations) != 1:
            raise PlanningError(
                "the cost-based baseline supports single-relation queries only"
            )
        if spec.aggregate_sort_keys:
            # Ordering by an aggregate output ranks the groups; only the
            # scale-independent optimizer's materialized-view rewrite can
            # serve that, and silently dropping the ordering would return
            # rows in arbitrary order.
            raise PlanningError(
                "the cost-based baseline cannot order by aggregate outputs"
            )
        relation = spec.relations[0]
        table = self.catalog.table(relation.table)
        stats = self.statistics.get(
            table.name.lower(), self.statistics.get(table.name, TableStatistics())
        )
        equalities = {p.column.column: p.value for p in relation.equalities}
        in_predicates = relation.in_predicates
        candidates: List[CostedPlan] = []

        # Candidate 1: bounded random lookups (the PIQL plan) whenever the
        # primary key is covered by equalities plus one IN list.
        for in_predicate in in_predicates:
            covered = set(equalities) | {in_predicate.column.column}
            if set(table.primary_key) <= covered:
                bound = in_predicate.max_cardinality()
                key_parts: List[object] = []
                for pk_column in table.primary_key:
                    if pk_column == in_predicate.column.column:
                        key_parts.append(P.InListPart(in_predicate.values))
                    else:
                        key_parts.append(equalities[pk_column])
                lookup = P.PhysicalIndexLookup(
                    relation_alias=relation.alias,
                    table=table.name,
                    key_parts=tuple(key_parts),
                    bound=bound,
                )
                plan = self._finish(lookup, spec)
                expected = float(bound if bound is not None else len(in_predicates))
                candidates.append(
                    CostedPlan(
                        physical_plan=plan,
                        expected_operations=expected,
                        description=(
                            f"bounded random lookups ({bound} point reads "
                            "against the primary key)"
                        ),
                        scale_independent=True,
                    )
                )

        # Candidate 2: an (unbounded) index scan over the equality columns,
        # filtering everything else locally.
        if equalities:
            columns = tuple(sorted(equalities))
            index_columns = [IndexColumn(c) for c in columns]
            definition = self.catalog.find_index(table.name, index_columns)
            required: List[IndexDefinition] = []
            if definition is None:
                full = list(index_columns) + [
                    IndexColumn(c) for c in table.primary_key if c not in columns
                ]
                definition = IndexDefinition(
                    name=Catalog.index_name(table.name, full),
                    table=table.name,
                    columns=tuple(full),
                )
                required.append(definition)
            use_primary = list(table.primary_key[: len(columns)]) == sorted(columns)
            index = P.IndexChoice(
                table=table.name,
                primary=use_primary,
                definition=None if use_primary else definition,
            )
            scan = P.PhysicalIndexScan(
                relation_alias=relation.alias,
                table=table.name,
                index=index,
                prefix=tuple(equalities[c] for c in columns),
                ascending=True,
                limit_hint=None,
                data_stop=None,
                needs_dereference=not use_primary,
                scan_id="costscan0",
            )
            residual: List[L.ValuePredicate] = list(relation.in_predicates) + list(
                relation.inequalities
            ) + list(relation.token_matches)
            root: P.PhysicalOperator = scan
            if residual:
                root = P.PhysicalLocalSelection(child=root, predicates=tuple(residual))
            plan = self._finish(root, spec)
            expected_matches = stats.expected_matches(columns)
            # Cost metric: expected client-to-store round trips.  A range scan
            # is one round trip; dereferencing its matches is batched (the
            # average-case result easily fits a handful of batches), whereas
            # the bounded-lookup plan pays one round trip per key in a
            # traditional, non-batching engine.  This is what makes the
            # unbounded scan look cheap on average (Section 8.3).
            deref_round_trips = (
                math.ceil(expected_matches / _DEREFERENCE_BATCH_SIZE)
                if not use_primary
                else 0.0
            )
            expected = 1.0 + deref_round_trips
            candidates.append(
                CostedPlan(
                    physical_plan=plan,
                    expected_operations=expected,
                    description=(
                        f"unbounded index scan over {table.name}({', '.join(columns)}) "
                        f"(~{expected_matches:.0f} rows expected), local filter"
                    ),
                    scale_independent=False,
                    required_indexes=required,
                )
            )
        return candidates

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _finish(plan: P.PhysicalOperator, spec: L.QuerySpec) -> P.PhysicalOperator:
        if spec.sort_keys:
            plan = P.PhysicalLocalSort(child=plan, keys=tuple(spec.sort_keys))
        if spec.stop is not None:
            plan = P.PhysicalLocalStop(
                child=plan, count=spec.stop.count, paginate=spec.stop.paginate
            )
        return P.PhysicalLocalProjection(child=plan, items=spec.projection)
