"""Query scaling classes (Section 2 / Figure 1).

The paper divides queries into four classes by how the amount of data
relevant to one query grows with database size:

* **Class I (constant)** — e.g. looking up a user by primary key;
* **Class II (bounded)** — data grows with success but is capped by a
  real-world / schema cardinality limit, e.g. the thoughtstream of a user
  with a bounded number of subscriptions;
* **Class III (linear / sub-linear)** — e.g. listing every user from a
  given hometown;
* **Class IV (super-linear)** — e.g. a self-join computing all pairs of
  users from the same hometown (the shape of clustering-style queries).

A success-tolerant application can use only Classes I and II.  The analysis
here measures the relevant-data growth for a representative query of each
class on generated SCADr data, and checks that the PIQL optimizer accepts
exactly the Class I/II queries and rejects the Class III/IV ones.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..engine.database import PiqlDatabase
from ..errors import NotScaleIndependentError
from ..kvstore.cluster import ClusterConfig
from ..workloads.scadr.data import ScadrDataConfig, ScadrDataGenerator
from ..workloads.scadr.queries import THOUGHTSTREAM
from ..workloads.scadr.schema import scadr_ddl

#: Representative queries for each class, expressed in PIQL.
CLASS_QUERIES: Dict[str, str] = {
    "class1_find_user": "SELECT * FROM users WHERE username = <uname>",
    "class2_thoughtstream": THOUGHTSTREAM,
    "class3_users_by_hometown": (
        "SELECT * FROM users WHERE hometown = <town>"
    ),
    "class4_hometown_pairs": (
        "SELECT u1.username, u2.username FROM users u1 JOIN users u2 "
        "WHERE u1.hometown = u2.hometown"
    ),
}


@dataclass
class ClassPoint:
    """Relevant-data sizes for one database size."""

    users: int
    class1_constant: int
    class2_bounded: int
    class3_linear: int
    class4_superlinear: int


@dataclass
class ScalingClassResult:
    points: List[ClassPoint] = field(default_factory=list)
    accepted_by_piql: Dict[str, bool] = field(default_factory=dict)

    def growth_factor(self, attribute: str) -> float:
        """Relevant-data growth between the smallest and largest database."""
        first = getattr(self.points[0], attribute)
        last = getattr(self.points[-1], attribute)
        return last / max(first, 1)

    def database_growth_factor(self) -> float:
        return self.points[-1].users / max(self.points[0].users, 1)


class ScalingClassAnalysis:
    """Measures Figure 1's four growth curves on generated SCADr data."""

    def __init__(
        self,
        user_counts: Sequence[int] = (500, 1000, 2000, 4000),
        subscriptions_per_user: int = 10,
        thoughts_per_user: int = 10,
        page_size: int = 10,
        seed: int = 5,
    ):
        self.user_counts = list(user_counts)
        self.subscriptions_per_user = subscriptions_per_user
        self.thoughts_per_user = thoughts_per_user
        self.page_size = page_size
        self.seed = seed

    # ------------------------------------------------------------------
    # Relevant-data measurement
    # ------------------------------------------------------------------
    def _point(self, users: int) -> ClassPoint:
        config = ScadrDataConfig(
            users=users,
            thoughts_per_user=self.thoughts_per_user,
            subscriptions_per_user=self.subscriptions_per_user,
            seed=self.seed,
        )
        generator = ScadrDataGenerator(config)
        hometowns = Counter(row["hometown"] for row in generator.users())

        # Class I: a primary-key lookup touches exactly one row.
        class1 = 1
        # Class II: the thoughtstream touches the user's subscriptions plus
        # one page of thoughts per subscription — bounded by the schema.
        class2 = self.subscriptions_per_user * (1 + self.page_size)
        # Class III: listing the users of one (average) hometown.
        class3 = int(sum(hometowns.values()) / max(len(hometowns), 1))
        # Class IV: all pairs of users sharing a hometown (self-join).
        class4 = sum(count * (count - 1) for count in hometowns.values())
        return ClassPoint(
            users=users,
            class1_constant=class1,
            class2_bounded=class2,
            class3_linear=class3,
            class4_superlinear=class4,
        )

    # ------------------------------------------------------------------
    # PIQL admissibility check
    # ------------------------------------------------------------------
    def check_piql_acceptance(
        self, max_subscriptions: Optional[int] = None
    ) -> Dict[str, bool]:
        """Which class queries does the PIQL optimizer accept?

        Classes I and II must compile to bounded plans; Classes III and IV
        must be rejected with :class:`NotScaleIndependentError`.
        """
        db = PiqlDatabase.simulated(ClusterConfig(storage_nodes=2, seed=self.seed))
        db.execute_ddl(
            scadr_ddl(max_subscriptions or self.subscriptions_per_user)
        )
        accepted: Dict[str, bool] = {}
        for name, sql in CLASS_QUERIES.items():
            try:
                db.optimizer.optimize(sql)
                accepted[name] = True
            except NotScaleIndependentError:
                accepted[name] = False
        return accepted

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> ScalingClassResult:
        result = ScalingClassResult()
        for users in self.user_counts:
            result.points.append(self._point(users))
        result.accepted_by_piql = self.check_piql_acceptance()
        return result
