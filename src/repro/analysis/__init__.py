"""Analyses of query scaling behaviour (Section 2 of the paper)."""

from .scaling_classes import (
    CLASS_QUERIES,
    ClassPoint,
    ScalingClassAnalysis,
    ScalingClassResult,
)

__all__ = [
    "CLASS_QUERIES",
    "ClassPoint",
    "ScalingClassAnalysis",
    "ScalingClassResult",
]
