"""Per-node circuit breakers (closed / open / half-open).

Each client tracks, per storage node, a consecutive-failure counter.
When it crosses the threshold the breaker **opens**: the node becomes a
*suspect* — quorum reads deprioritise it and quorum writes hint it early
(when the quorum is already met without it), so a failing replica stops
costing timeouts on every request.  After ``open_seconds`` the breaker
moves to **half-open**: the node is offered one probe's worth of real
traffic; a success closes the breaker, a failure re-opens it.

Breakers are per-client state (each app server observes its own
failures), mirrored into telemetry as ``resilience.breaker.*`` series so
the dashboard and the admission controller can see fleet-wide pressure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One node's breaker state machine at one client."""

    __slots__ = ("failure_threshold", "open_seconds", "failures", "_opened_at")

    def __init__(self, failure_threshold: int = 3, open_seconds: float = 1.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if open_seconds <= 0:
            raise ValueError("open_seconds must be positive")
        self.failure_threshold = failure_threshold
        self.open_seconds = open_seconds
        self.failures = 0
        self._opened_at: float = -1.0

    def state(self, now: float) -> str:
        if self._opened_at < 0:
            return CLOSED
        if now - self._opened_at >= self.open_seconds:
            return HALF_OPEN
        return OPEN

    def allow(self, now: float) -> bool:
        """Whether traffic may be sent to the node (closed or probe-due)."""
        return self.state(now) != OPEN

    def record_success(self, now: float) -> None:
        self.failures = 0
        self._opened_at = -1.0

    def record_failure(self, now: float) -> None:
        state = self.state(now)
        if state == HALF_OPEN:
            # The probe failed: re-open for a full window.
            self._opened_at = now
            return
        if state == OPEN:
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._opened_at = now


class BreakerBoard:
    """All of one client's per-node breakers."""

    def __init__(self, failure_threshold: int = 3, open_seconds: float = 1.0):
        self.failure_threshold = failure_threshold
        self.open_seconds = open_seconds
        self.breakers: Dict[int, CircuitBreaker] = {}

    def breaker(self, node_id: int) -> CircuitBreaker:
        breaker = self.breakers.get(node_id)
        if breaker is None:
            breaker = CircuitBreaker(self.failure_threshold, self.open_seconds)
            self.breakers[node_id] = breaker
        return breaker

    def record_success(self, node_id: int, now: float) -> None:
        breaker = self.breakers.get(node_id)
        if breaker is not None:
            breaker.record_success(now)

    def record_failure(self, node_id: int, now: float) -> None:
        self.breaker(node_id).record_failure(now)

    def suspects(self, now: float) -> Set[int]:
        """Nodes whose breaker is open (half-open nodes may take probes)."""
        return {
            node_id
            for node_id, breaker in self.breakers.items()
            if breaker.state(now) == OPEN
        }

    def open_count(self, now: float) -> int:
        return len(self.suspects(now))

    def states(self, now: float) -> Dict[int, str]:
        return {
            node_id: breaker.state(now)
            for node_id, breaker in sorted(self.breakers.items())
        }

    def all_open(self, now: float, node_ids: Sequence[int]) -> bool:
        """True when every listed node's breaker is strictly open.

        Half-open breakers return False — a probe is allowed through, so
        the client is not fully fenced off and should attempt the call.
        """
        ids: List[int] = list(node_ids)
        if not ids:
            return False
        for node_id in ids:
            breaker = self.breakers.get(node_id)
            if breaker is None or breaker.state(now) != OPEN:
                return False
        return True
