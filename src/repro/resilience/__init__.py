"""Client resilience: timeouts, backoff, retry budgets, hedging, breakers.

The paper's bounds make latency *predictable*; this package turns that
predictability into *robustness by construction*: a query whose operation
bound and p99 latency envelope are known statically yields a principled
per-query timeout and hedge delay, retries are paced by exponential
backoff with full jitter under a token-bucket budget (no retry storms),
and per-node circuit breakers steer traffic away from failing replicas.

Everything here is deterministic (seeded jitter, simulated clocks) and
off by default: a database without an attached
:class:`~repro.resilience.policy.ResiliencePolicy` behaves exactly as
before, and even with the default policy the healthy path is untouched —
only failure handling changes.
"""

from .breaker import BreakerBoard, CircuitBreaker
from .budget import TokenBucketRetryBudget
from .policy import ResilienceConfig, ResiliencePolicy

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "TokenBucketRetryBudget",
    "ResilienceConfig",
    "ResiliencePolicy",
]
