"""Token-bucket retry budget.

Retries are only safe when they are *bounded*: during an outage every
client retrying every failed request multiplies the offered load on the
surviving replicas exactly when they can least afford it (the retry storm
``PiqlDatabase.execute``'s naive loop used to model).  The budget caps the
aggregate retry rate: each retry spends one token, tokens refill at a
fixed rate, and when the bucket is empty the failure surfaces immediately
instead of re-charging the cluster.
"""

from __future__ import annotations


class TokenBucketRetryBudget:
    """A token bucket over simulated time.

    ``capacity`` bounds the burst of retries a client may issue at once;
    ``refill_per_second`` bounds the sustained retry rate.  Time is
    whatever clock the caller passes to :meth:`try_acquire` — the
    simulation's ``SimClock.now`` here — so the budget needs no clock of
    its own and stays deterministic.
    """

    __slots__ = ("capacity", "refill_per_second", "tokens", "_last_refill")

    def __init__(self, capacity: float = 20.0, refill_per_second: float = 4.0):
        if capacity <= 0:
            raise ValueError("budget capacity must be positive")
        if refill_per_second < 0:
            raise ValueError("refill rate must be non-negative")
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self.tokens = float(capacity)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self.tokens = min(
                self.capacity, self.tokens + elapsed * self.refill_per_second
            )
        self._last_refill = max(self._last_refill, now)

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self.tokens

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if the bucket holds them; False otherwise."""
        self._refill(now)
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False
