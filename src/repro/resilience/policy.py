"""Bound-derived resilience policy: the client's failure-handling brain.

One :class:`ResiliencePolicy` is attached per database view.  It owns the
view's retry budget, backoff RNG, and circuit-breaker board, and derives
per-query deadlines from the same static machinery the paper uses to
*predict* latency:

* **timeout** — the prediction model's p99 envelope for the query's
  physical plan, times a slack multiplier, clamped to a sane range.  A
  reply slower than that is treated as lost (the client has better odds
  re-issuing than waiting).  Without a trained model the static
  ``default_timeout_seconds`` applies.
* **hedge delay** — the p95 envelope *divided by the plan's operation
  bound* approximates a per-RPC p95; a read still outstanding after that
  long gets a hedge twin, first response wins.

Retries pace themselves with exponential backoff and **full jitter**
(seeded — deterministic in the simulation) under a token-bucket budget,
and the breaker board fails fast when every replica looks down.  The
``naive`` flag reproduces the old immediate-retry loop for paired
benchmarks: same attempt count, no pacing, no budget — the retry storm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

from ..errors import (
    CircuitOpenError,
    PiqlError,
    RetryBudgetExhaustedError,
    UnavailableError,
)
from .breaker import BreakerBoard
from .budget import TokenBucketRetryBudget

T = TypeVar("T")


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables of one view's resilience policy.

    The defaults are deliberately conservative: backoff-paced retries on
    the failure path only, no derived timeouts, no hedging, no breakers —
    a healthy run behaves byte-identically to a database without any
    policy, and even a faulted run only gains pacing.  Chaos/soak arms
    opt into the aggressive features explicitly.
    """

    #: Total attempts per query (first try + retries).  ``None`` follows
    #: the database's ``unavailable_retries`` knob (retries + 1).
    max_attempts: Optional[int] = None
    backoff_base_seconds: float = 0.05
    backoff_max_seconds: float = 2.0
    budget_capacity: float = 20.0
    budget_refill_per_second: float = 4.0
    #: Derive per-query RPC timeouts from the prediction model's p99
    #: envelope (static default when no model is trained).
    derive_timeouts: bool = False
    timeout_multiplier: float = 3.0
    timeout_min_seconds: float = 0.02
    timeout_max_seconds: float = 2.0
    default_timeout_seconds: float = 0.5
    hedging_enabled: bool = False
    hedge_quantile: float = 0.95
    default_hedge_delay_seconds: float = 0.02
    breakers_enabled: bool = False
    breaker_failure_threshold: int = 3
    breaker_open_seconds: float = 1.0
    #: Reproduce the legacy immediate-retry loop (paired-arm baseline):
    #: same attempt count, no backoff, no budget, no breakers.
    naive: bool = False
    seed: int = 0


class ResiliencePolicy:
    """Executes query pages with retries, deadlines, and breakers."""

    def __init__(self, db: Any, config: Optional[ResilienceConfig] = None):
        self.db = db
        self.config = config or ResilienceConfig()
        self.budget = TokenBucketRetryBudget(
            self.config.budget_capacity,
            self.config.budget_refill_per_second,
        )
        self.board: Optional[BreakerBoard] = (
            BreakerBoard(
                self.config.breaker_failure_threshold,
                self.config.breaker_open_seconds,
            )
            if self.config.breakers_enabled and not self.config.naive
            else None
        )
        self._rng = random.Random(self.config.seed)
        #: Per-query (timeout, hedge delay) derived from the prediction
        #: model, cached by SQL text.
        self._envelope_cache: Dict[str, Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Bound-derived deadlines
    # ------------------------------------------------------------------
    def _clamp(self, seconds: float) -> float:
        return min(
            self.config.timeout_max_seconds,
            max(self.config.timeout_min_seconds, seconds),
        )

    def _envelope(self, optimized: Any) -> Tuple[float, float]:
        key = optimized.sql or repr(optimized.physical_plan)
        hit = self._envelope_cache.get(key)
        if hit is not None:
            return hit
        timeout = self.config.default_timeout_seconds
        hedge = self.config.default_hedge_delay_seconds
        model = getattr(self.db.auditor, "latency_model", None)
        if model is not None:
            try:
                p99 = model.predict_quantile(optimized.physical_plan, 0.99)
                timeout = self._clamp(p99 * self.config.timeout_multiplier)
                p_hedge = model.predict_quantile(
                    optimized.physical_plan, self.config.hedge_quantile
                )
                try:
                    operations = max(1, optimized.operation_bound)
                except PiqlError:
                    operations = 1
                hedge = self._clamp(p_hedge / operations)
            except PiqlError:
                # Untrained model (or a plan it cannot score): keep the
                # static defaults rather than failing the query.
                pass
        envelope = (timeout, hedge)
        self._envelope_cache[key] = envelope
        return envelope

    def timeout_for(self, optimized: Any) -> Optional[float]:
        """Per-RPC deadline for one query, or ``None`` when disabled."""
        if not self.config.derive_timeouts:
            return None
        return self._envelope(optimized)[0]

    def hedge_delay_for(self, optimized: Any) -> Optional[float]:
        """Hedge delay for one query's reads, or ``None`` when disabled."""
        if not self.config.hedging_enabled:
            return None
        return self._envelope(optimized)[1]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_page(
        self,
        optimized: Any,
        parameters: Any,
        cursor: Any,
        strategy: Any,
    ) -> Any:
        """Execute one query page under this policy.

        This is the single funnel every query path traverses
        (``db.execute``, serial plans, pipelined sessions, cursor page
        fetches), so retry/deadline behaviour can never diverge between
        the sync and async APIs.  The per-query deadline and hedge delay
        are installed on the storage client for the duration of the page.
        """
        db = self.db
        client = db.client
        saved_timeout = client.rpc_timeout_seconds
        saved_hedge = client.hedge_delay_seconds
        client.rpc_timeout_seconds = self.timeout_for(optimized)
        client.hedge_delay_seconds = self.hedge_delay_for(optimized)
        try:
            return self.run(
                lambda: db.executor.execute(
                    optimized,
                    parameters=parameters,
                    cursor=cursor,
                    strategy=strategy,
                ),
                operation=optimized.sql or "query",
            )
        finally:
            client.rpc_timeout_seconds = saved_timeout
            client.hedge_delay_seconds = saved_hedge

    def run(
        self,
        fn: Callable[[], T],
        operation: str = "query",
        attempts: Optional[int] = None,
    ) -> T:
        """Run ``fn`` with this policy's retry discipline.

        Retries only the transient :class:`UnavailableError` family; the
        terminal members (:class:`RetryBudgetExhaustedError`,
        :class:`CircuitOpenError`) propagate immediately.  Each retry
        spends a budget token and sleeps a full-jitter backoff on the
        client's simulated clock.
        """
        config = self.config
        clock = self.db.client.clock
        metrics = self.db.client.stats.metrics
        if attempts is None:
            attempts = (
                config.max_attempts
                if config.max_attempts is not None
                else max(0, self.db.unavailable_retries) + 1
            )
        attempts = max(1, attempts)
        last: Optional[UnavailableError] = None
        for attempt in range(attempts):
            if self.board is not None:
                node_ids = [node.node_id for node in self.db.cluster.nodes]
                if self.board.all_open(clock.now, node_ids):
                    metrics.add("resilience.breaker_fast_fails", 1)
                    raise CircuitOpenError(
                        sorted(self.board.suspects(clock.now))
                    )
            try:
                return fn()
            except (RetryBudgetExhaustedError, CircuitOpenError):
                raise
            except UnavailableError as exc:
                last = exc
                metrics.add("resilience.failures", 1)
                if attempt == attempts - 1:
                    break
                if config.naive:
                    metrics.add("resilience.retries", 1)
                    continue
                if not self.budget.try_acquire(clock.now):
                    metrics.add("resilience.budget_exhausted", 1)
                    raise RetryBudgetExhaustedError(
                        operation, attempt + 1
                    ) from exc
                ceiling = min(
                    config.backoff_max_seconds,
                    config.backoff_base_seconds * (2.0 ** attempt),
                )
                sleep = self._rng.uniform(0.0, ceiling)
                started = clock.now
                clock.advance(sleep)
                metrics.add("resilience.retries", 1)
                metrics.add("resilience.backoff_seconds", sleep)
                tracer = self.db.client.tracer
                if tracer is not None:
                    tracer.record(
                        "retry", "resilience", started, clock.now,
                        attempt=attempt + 1, error=type(exc).__name__,
                        backoff_seconds=sleep,
                    )
        assert last is not None
        raise last
