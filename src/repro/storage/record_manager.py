"""Record manager: CRUD over base records plus index and constraint maintenance.

PIQL uses the key/value store purely as a record manager (Section 3); all
higher-level functionality lives in this client-side library.  The write
protocols follow Section 7.2:

* **Secondary index maintenance** — new index entries are written *before*
  the base record, and stale entries are deleted *after* it.  A crash can
  therefore leave dangling index pointers (garbage-collectable) but never an
  index that misses a live record.
* **Cardinality constraints** — after inserting a record the library counts
  the rows sharing the constrained column values with a ``count_range``
  request; if the constraint is exceeded the record is removed again and the
  insert fails.  Concurrent inserts may transiently overshoot, exactly as in
  the paper's prototype.
* **Uniqueness** (primary keys) — enforced with ``test_and_set``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import (
    CardinalityViolationError,
    SchemaError,
    UniquenessViolationError,
)
from ..kvstore.client import StorageClient
from ..kvstore.cluster import KeyValueCluster
from ..schema.catalog import Catalog
from ..schema.ddl import CardinalityLimit, IndexColumn, IndexDefinition, Table
from ..schema.keys import prefix_range
from .rows import (
    deserialize_row,
    index_entries,
    index_namespace,
    pk_key,
    record_key,
    serialize_row,
)


class RecordManager:
    """Client-side CRUD layer over the simulated key/value store."""

    def __init__(self, catalog: Catalog, client: StorageClient, views=None):
        self.catalog = catalog
        self.client = client
        #: Optional :class:`~repro.views.maintenance.ViewMaintenanceEngine`.
        #: When set, every successful write additionally applies its delta to
        #: the materialized views driven by the written table, through this
        #: same client (so maintenance is charged to the triggering write).
        self.views = views

    def _view_engine(self, table: Table):
        """The maintenance engine, if any view is driven by ``table``."""
        if self.views is not None and self.views.relevant_views(table.name):
            return self.views
        return None

    @staticmethod
    def _reject_view_backing_writes(table: Table) -> None:
        """Backing tables hold derived state with hidden merge fields; only
        the maintenance engine may write them — direct DML would corrupt
        the aggregates and crash later deltas."""
        if table.backing_view is not None:
            raise SchemaError(
                f"table {table.name!r} backs materialized view "
                f"{table.backing_view!r} and cannot be written directly; "
                "write to the view's driving table instead"
            )

    # ------------------------------------------------------------------
    # Namespace / index setup
    # ------------------------------------------------------------------
    def create_table_storage(self, table: Table) -> None:
        """Create the record namespace for ``table`` (idempotent)."""
        self.client.cluster.create_namespace(table.namespace)

    def create_index_storage(self, index: IndexDefinition) -> None:
        """Create the namespace for a secondary index (idempotent)."""
        self.client.cluster.create_namespace(index_namespace(index))

    def constraint_index(self, table: Table, limit: CardinalityLimit) -> Optional[IndexDefinition]:
        """The index used to count rows for a cardinality constraint.

        Returns ``None`` when the constraint columns are a prefix of the
        primary key (the base records themselves can be counted).
        """
        prefix = list(table.primary_key[: len(limit.columns)])
        if sorted(prefix) == sorted(limit.columns):
            return None
        columns = [IndexColumn(c) for c in limit.columns]
        existing = self.catalog.find_index(table.name, columns)
        if existing is not None:
            return existing
        full = list(columns) + [
            IndexColumn(c) for c in table.primary_key if c not in limit.columns
        ]
        return IndexDefinition(
            name=Catalog.index_name(table.name, full),
            table=table.name,
            columns=tuple(full),
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, table_name: str, pk_values: Sequence[Any]) -> Optional[Dict[str, Any]]:
        """Fetch one record by primary key, or ``None``."""
        table = self.catalog.table(table_name)
        data = self.client.get(table.namespace, pk_key(pk_values))
        return deserialize_row(data) if data is not None else None

    def scan(self, table_name: str, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Full table scan (not scale-independent; used by tests and tools)."""
        table = self.catalog.table(table_name)
        pairs = self.client.get_range(table.namespace, None, None, limit=limit)
        return [deserialize_row(value) for _, value in pairs]

    def count(self, table_name: str) -> int:
        """Total number of records in a table (tests and tools only)."""
        table = self.catalog.table(table_name)
        return self.client.cluster.namespace_size(table.namespace)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    @contextmanager
    def _write_span(self, operation: str, table_name: str) -> Iterator[None]:
        """One ``write`` span around a DML call, when tracing is enabled.

        Everything the write triggers — index maintenance puts, hinted
        handoffs, read repairs, materialized-view deltas — nests under this
        span, so collateral traffic is attributed to the write that caused
        it.
        """
        tracer = self.client.tracer
        if tracer is None:
            yield None
            return
        span = tracer.start_span(
            f"{operation} {table_name}", "write",
            operation=operation, table=table_name,
        )
        try:
            yield None
        finally:
            tracer.end_span(span)

    def insert(
        self,
        table_name: str,
        row: Dict[str, Any],
        enforce_constraints: bool = True,
        upsert: bool = False,
    ) -> Dict[str, Any]:
        """Insert one row, maintaining indexes, views, and constraints."""
        with self._write_span("insert", table_name):
            return self._insert(table_name, row, enforce_constraints, upsert)

    def _insert(
        self,
        table_name: str,
        row: Dict[str, Any],
        enforce_constraints: bool = True,
        upsert: bool = False,
    ) -> Dict[str, Any]:
        table = self.catalog.table(table_name)
        self._reject_view_backing_writes(table)
        validated = table.validate_row(row)
        key = record_key(table, validated)
        payload = serialize_row(validated)

        # 0. When this table drives materialized views, an overwriting put
        #    must read the previous row to retract its view contribution;
        #    with the old row in hand, stale index entries it left behind
        #    are cleaned up too.  Tables without views keep the legacy
        #    upsert behaviour — a changed indexed value leaves a dangling
        #    (garbage-collectable) entry, per Section 7.2's crash semantics
        #    — because reading the old row on every upsert would charge
        #    every existing write path for a rarely-needed cleanup.
        views = self._view_engine(table)
        indexes = self.catalog.indexes_for_table(table.name)
        overwrites = not (enforce_constraints and not upsert)
        old_row: Optional[Dict[str, Any]] = None
        if overwrites and views is not None:
            old_payload = self.client.get(table.namespace, key)
            old_row = deserialize_row(old_payload) if old_payload is not None else None

        # 1. Write the new secondary index entries first (Section 7.2).
        for index in indexes:
            namespace = index_namespace(index)
            for entry_key, entry_value in index_entries(index, table, validated):
                self.client.put(namespace, entry_key, entry_value)

        # 2. Write (or conditionally write) the base record.
        if enforce_constraints and not upsert:
            inserted = self.client.test_and_set(table.namespace, key, None, payload)
            if not inserted:
                # Undo the entries written in step 1 — but only those the
                # surviving row does not share: when the duplicate's indexed
                # values equal the survivor's, the entry keys coincide and a
                # blind delete would strip the live row out of its indexes.
                survivor_payload = self.client.get(table.namespace, key)
                if survivor_payload is not None:
                    self._delete_stale_entries(
                        table, validated, deserialize_row(survivor_payload)
                    )
                else:
                    self._remove_index_entries(table, validated)
                raise UniquenessViolationError(
                    f"primary key {tuple(table.primary_key_values(validated))!r} "
                    f"already exists in table {table.name!r}"
                )
        else:
            self.client.put(table.namespace, key, payload)
            if old_row is not None:
                # Overwrote an existing row: its entries for changed indexed
                # values are now stale (same ordering rule as update()).
                self._delete_stale_entries(table, old_row, validated)

        # 2b. Apply the delta to materialized views (before the constraint
        #     check: a violation's undo path retracts it again via delete).
        if views is not None:
            if old_row is not None:
                views.on_update(table.name, old_row, validated)
            else:
                views.on_insert(table.name, validated)

        # 3. Check cardinality constraints; undo the insert on violation.
        if enforce_constraints:
            for limit in table.cardinality_limits:
                if not self._within_cardinality(table, limit, validated):
                    self.delete(table.name, table.primary_key_values(validated))
                    raise CardinalityViolationError(
                        f"inserting into {table.name!r} would exceed "
                        f"CARDINALITY LIMIT {limit.limit} on "
                        f"({', '.join(limit.columns)})",
                        constraint=",".join(limit.columns),
                    )
        return validated

    def update(self, table_name: str, row: Dict[str, Any]) -> Dict[str, Any]:
        """Replace the record with the same primary key as ``row``.

        Index entries whose key is unchanged by the update are neither
        rewritten nor deleted — an update that leaves every indexed value
        alone costs no index RPCs at all.  (The entry *value* is the
        serialised primary key, which an update cannot change.)  The write
        order for genuinely changed entries stays crash-safe: new entries
        before the base record, stale entries deleted after it.
        """
        with self._write_span("update", table_name):
            return self._update(table_name, row)

    def _update(self, table_name: str, row: Dict[str, Any]) -> Dict[str, Any]:
        table = self.catalog.table(table_name)
        self._reject_view_backing_writes(table)
        validated = table.validate_row(row)
        key = record_key(table, validated)
        old_payload = self.client.get(table.namespace, key)
        old_row = deserialize_row(old_payload) if old_payload is not None else None

        stale: List[tuple] = []
        for index in self.catalog.indexes_for_table(table.name):
            namespace = index_namespace(index)
            new_entries = dict(index_entries(index, table, validated))
            old_keys = (
                {k for k, _ in index_entries(index, table, old_row)}
                if old_row is not None
                else set()
            )
            for entry_key, entry_value in new_entries.items():
                if entry_key not in old_keys:
                    self.client.put(namespace, entry_key, entry_value)
            stale.extend(
                (namespace, entry_key)
                for entry_key in old_keys
                if entry_key not in new_entries
            )
        self.client.put(table.namespace, key, serialize_row(validated))
        for namespace, entry_key in stale:
            self.client.delete(namespace, entry_key)
        views = self._view_engine(table)
        if views is not None:
            # The engine itself skips no-op deltas (unchanged grouped and
            # aggregated values contribute nothing).
            if old_row is not None:
                views.on_update(table.name, old_row, validated)
            else:
                views.on_insert(table.name, validated)
        return validated

    def delete(self, table_name: str, pk_values: Sequence[Any]) -> bool:
        """Delete one record by primary key; returns whether it existed."""
        with self._write_span("delete", table_name):
            return self._delete(table_name, pk_values)

    def _delete(self, table_name: str, pk_values: Sequence[Any]) -> bool:
        table = self.catalog.table(table_name)
        self._reject_view_backing_writes(table)
        key = pk_key(list(pk_values))
        payload = self.client.get(table.namespace, key)
        existed = self.client.delete(table.namespace, key)
        if payload is not None:
            row = deserialize_row(payload)
            self._remove_index_entries(table, row)
            views = self._view_engine(table)
            if views is not None:
                views.on_delete(table.name, row)
        return existed

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def bulk_load(
        self,
        table_name: str,
        rows: Iterable[Dict[str, Any]],
        memory_budget_bytes: Optional[int] = None,
    ) -> int:
        """Load many rows without charging simulated latency or checking constraints.

        Mirrors the paper's experimental methodology, which bulk loads each
        benchmark dataset before measuring.  Returns the number of rows
        loaded.

        ``memory_budget_bytes`` opts into the cluster's spilling bulk-load
        pipeline: base records and index entries are staged in an external
        sort bounded by the budget and ingested segment-at-a-time by each
        node's engine, so arbitrarily large datasets load in bounded
        memory.  Tables that drive materialized views fall back to the
        per-row path — view deltas are computed row by row.
        """
        table = self.catalog.table(table_name)
        self._reject_view_backing_writes(table)
        cluster: KeyValueCluster = self.client.cluster
        indexes = self.catalog.indexes_for_table(table.name)
        views = self._view_engine(table)
        if memory_budget_bytes is not None and views is None:
            loaded = 0

            def triples() -> Iterable[tuple]:
                nonlocal loaded
                for row in rows:
                    validated = table.validate_row(row)
                    yield (
                        table.namespace,
                        record_key(table, validated),
                        serialize_row(validated),
                    )
                    for index in indexes:
                        namespace = index_namespace(index)
                        for entry_key, entry_value in index_entries(
                            index, table, validated
                        ):
                            yield namespace, entry_key, entry_value
                    loaded += 1

            cluster.bulk_load_many(triples(), memory_budget_bytes)
            return loaded
        count = 0
        for row in rows:
            validated = table.validate_row(row)
            cluster.load(
                table.namespace, record_key(table, validated), serialize_row(validated)
            )
            for index in indexes:
                namespace = index_namespace(index)
                for entry_key, entry_value in index_entries(index, table, validated):
                    cluster.load(namespace, entry_key, entry_value)
            if views is not None:
                views.on_insert(table.name, validated, billed=False)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _within_cardinality(
        self, table: Table, limit: CardinalityLimit, row: Dict[str, Any]
    ) -> bool:
        values = [row[c] for c in limit.columns]
        index = self.constraint_index(table, limit)
        if index is None:
            namespace = table.namespace
            start, end = prefix_range(values)
        else:
            if not self.catalog.has_index(index.name):
                raise SchemaError(
                    f"cardinality constraint on {table.name}"
                    f"({', '.join(limit.columns)}) requires index {index.name!r}; "
                    "create tables through PiqlDatabase so constraint indexes "
                    "are provisioned automatically"
                )
            namespace = index_namespace(index)
            start, end = prefix_range(values)
        count = self.client.count_range(namespace, start, end)
        return count <= limit.limit

    def _remove_index_entries(self, table: Table, row: Dict[str, Any]) -> None:
        for index in self.catalog.indexes_for_table(table.name):
            namespace = index_namespace(index)
            for entry_key, _ in index_entries(index, table, row):
                self.client.delete(namespace, entry_key)

    def _delete_stale_entries(
        self, table: Table, old_row: Dict[str, Any], new_row: Dict[str, Any]
    ) -> None:
        for index in self.catalog.indexes_for_table(table.name):
            namespace = index_namespace(index)
            new_keys = {key for key, _ in index_entries(index, table, new_row)}
            for entry_key, _ in index_entries(index, table, old_row):
                if entry_key not in new_keys:
                    self.client.delete(namespace, entry_key)
