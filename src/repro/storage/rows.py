"""Row (tuple) serialisation and key construction.

Rows are stored in the key/value store as JSON-encoded dictionaries keyed by
their order-preserving primary-key encoding.  Secondary index entries store
the serialised primary key as their value so that the execution engine can
dereference an index entry with a single point ``get`` (the "extra round
trip" of Section 5.1).

Deserialisation is the hottest CPU path of the serving loops (every fetched
record and every dereferenced index entry passes through it), so the
decoders here are memoized behind small bounded caches keyed by the payload
bytes.  The caches use a two-generation scheme — fill the young generation
up to capacity, then demote it wholesale — which keeps every operation O(1)
and makes concurrent access from the benchmark harness's threads safe under
the GIL (worst case a few extra decodes, never a wrong result).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..schema.ddl import IndexDefinition, Table
from ..schema.keys import encode_key
from .fulltext import tokenize

#: Per-generation capacity of the payload-decode caches.  Two generations
#: are live at once, so the worst-case footprint is twice this many entries.
ROW_CACHE_CAPACITY = 4096


class _TwoGenerationCache:
    """A bounded memo table with O(1) insert/lookup and coarse LRU-ish reuse."""

    __slots__ = ("capacity", "young", "old", "hits", "misses")

    def __init__(self, capacity: int = ROW_CACHE_CAPACITY):
        self.capacity = capacity
        self.young: Dict[bytes, Any] = {}
        self.old: Dict[bytes, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: bytes) -> Optional[Any]:
        value = self.young.get(key)
        if value is None:
            value = self.old.get(key)
            if value is None:
                self.misses += 1
                return None
        self.hits += 1
        return value

    def put(self, key: bytes, value: Any) -> None:
        if len(self.young) >= self.capacity:
            self.old = self.young
            self.young = {}
        self.young[key] = value

    def clear(self) -> None:
        self.young = {}
        self.old = {}
        self.hits = 0
        self.misses = 0


_row_cache = _TwoGenerationCache()
_pk_key_cache = _TwoGenerationCache()


def serialize_row(row: Dict[str, Any]) -> bytes:
    """Serialise a row dictionary to compact JSON bytes."""
    return json.dumps(row, separators=(",", ":"), sort_keys=True).encode("utf-8")


def deserialize_row(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`serialize_row` (memoized on the payload bytes).

    Cache hits return a shallow copy so callers may mutate the row dict
    freely; the column values themselves are shared, which is safe for the
    scalar types the engine stores.
    """
    cached = _row_cache.get(data)
    if cached is not None:
        return dict(cached)
    row = json.loads(data.decode("utf-8"))
    _row_cache.put(data, row)
    return dict(row)


def cached_pk_key(payload: bytes) -> bytes:
    """Record key referenced by a secondary-index entry payload.

    Equivalent to ``pk_key(deserialize_pk(payload))`` but interned on the
    payload bytes: dereferencing hot index entries skips both the JSON
    decode and the key re-encoding.  The returned bytes are immutable, so
    the cache can hand out the same object forever.
    """
    key = _pk_key_cache.get(payload)
    if key is None:
        key = encode_key(json.loads(payload.decode("utf-8")))
        _pk_key_cache.put(payload, key)
    return key


def row_cache_stats() -> Dict[str, Tuple[int, int]]:
    """``{"rows": (hits, misses), "pk_keys": (hits, misses)}`` (diagnostics)."""
    return {
        "rows": (_row_cache.hits, _row_cache.misses),
        "pk_keys": (_pk_key_cache.hits, _pk_key_cache.misses),
    }


def clear_row_caches() -> None:
    """Drop both payload-decode caches (tests and long-lived processes)."""
    _row_cache.clear()
    _pk_key_cache.clear()


def serialize_pk(values: Sequence[Any]) -> bytes:
    """Serialise primary-key values for storage in index-entry payloads."""
    return json.dumps(list(values), separators=(",", ":")).encode("utf-8")


def deserialize_pk(data: bytes) -> List[Any]:
    """Inverse of :func:`serialize_pk`."""
    return json.loads(data.decode("utf-8"))


def record_key(table: Table, row: Dict[str, Any]) -> bytes:
    """The key under which ``row`` is stored in the table's namespace."""
    return encode_key(table.primary_key_values(row))


def pk_key(values: Sequence[Any]) -> bytes:
    """Encode explicit primary-key values into a record key."""
    return encode_key(list(values))


def index_namespace(index: IndexDefinition) -> str:
    """Key/value namespace holding the entries of a secondary index."""
    return f"index:{index.name.lower()}"


def index_entries(index: IndexDefinition, table: Table, row: Dict[str, Any]):
    """Yield ``(key, value)`` pairs this row contributes to ``index``.

    A tokenised column contributes one entry per distinct token of its
    value; other columns contribute their value directly.  The entry key is
    the index column values followed by the primary key (making entries
    unique); the value is the serialised primary key for dereferencing.
    """
    pk_values = table.primary_key_values(row)
    payload = serialize_pk(pk_values)

    def expand(position: int, prefix: List[Any]):
        if position == len(index.columns):
            yield encode_key(prefix + pk_values), payload
            return
        column = index.columns[position]
        value = row.get(column.name)
        if column.tokenized:
            tokens = tokenize(value) if isinstance(value, str) else []
            if not tokens:
                return
            for token in tokens:
                yield from expand(position + 1, prefix + [token])
        else:
            yield from expand(position + 1, prefix + [value])

    yield from expand(0, [])
