"""Row (tuple) serialisation and key construction.

Rows are stored in the key/value store as JSON-encoded dictionaries keyed by
their order-preserving primary-key encoding.  Secondary index entries store
the serialised primary key as their value so that the execution engine can
dereference an index entry with a single point ``get`` (the "extra round
trip" of Section 5.1).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from ..schema.ddl import IndexDefinition, Table
from ..schema.keys import encode_key
from .fulltext import tokenize


def serialize_row(row: Dict[str, Any]) -> bytes:
    """Serialise a row dictionary to compact JSON bytes."""
    return json.dumps(row, separators=(",", ":"), sort_keys=True).encode("utf-8")


def deserialize_row(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`serialize_row`."""
    return json.loads(data.decode("utf-8"))


def serialize_pk(values: Sequence[Any]) -> bytes:
    """Serialise primary-key values for storage in index-entry payloads."""
    return json.dumps(list(values), separators=(",", ":")).encode("utf-8")


def deserialize_pk(data: bytes) -> List[Any]:
    """Inverse of :func:`serialize_pk`."""
    return json.loads(data.decode("utf-8"))


def record_key(table: Table, row: Dict[str, Any]) -> bytes:
    """The key under which ``row`` is stored in the table's namespace."""
    return encode_key(table.primary_key_values(row))


def pk_key(values: Sequence[Any]) -> bytes:
    """Encode explicit primary-key values into a record key."""
    return encode_key(list(values))


def index_namespace(index: IndexDefinition) -> str:
    """Key/value namespace holding the entries of a secondary index."""
    return f"index:{index.name.lower()}"


def index_entries(index: IndexDefinition, table: Table, row: Dict[str, Any]):
    """Yield ``(key, value)`` pairs this row contributes to ``index``.

    A tokenised column contributes one entry per distinct token of its
    value; other columns contribute their value directly.  The entry key is
    the index column values followed by the primary key (making entries
    unique); the value is the serialised primary key for dereferencing.
    """
    pk_values = table.primary_key_values(row)
    payload = serialize_pk(pk_values)

    def expand(position: int, prefix: List[Any]):
        if position == len(index.columns):
            yield encode_key(prefix + pk_values), payload
            return
        column = index.columns[position]
        value = row.get(column.name)
        if column.tokenized:
            tokens = tokenize(value) if isinstance(value, str) else []
            if not tokens:
                return
            for token in tokens:
                yield from expand(position + 1, prefix + [token])
        else:
            yield from expand(position + 1, prefix + [value])

    yield from expand(0, [])
