"""Tokenisation for inverted full-text indexes (Section 7.3).

PIQL does not evaluate arbitrary ``LIKE`` patterns — that would require
scanning an ever-growing amount of data and is therefore not
scale-independent.  Instead, string search is supported through an inverted
index over lower-cased word tokens; a ``LIKE [1: word]`` predicate becomes
an equality lookup of that token in the index.
"""

from __future__ import annotations

import re
from typing import List

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Split ``text`` into distinct lower-case alphanumeric tokens.

    Order of first appearance is preserved so that index-entry generation is
    deterministic; duplicates are removed because an inverted index needs a
    single posting per (token, document).
    """
    if not text:
        return []
    seen = set()
    tokens: List[str] = []
    for token in _TOKEN_RE.findall(text.lower()):
        if token not in seen:
            seen.add(token)
            tokens.append(token)
    return tokens


def query_token(value: str) -> str:
    """Normalise a user-supplied search term to a single token.

    ``LIKE`` patterns may arrive with SQL wildcards (``%word%``); those are
    stripped.  Multi-word search terms use only the first token — matching
    the prototype's single-token keyword search.
    """
    tokens = tokenize(value.replace("%", " "))
    return tokens[0] if tokens else ""
