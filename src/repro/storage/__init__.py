"""Client-side record manager, secondary indexes, and full-text tokenisation."""

from .fulltext import query_token, tokenize
from .record_manager import RecordManager
from .rows import (
    deserialize_pk,
    deserialize_row,
    index_entries,
    index_namespace,
    pk_key,
    record_key,
    serialize_pk,
    serialize_row,
)

__all__ = [
    "RecordManager",
    "deserialize_pk",
    "deserialize_row",
    "index_entries",
    "index_namespace",
    "pk_key",
    "query_token",
    "record_key",
    "serialize_pk",
    "serialize_row",
    "tokenize",
]
