"""Simulated distributed key/value store cluster.

The cluster is the stateful half of PIQL's architecture (Figure 2 in the
paper).  It exposes exactly the operations PIQL requires from a key/value
store (Section 3):

* point ``get`` / ``put`` / ``delete`` with predictable latency,
* ``test_and_set`` (used for uniqueness constraints and conditional updates),
* **range requests** over an order-preserving key encoding (used by index
  scans), and
* ``count_range`` (used by the cardinality-constraint insert protocol).

Data is stored exactly (one logically-global ordered map per namespace) so
query results are always correct; performance is simulated by attributing
each request to a storage node chosen by a hash-based partitioner and
charging a latency from that node's service-time model.  Every call returns
an :class:`OpResult` carrying the charged latency so callers (the
:class:`~repro.kvstore.client.StorageClient`) can advance their simulated
clocks and combine sequential/parallel request latencies correctly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from .latency import LatencyParameters
from .memory import OrderedKVMap
from .node import StorageNode

KeyValue = Tuple[bytes, bytes]


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of a simulated cluster.

    Parameters mirror the experimental setup in Section 8 of the paper:
    a number of storage nodes, two-fold replication, and a per-node
    capacity that drives queueing under load.

    ``replica_seed`` salts replica selection in :meth:`KeyValueCluster.route`;
    it defaults to ``seed``.  Routing is a pure function of ``(key,
    replica_seed)``, so runs with many interleaved clients pick the same
    replicas no matter the order in which their requests arrive.
    """

    storage_nodes: int = 10
    replication: int = 2
    node_capacity_ops_per_second: float = 4000.0
    latency: LatencyParameters = field(default_factory=LatencyParameters)
    seed: int = 0
    replica_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.storage_nodes < 1:
            raise ValueError("storage_nodes must be >= 1")
        if not (1 <= self.replication <= self.storage_nodes):
            raise ValueError("replication must be between 1 and storage_nodes")

    @property
    def effective_replica_seed(self) -> int:
        return self.seed if self.replica_seed is None else self.replica_seed


@dataclass(frozen=True)
class OpResult:
    """Result of a single cluster operation.

    Attributes
    ----------
    value:
        Operation-specific payload (a value, a list of key/value pairs, a
        count, or a success flag).
    latency_seconds:
        Simulated latency charged for the operation.
    node_id:
        The node that served the request (for diagnostics).
    keys_touched:
        How many keys the request read or wrote; used to verify operation
        bounds in tests.
    """

    value: object
    latency_seconds: float
    node_id: int
    keys_touched: int = 1


class KeyValueCluster:
    """An in-process simulation of a partitioned, replicated key/value store."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        self._namespaces: Dict[str, OrderedKVMap] = {}
        self._offered_load_total = 0.0
        self.nodes: List[StorageNode] = [
            StorageNode.create(
                node_id=i,
                params=self.config.latency,
                seed=self.config.seed,
                capacity_ops_per_second=self.config.node_capacity_ops_per_second,
            )
            for i in range(self.config.storage_nodes)
        ]

    # ------------------------------------------------------------------
    # Namespace management
    # ------------------------------------------------------------------
    def create_namespace(self, name: str) -> None:
        """Create an (empty) namespace; creating an existing one is a no-op."""
        self._namespaces.setdefault(name, OrderedKVMap())

    def drop_namespace(self, name: str) -> None:
        """Remove a namespace and all its data."""
        self._namespaces.pop(name, None)

    def namespaces(self) -> List[str]:
        """Names of all namespaces, sorted."""
        return sorted(self._namespaces)

    def namespace_size(self, name: str) -> int:
        """Number of keys stored in a namespace."""
        return len(self._require(name))

    def _require(self, name: str) -> OrderedKVMap:
        try:
            return self._namespaces[name]
        except KeyError:
            raise ExecutionError(f"unknown namespace: {name!r}") from None

    # ------------------------------------------------------------------
    # Partitioning / load
    # ------------------------------------------------------------------
    def route(self, namespace: str, key: bytes) -> StorageNode:
        """Pick the node (among replicas) that serves a request for ``key``.

        The replica choice is a pure function of the key and the configured
        ``replica_seed``, never of shared mutable state, so experiments that
        interleave many clients route identically from run to run regardless
        of request arrival order.
        """
        digest = zlib.crc32(namespace.encode("utf-8") + b"\x00" + key)
        primary = digest % len(self.nodes)
        if self.config.replication > 1:
            seed = self.config.effective_replica_seed & 0xFFFFFFFF
            salt = zlib.crc32(key, digest ^ seed)
            offset = salt % self.config.replication
        else:
            offset = 0
        return self.nodes[(primary + offset) % len(self.nodes)]

    # Backwards-compatible internal alias.
    _node_for_key = route

    def set_offered_load(self, total_ops_per_second: float) -> None:
        """Spread an offered operation rate evenly over the nodes.

        The benchmark harness calls this to model a cluster serving a given
        aggregate request rate; each node's utilisation then inflates its
        latencies through the queueing factor.
        """
        self._offered_load_total = total_ops_per_second
        per_node = total_ops_per_second / len(self.nodes)
        for node in self.nodes:
            node.set_offered_load(per_node)

    def total_capacity_ops_per_second(self) -> float:
        """Aggregate sustainable operation rate of the live node set."""
        return sum(node.capacity_ops_per_second for node in self.nodes)

    def add_node(self) -> StorageNode:
        """Grow the cluster by one storage node (elastic provisioning).

        Data never moves (namespaces are logically global); adding a node
        only changes how requests are attributed, spreading load over more
        performance models.  ``config.storage_nodes`` keeps the provisioned
        size; ``len(cluster.nodes)`` is the live size.
        """
        # node_id doubles as the node's index in ``self.nodes`` (replica
        # placement and batched reads rely on it), so ids stay contiguous:
        # removals pop from the tail and additions reuse the next slot.
        node = StorageNode.create(
            node_id=len(self.nodes),
            params=self.config.latency,
            seed=self.config.seed,
            capacity_ops_per_second=self.config.node_capacity_ops_per_second,
        )
        self.nodes.append(node)
        self._respread_static_load()
        return node

    def remove_node(self) -> StorageNode:
        """Shrink the cluster by one node (the most recently added)."""
        if len(self.nodes) <= self.config.replication:
            raise ExecutionError(
                "cannot shrink below the replication factor "
                f"({self.config.replication})"
            )
        node = self.nodes.pop()
        self._respread_static_load()
        return node

    def _respread_static_load(self) -> None:
        """After a topology change, re-spread a statically configured load.

        Only when a static aggregate load was set: if per-node utilisation
        is being driven from measured rates (the serving tier's control
        loop), re-spreading would wipe those measurements with zeros — the
        next control tick refreshes them instead.
        """
        if self._offered_load_total > 0:
            self.set_offered_load(self._offered_load_total)

    def reset_stats(self) -> None:
        """Reset per-node operation counters."""
        for node in self.nodes:
            node.stats.reset()

    def total_keys_stored(self) -> int:
        """Total number of keys across all namespaces (before replication)."""
        return sum(len(ns) for ns in self._namespaces.values())

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def load(self, namespace: str, key: bytes, value: bytes) -> None:
        """Store a key without charging any latency.

        Used for bulk-loading benchmark datasets; the paper's experiments
        likewise bulk load their data before measuring (Section 8.4).
        """
        self._require(namespace).put(key, value)

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(self, namespace: str, key: bytes, sim_time: float = 0.0) -> OpResult:
        """Read one key; ``value`` is the bytes stored or ``None``."""
        ns = self._require(namespace)
        value = ns.get(key)
        node = self._node_for_key(namespace, key)
        nbytes = len(value) if value is not None else 0
        latency = node.charge_read(1, nbytes, sim_time)
        return OpResult(value, latency, node.node_id, keys_touched=1)

    def put(
        self, namespace: str, key: bytes, value: bytes, sim_time: float = 0.0
    ) -> OpResult:
        """Write one key.  Writes are replicated; latency is the slowest replica."""
        ns = self._require(namespace)
        ns.put(key, value)
        latency = 0.0
        node = self._node_for_key(namespace, key)
        for replica in range(self.config.replication):
            replica_node = self.nodes[(node.node_id + replica) % len(self.nodes)]
            latency = max(
                latency, replica_node.charge_write(1, len(value), sim_time)
            )
        return OpResult(True, latency, node.node_id, keys_touched=1)

    def delete(self, namespace: str, key: bytes, sim_time: float = 0.0) -> OpResult:
        """Delete one key; ``value`` is ``True`` if the key existed."""
        ns = self._require(namespace)
        existed = ns.delete(key)
        node = self._node_for_key(namespace, key)
        latency = node.charge_write(1, 0, sim_time)
        return OpResult(existed, latency, node.node_id, keys_touched=1)

    def test_and_set(
        self,
        namespace: str,
        key: bytes,
        expected: Optional[bytes],
        new_value: bytes,
        sim_time: float = 0.0,
    ) -> OpResult:
        """Compare-and-swap; ``value`` is ``True`` iff the swap happened."""
        ns = self._require(namespace)
        ok = ns.test_and_set(key, expected, new_value)
        node = self._node_for_key(namespace, key)
        latency = node.charge_write(1, len(new_value), sim_time)
        return OpResult(ok, latency, node.node_id, keys_touched=1)

    # ------------------------------------------------------------------
    # Batched point reads
    # ------------------------------------------------------------------
    def multi_get(
        self,
        namespace: str,
        keys: Sequence[bytes],
        parallel: bool = True,
        sim_time: float = 0.0,
    ) -> OpResult:
        """Read many keys in one logical request.

        When ``parallel`` is true the keys are grouped by serving node, each
        group is charged a single RPC, and the overall latency is the
        maximum over groups (requests issued concurrently).  When false the
        keys are fetched one at a time and latencies add up — this is what
        the Lazy executor of Figure 12 does.
        """
        ns = self._require(namespace)
        values = [ns.get(k) for k in keys]
        if not keys:
            return OpResult([], 0.0, 0, keys_touched=0)
        if parallel:
            groups: Dict[int, List[bytes]] = {}
            for key in keys:
                node = self._node_for_key(namespace, key)
                groups.setdefault(node.node_id, []).append(key)
            latency = 0.0
            for node_id, group in groups.items():
                nbytes = sum(
                    len(ns.get(k)) if ns.get(k) is not None else 0 for k in group
                )
                latency = max(
                    latency,
                    self.nodes[node_id].charge_read(len(group), nbytes, sim_time),
                )
            return OpResult(values, latency, -1, keys_touched=len(keys))
        latency = 0.0
        for key in keys:
            node = self._node_for_key(namespace, key)
            value = ns.get(key)
            nbytes = len(value) if value is not None else 0
            latency += node.charge_read(1, nbytes, sim_time)
        return OpResult(values, latency, -1, keys_touched=len(keys))

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------
    def get_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int] = None,
        ascending: bool = True,
        sim_time: float = 0.0,
    ) -> OpResult:
        """Return ``(key, value)`` pairs with ``start <= key < end``.

        A bounded range (both endpoints given, typically a key prefix) is
        served by a single node.  An unbounded scan touches every node and
        its latency is the *sum* of per-node scan latencies, which is what
        makes table scans scale-dependent.
        """
        ns = self._require(namespace)
        pairs = ns.range(start, end, limit, ascending)
        nbytes = sum(len(v) for _, v in pairs)
        if start is not None and end is not None:
            node = self._node_for_key(namespace, start)
            latency = node.charge_range(len(pairs), nbytes, sim_time)
            return OpResult(pairs, latency, node.node_id, keys_touched=len(pairs))
        # Full (or half-open) scan: every partition must be visited.
        latency = 0.0
        per_node_keys = max(1, len(pairs) // len(self.nodes))
        per_node_bytes = max(0, nbytes // len(self.nodes))
        for node in self.nodes:
            latency += node.charge_range(per_node_keys, per_node_bytes, sim_time)
        return OpResult(pairs, latency, -1, keys_touched=len(pairs))

    def multi_get_range(
        self,
        namespace: str,
        ranges: Sequence[Tuple[Optional[bytes], Optional[bytes], Optional[int], bool]],
        parallel: bool = True,
        sim_time: float = 0.0,
    ) -> OpResult:
        """Issue several bounded range requests as one logical request.

        Used by the SortedIndexJoin operator, which needs one range request
        per tuple of its child.  With ``parallel=True`` the overall latency
        is the max over the individual requests, otherwise the sum.
        """
        results: List[List[KeyValue]] = []
        latencies: List[float] = []
        keys_touched = 0
        for start, end, limit, ascending in ranges:
            result = self.get_range(
                namespace, start, end, limit, ascending, sim_time=sim_time
            )
            results.append(result.value)  # type: ignore[arg-type]
            latencies.append(result.latency_seconds)
            keys_touched += result.keys_touched
        if not latencies:
            return OpResult([], 0.0, -1, keys_touched=0)
        latency = max(latencies) if parallel else sum(latencies)
        return OpResult(results, latency, -1, keys_touched=keys_touched)

    def count_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        sim_time: float = 0.0,
    ) -> OpResult:
        """Count keys in a range (used by the cardinality insert protocol)."""
        ns = self._require(namespace)
        count = ns.count_range(start, end)
        anchor = start if start is not None else b""
        node = self._node_for_key(namespace, anchor)
        latency = node.charge_range(1, 8, sim_time)
        return OpResult(count, latency, node.node_id, keys_touched=1)
