"""Simulated distributed key/value store cluster with real replication.

The cluster is the stateful half of PIQL's architecture (Figure 2 in the
paper).  It exposes exactly the operations PIQL requires from a key/value
store (Section 3):

* point ``get`` / ``put`` / ``delete`` with predictable latency,
* ``test_and_set`` (used for uniqueness constraints and conditional updates),
* **range requests** over an order-preserving key encoding (used by index
  scans), and
* ``count_range`` (used by the cardinality-constraint insert protocol).

Since the replication tier landed, data is **physically replicated**: a
consistent-hashing ring (:mod:`repro.replication.ring`) places every key on
``replication`` distinct storage nodes, each node stores its own versioned
copy (:mod:`repro.replication.store`), and the data path is quorum
scatter-gather:

* writes go to every up replica and acknowledge once the ``W`` fastest have
  answered; replicas that are down get **hinted handoff** (the coordinator
  buffers the write and replays it at recovery);
* reads consult ``R`` replicas (chosen deterministically per key so
  interleaved clients route identically), resolve conflicts newest-sequence-
  wins, and **read-repair** stale replicas in the background;
* range requests merge every up node's slice of the range and charge the
  replicas that actually served winning records;
* topology changes (node added / removed / recovered) trigger
  **anti-entropy repair** that re-replicates under-replicated records.

``R + W > N`` is enforced at configuration time, so any read quorum
intersects any write quorum: killing fewer nodes than the replication
factor never loses an acknowledged write.  When too many replicas are down
for an operation's quorum, the cluster raises the typed
:class:`~repro.errors.QuorumNotMetError` /
:class:`~repro.errors.UnavailableError` instead of serving wrong answers.

Every call returns an :class:`OpResult` carrying the charged latency so
callers (the :class:`~repro.kvstore.client.StorageClient`) can advance
their simulated clocks and combine sequential/parallel request latencies
correctly.
"""

from __future__ import annotations

import os
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import (
    ExecutionError,
    QuorumNotMetError,
    RpcTimeoutError,
    UnavailableError,
)
from ..obs.metrics import MetricsRegistry
from ..replication.manager import RepairReport, ReplicationManager
from ..replication.store import (
    MISSING_SEQ,
    decode_record,
    encode_record,
    record_seq,
)
from .engine import create_engine
from .engine.base import EngineRecovery, StorageEngine
from .engine.external import SpillPool
from .latency import LatencyParameters
from .network import CLIENT, NetworkModel
from .node import StorageNode

KeyValue = Tuple[bytes, bytes]

#: Server-side range-filter hook: ``filter(key, value) -> keep?``.  Installed
#: per-request by the execution engine's predicate pushdown.
RecordFilter = Callable[[bytes, bytes], bool]


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of a simulated cluster.

    Parameters mirror the experimental setup in Section 8 of the paper:
    a number of storage nodes, two-fold replication, and a per-node
    capacity that drives queueing under load.

    ``read_quorum`` (R) and ``write_quorum`` (W) control the consistency
    level; they default to ``R=1, W=replication`` (read-one/write-all, the
    closest match to the seed simulator's behaviour) and must satisfy
    ``R + W > replication`` so read and write quorums always intersect.

    ``replica_seed`` salts which replicas serve reads; it defaults to
    ``seed``.  Routing is a pure function of ``(key, replica_seed,
    topology)``, so runs with many interleaved clients pick the same
    replicas no matter the order in which their requests arrive.

    ``storage_engine`` selects each node's physical storage: ``"dict"``
    (in-memory, the seed behaviour — bit-identical results and operation
    counts with every earlier run) or ``"lsm"`` (the persistent LSM-lite
    engine: WAL, segment files, compaction, real crash recovery).
    ``engine_options`` is passed through to the engine factory; the lsm
    engine's ``data_dir`` defaults to a cluster-owned temporary directory
    that is removed on :meth:`KeyValueCluster.close`.  Engine choice never
    changes query results, charged latencies, or per-node operation counts
    — only what happens beneath them.
    """

    storage_nodes: int = 10
    replication: int = 2
    node_capacity_ops_per_second: float = 4000.0
    latency: LatencyParameters = field(default_factory=LatencyParameters)
    seed: int = 0
    replica_seed: Optional[int] = None
    read_quorum: Optional[int] = None
    write_quorum: Optional[int] = None
    vnodes_per_node: int = 128
    storage_engine: str = "dict"
    engine_options: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        if self.storage_nodes < 1:
            raise ValueError("storage_nodes must be >= 1")
        if self.storage_engine not in ("dict", "lsm"):
            raise ValueError(
                f"unknown storage_engine: {self.storage_engine!r} "
                "(use 'dict' or 'lsm')"
            )
        if not (1 <= self.replication <= self.storage_nodes):
            raise ValueError("replication must be between 1 and storage_nodes")
        if self.vnodes_per_node < 1:
            raise ValueError("vnodes_per_node must be >= 1")
        r = self.effective_read_quorum
        w = self.effective_write_quorum
        if not (1 <= r <= self.replication):
            raise ValueError("read_quorum must be between 1 and replication")
        if not (1 <= w <= self.replication):
            raise ValueError("write_quorum must be between 1 and replication")
        if r + w <= self.replication:
            raise ValueError(
                f"need read_quorum + write_quorum > replication "
                f"({r} + {w} <= {self.replication}); overlapping quorums are "
                "what guarantees reads observe acknowledged writes"
            )

    @property
    def effective_replica_seed(self) -> int:
        return self.seed if self.replica_seed is None else self.replica_seed

    @property
    def effective_read_quorum(self) -> int:
        return 1 if self.read_quorum is None else self.read_quorum

    @property
    def effective_write_quorum(self) -> int:
        return self.replication if self.write_quorum is None else self.write_quorum


@dataclass(frozen=True)
class OpResult:
    """Result of a single cluster operation.

    Attributes
    ----------
    value:
        Operation-specific payload (a value, a list of key/value pairs, a
        count, or a success flag).
    latency_seconds:
        Simulated latency charged for the operation.
    node_id:
        The node that served the request (``-1`` when several did).
    keys_touched:
        How many keys the request read or wrote; used to verify operation
        bounds in tests.  For a server-side-filtered range request this is
        the number of keys *examined* (filtered-out keys are still work).
    partial:
        True when a range result may be missing keys because too many
        replicas were down and the caller opted into partial results.
    last_examined_key:
        For filtered range requests: the last key the scan examined, which
        may be later than the last key it shipped.  Pagination cursors must
        resume after the examined position or they would re-examine (and
        re-filter) the same entries forever.
    hinted:
        Down replicas that received a hint instead of the write; the
        triggering client's trace attributes the deferred replay to it.
    repaired:
        Stale replicas read-repaired in the background of this request.
    payload_bytes:
        Bytes shipped back to the client (0 for writes and counts).
    hedged:
        True when a hedge request was issued for this read (the effective
        latency is the faster of the primary and the hedge).
    queue_wait_seconds:
        Queue wait paid by the replica on the latency critical path of a
        quorum point read (zero outside serving mode, and for writes and
        ranges, whose critical-path attribution folds queueing into
        service time).
    unavailable_nodes:
        Preference-list replicas the coordinator skipped because they were
        down or unreachable.  The calling client feeds these into its
        circuit-breaker board: its own traffic repeatedly observing a
        replica unavailable is exactly the per-node failure signal
        client-side breakers fence on, even when the quorum was still met
        without it.
    """

    value: object
    latency_seconds: float
    node_id: int
    keys_touched: int = 1
    partial: bool = False
    last_examined_key: Optional[bytes] = None
    hinted: int = 0
    repaired: int = 0
    payload_bytes: int = 0
    hedged: bool = False
    queue_wait_seconds: float = 0.0
    unavailable_nodes: Tuple[int, ...] = ()


class KeyValueCluster:
    """An in-process simulation of a partitioned, replicated key/value store."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        self._namespace_names: Set[str] = set()
        self._offered_load_total = 0.0
        self.nodes: List[StorageNode] = [
            StorageNode.create(
                node_id=i,
                params=self.config.latency,
                seed=self.config.seed,
                capacity_ops_per_second=self.config.node_capacity_ops_per_second,
            )
            for i in range(self.config.storage_nodes)
        ]
        self.replication = ReplicationManager(
            replication=self.config.replication,
            vnodes_per_node=self.config.vnodes_per_node,
            seed=self.config.effective_replica_seed,
        )
        self._engine_tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self.engines: Dict[int, StorageEngine] = {}
        for node in self.nodes:
            self.replication.attach_node(
                node.node_id, self._create_engine(node.node_id)
            )
        #: Most recent durable-engine recovery (WAL + segment replay).
        self.last_engine_recovery: Optional[EngineRecovery] = None
        #: Anti-entropy report of the most recent topology change / recovery.
        self.last_repair: Optional[RepairReport] = None
        #: Cluster-wide counters (``replication.*``): hinted handoff and
        #: read-repair traffic that no single client's stats can own.
        self.metrics = MetricsRegistry()
        #: Message-level fault plane: every serving RPC (client→node and
        #: node→node) consults it for reachability, drops, and added delay.
        #: Inert by default — a healthy run never touches its RNG.
        self.network = NetworkModel(seed=self.config.seed)

    # ------------------------------------------------------------------
    # Storage engines
    # ------------------------------------------------------------------
    def _create_engine(self, node_id: int) -> StorageEngine:
        """Build (and register) one node's storage engine."""
        options = dict(self.config.engine_options or {})
        if self.config.storage_engine == "lsm" and "data_dir" not in options:
            if self._engine_tmpdir is None:
                self._engine_tmpdir = tempfile.TemporaryDirectory(
                    prefix="repro-lsm-"
                )
            options["data_dir"] = self._engine_tmpdir.name
        engine = create_engine(self.config.storage_engine, node_id, **options)
        self.engines[node_id] = engine
        return engine

    def engine(self, node_id: int) -> StorageEngine:
        """The storage engine backing one node."""
        return self.engines[node_id]

    def flush_storage(self) -> None:
        """Flush every engine's buffered state to durable storage."""
        for engine in self.engines.values():
            engine.flush()

    def engine_maintenance_backlog(self) -> int:
        """Pending background storage-maintenance units across all nodes."""
        return sum(
            engine.maintenance_backlog() for engine in self.engines.values()
        )

    def run_engine_maintenance(self, max_tasks: Optional[int] = None) -> int:
        """Run up to ``max_tasks`` compactions cluster-wide; return the count.

        Background storage maintenance is free in the latency model — it is
        what the serving tier's event kernel schedules between requests, so
        it never appears in any client's charged operation counts.
        """
        ran = 0
        for engine in self.engines.values():
            budget = None if max_tasks is None else max_tasks - ran
            if budget is not None and budget <= 0:
                break
            ran += engine.run_maintenance(budget)
        if ran:
            self.metrics.add("engine.compactions", ran)
        return ran

    def close(self) -> None:
        """Close every engine (flushing durable state) and drop temp dirs."""
        for engine in self.engines.values():
            engine.close()
        if self._engine_tmpdir is not None:
            self._engine_tmpdir.cleanup()
            self._engine_tmpdir = None

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> StorageNode:
        """The node with the given id (ids are contiguous list positions)."""
        return self.nodes[node_id]

    def up_nodes(self) -> List[StorageNode]:
        return [node for node in self.nodes if node.up]

    def up_node_ids(self) -> List[int]:
        return [node.node_id for node in self.nodes if node.up]

    def _available(self, node_id: int) -> bool:
        """Up *and* reachable from the client — what serving paths require.

        A partitioned-away node is indistinguishable from a crashed one to
        the coordinator, so both are treated the same on the request path;
        they differ only in recovery (a partitioned node needs no hint
        replay for writes it already applied).
        """
        return self.nodes[node_id].up and self.network.reachable(
            CLIENT, node_id
        )

    def _serving_ids(self) -> List[int]:
        """Node ids that can serve client traffic right now."""
        if not self.network.active:
            return self.up_node_ids()
        return [
            node.node_id
            for node in self.nodes
            if node.up and self.network.reachable(CLIENT, node.node_id)
        ]

    def crash_node(self, node_id: int) -> StorageNode:
        """Take a node down; its replicas stop serving until recovery.

        On a durable engine the crash is real: all volatile state (memtable,
        open segment readers) is lost and only the WAL and segment files
        survive.  The in-memory dict engine keeps its state in-process —
        the seed simulator's behaviour — and catches up purely through
        hinted handoff and anti-entropy.
        """
        node = self.node(node_id)
        node.mark_down()
        engine = self.engines.get(node_id)
        if engine is not None and engine.durable:
            engine.crash()
        return node

    def recover_node(self, node_id: int, sim_time: float = 0.0) -> RepairReport:
        """Bring a crashed node back: disk recovery, hint replay, anti-entropy.

        A durable engine first rebuilds its pre-crash state from segments
        plus WAL replay (truncating any torn tail, discarding any partially
        written segment).  Hint replay and the anti-entropy pass then cover
        only the *delta* the node missed while down: records recovered from
        disk are already at their pre-crash sequence numbers, so pushing
        them again is a newest-wins no-op and the charged repair traffic is
        identical to the in-memory engine's — acknowledged writes are never
        lost under either engine, and operation counts match arm for arm.

        The records the node catches up on are charged through its latency
        model as one batched write stream per recovery, so a freshly
        recovered node is briefly busy repairing — exactly the failover
        latency the benchmark timeline measures.
        """
        node = self.node(node_id)
        engine = self.engines.get(node_id)
        if engine is not None and engine.durable:
            info = engine.recover()
            self.last_engine_recovery = info
            self.metrics.add("engine.recoveries", 1)
            self.metrics.add("engine.segments_loaded", info.segments_loaded)
            self.metrics.add(
                "engine.wal_records_replayed", info.wal_records_replayed
            )
            self.metrics.add(
                "engine.torn_tail_bytes_dropped", info.torn_tail_bytes_dropped
            )
            self.metrics.add(
                "engine.partial_segments_discarded",
                info.partial_segments_discarded,
            )
        node.mark_up()
        # Anti-entropy can only pull from peers the recovering node can
        # actually talk to: a partition that isolates it defers repair to
        # the next sync after heal.
        sources = [
            nid
            for nid in self.up_node_ids()
            if nid == node_id or self.network.reachable(node_id, nid)
        ]
        report = self.replication.sync_node(node_id, sources)
        self.last_repair = report
        self.metrics.add("replication.hints_replayed", report.hints_replayed)
        self.metrics.add("replication.repair_keys_copied", report.keys_copied)
        self.metrics.add("replication.repair_bytes_copied", report.bytes_copied)
        copies = report.per_node_copies.get(node_id, 0)
        if copies:
            node.charge_write(
                copies, report.per_node_bytes.get(node_id, 0), sim_time
            )
        return report

    def degrade_node(self, node_id: int, factor: float) -> StorageNode:
        """Slow a node down by ``factor`` (degraded-capacity fault)."""
        node = self.node(node_id)
        node.degrade(factor)
        return node

    def restore_node(self, node_id: int) -> StorageNode:
        """Clear a slow-node degradation."""
        node = self.node(node_id)
        node.restore()
        return node

    # ------------------------------------------------------------------
    # Namespace management
    # ------------------------------------------------------------------
    def create_namespace(self, name: str) -> None:
        """Create an (empty) namespace; creating an existing one is a no-op."""
        self._namespace_names.add(name)

    def drop_namespace(self, name: str) -> None:
        """Remove a namespace and all its replica copies."""
        self._namespace_names.discard(name)
        self.replication.drop_namespace(name)

    def namespaces(self) -> List[str]:
        """Names of all namespaces, sorted."""
        return sorted(self._namespace_names)

    def namespace_size(self, name: str) -> int:
        """Number of distinct live keys stored in a namespace.

        Raises :class:`UnavailableError` when enough nodes are down that
        the count could silently miss keys (same rule as range requests).
        """
        self._require(name)
        self._range_may_be_partial(allow_partial=False)
        return self.replication.live_key_count(name, self.up_node_ids())

    def iter_namespace(self, name: str) -> Iterator[KeyValue]:
        """Iterate a namespace's logical ``(key, value)`` content in key order.

        Merges the up replicas newest-wins without charging latency; used by
        index backfill and diagnostics.  Raises
        :class:`UnavailableError` when enough nodes are down that the merge
        could silently miss keys — a backfill run then would build a
        permanently incomplete index.
        """
        self._require(name)
        self._range_may_be_partial(allow_partial=False)
        return self.replication.iter_live(name, self.up_node_ids())

    def _require(self, name: str) -> None:
        if name not in self._namespace_names:
            raise ExecutionError(f"unknown namespace: {name!r}")

    # ------------------------------------------------------------------
    # Placement / replica selection
    # ------------------------------------------------------------------
    def _preference_list(self, namespace: str, key: bytes) -> List[int]:
        return self.replication.preference_list(namespace, key)

    def _rotated_preference(self, namespace: str, key: bytes) -> List[int]:
        """Preference list rotated by a per-key salt.

        The rotation spreads *read* traffic over a key's replicas while
        staying a pure function of ``(key, replica_seed)`` — no shared
        mutable state, so interleaved clients route identically run to run.
        """
        prefs = self._preference_list(namespace, key)
        if len(prefs) <= 1:
            return prefs
        digest = zlib.crc32(namespace.encode("utf-8") + b"\x00" + key)
        seed = self.config.effective_replica_seed & 0xFFFFFFFF
        offset = zlib.crc32(key, digest ^ seed) % len(prefs)
        return prefs[offset:] + prefs[:offset]

    def _read_replicas(
        self,
        namespace: str,
        key: bytes,
        suspects: Optional[Set[int]] = None,
    ) -> Tuple[List[int], Tuple[int, ...]]:
        """The ``R`` available replicas that serve a read of ``key``.

        Returns ``(chosen, unavailable)``: the quorum actually used plus
        the preference-list replicas skipped as down/unreachable — the
        caller surfaces the latter so the client's breakers can fence
        nodes its own traffic keeps observing unavailable.

        Raises :class:`QuorumNotMetError` when fewer than ``R`` replicas of
        the key are up and reachable.  ``suspects`` (nodes whose circuit
        breaker is open at the calling client) are deprioritised: they are
        only chosen when the quorum cannot be met from healthy replicas.
        """
        needed = self.config.effective_read_quorum
        chosen: List[int] = []
        unavailable: List[int] = []
        for node_id in self._rotated_preference(namespace, key):
            if self._available(node_id):
                chosen.append(node_id)
            else:
                unavailable.append(node_id)
        if suspects and len(chosen) > needed:
            healthy = [nid for nid in chosen if nid not in suspects]
            if len(healthy) >= needed:
                chosen = healthy + [nid for nid in chosen if nid in suspects]
        if len(chosen) < needed:
            raise QuorumNotMetError("read", namespace, needed, len(chosen))
        return chosen[:needed], tuple(unavailable)

    def route(self, namespace: str, key: bytes) -> StorageNode:
        """The node that serves a (single-replica) read for ``key``."""
        for node_id in self._rotated_preference(namespace, key):
            if self._available(node_id):
                return self.nodes[node_id]
        raise QuorumNotMetError("read", namespace, 1, 0)

    # Backwards-compatible internal alias.
    _node_for_key = route

    # ------------------------------------------------------------------
    # Load management
    # ------------------------------------------------------------------
    def set_offered_load(self, total_ops_per_second: float) -> None:
        """Spread an offered operation rate evenly over the up nodes.

        The benchmark harness calls this to model a cluster serving a given
        aggregate request rate; each node's utilisation then inflates its
        latencies through the queueing factor.
        """
        self._offered_load_total = total_ops_per_second
        up = self.up_nodes()
        per_node = total_ops_per_second / len(up) if up else 0.0
        for node in self.nodes:
            node.set_offered_load(per_node if node.up else 0.0)

    def total_capacity_ops_per_second(self) -> float:
        """Aggregate sustainable operation rate of the live (up) node set."""
        return sum(
            node.effective_capacity_ops_per_second for node in self.up_nodes()
        )

    def add_node(self) -> StorageNode:
        """Grow the cluster by one storage node (elastic provisioning).

        The new node joins the placement ring and an anti-entropy pass
        copies it the records it now owns (and prunes them from the nodes
        that lost them) — data migration is modelled as background work
        that does not contend with foreground traffic.
        ``config.storage_nodes`` keeps the provisioned size;
        ``len(cluster.nodes)`` is the live size.
        """
        # node_id doubles as the node's index in ``self.nodes`` (replica
        # placement and batched reads rely on it), so ids stay contiguous:
        # removals pop from the tail and additions reuse the next slot.
        node = StorageNode.create(
            node_id=len(self.nodes),
            params=self.config.latency,
            seed=self.config.seed,
            capacity_ops_per_second=self.config.node_capacity_ops_per_second,
        )
        self.nodes.append(node)
        self.replication.attach_node(
            node.node_id, self._create_engine(node.node_id)
        )
        sources = [nid for nid in self.up_node_ids() if nid != node.node_id]
        self.last_repair = self.replication.rebalance(
            sources, set(self.up_node_ids())
        )
        self._respread_static_load()
        return node

    def can_remove_node(self) -> bool:
        """Whether removing the tail node keeps the replication invariant.

        Both the provisioned size and the number of *up* members must stay
        at or above the replication factor; otherwise quorums (and the
        ``ClusterConfig`` invariant ``replication <= storage_nodes``) would
        be silently violated.
        """
        if len(self.nodes) <= self.config.replication:
            return False
        tail = self.nodes[-1]
        up_after = len(self.up_nodes()) - (1 if tail.up else 0)
        return up_after >= self.config.replication

    def remove_node(self) -> StorageNode:
        """Shrink the cluster by one node (the most recently added).

        The leaving node's records are re-replicated onto the surviving
        nodes (using its own store as a source while it is still readable)
        before it is forgotten.  Raises :class:`UnavailableError` when the
        removal would leave fewer nodes — provisioned or up — than the
        replication factor.
        """
        if not self.can_remove_node():
            raise UnavailableError(
                "cannot shrink the cluster below the replication factor "
                f"({self.config.replication}): {len(self.nodes)} provisioned, "
                f"{len(self.up_nodes())} up"
            )
        node = self.nodes[-1]
        manager = self.replication
        manager.ring.remove_node(node.node_id)
        sources = self.up_node_ids()  # still includes the tail if it is up
        targets = {nid for nid in self.up_node_ids() if nid != node.node_id}
        self.last_repair = manager.rebalance(sources, targets)
        manager.forget_node(node.node_id)
        departing = self.engines.pop(node.node_id, None)
        if departing is not None:
            departing.destroy()
        self.nodes.pop()
        self._respread_static_load()
        return node

    def _respread_static_load(self) -> None:
        """After a topology change, re-spread a statically configured load.

        Only when a static aggregate load was set: if per-node utilisation
        is being driven from measured rates (the serving tier's control
        loop), re-spreading would wipe those measurements with zeros — the
        next control tick refreshes them instead.
        """
        if self._offered_load_total > 0:
            self.set_offered_load(self._offered_load_total)

    def reset_stats(self) -> None:
        """Reset per-node operation counters and cluster-wide metrics."""
        for node in self.nodes:
            node.stats.reset()
        self.metrics.reset()

    def metrics_snapshot(self) -> MetricsRegistry:
        """Cluster metrics plus every node's counters rolled into one registry."""
        combined = self.metrics.snapshot()
        for node in self.nodes:
            combined.merge(node.stats.metrics)
        return combined

    def reseed_latency_models(self, seed: int) -> None:
        """Reset every node's service-time noise stream.

        Paired experiments call this before each arm so both replay the
        same stragglers and the measured difference reflects the arms'
        request shapes, not which run drew the bad luck.
        """
        for node in self.nodes:
            node.latency_model.reseed(seed * 10_007 + node.node_id)

    def total_keys_stored(self) -> int:
        """Total number of distinct live keys across all namespaces."""
        up = self.up_node_ids()
        return sum(
            self.replication.live_key_count(name, up)
            for name in self._namespace_names
        )

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def load(self, namespace: str, key: bytes, value: bytes) -> None:
        """Store a key on every replica without charging any latency.

        Used for bulk-loading benchmark datasets; the paper's experiments
        likewise bulk load their data before measuring (Section 8.4).
        Replicas that happen to be down receive hints like any other write.
        """
        self._require(namespace)
        record = encode_record(self.replication.next_seq(), value)
        for node_id in self._preference_list(namespace, key):
            if self.nodes[node_id].up:
                self.replication.stores[node_id].apply_record(
                    namespace, key, record
                )
            else:
                self.replication.add_hint(node_id, namespace, key, record)
                self.metrics.add("replication.hints_added", 1)

    def load_delete(self, namespace: str, key: bytes) -> None:
        """Tombstone a key on every replica without charging any latency.

        The deletion counterpart of :meth:`load`; used by the bulk-load and
        backfill paths of view maintenance, whose bounded top-k indexes must
        evict entries while data is being loaded.
        """
        self._require(namespace)
        record = encode_record(self.replication.next_seq(), None)
        for node_id in self._preference_list(namespace, key):
            if self.nodes[node_id].up:
                self.replication.stores[node_id].apply_record(
                    namespace, key, record
                )
            else:
                self.replication.add_hint(node_id, namespace, key, record)
                self.metrics.add("replication.hints_added", 1)

    def bulk_load_many(
        self,
        triples: Iterator[Tuple[str, bytes, bytes]],
        memory_budget_bytes: int = 16 << 20,
    ) -> int:
        """Bulk load a ``(namespace, key, value)`` stream under a byte budget.

        Equivalent to calling :meth:`load` per triple (same records, same
        sequence numbers, same hinting for down replicas, zero charged
        latency) but memory-budgeted end to end: records are staged in one
        spilling sort pool partitioned by ``(destination node, namespace)``,
        then each node's engine ingests its partitions through
        ``bulk_load`` — on the LSM engine that builds a sorted segment
        directly, bypassing both the memtable and the WAL (the segment
        rename is the commit point).  Duplicate keys in the stream resolve
        last-wins, exactly as repeated :meth:`load` calls would.  Returns
        the number of triples consumed.
        """
        count = 0
        with tempfile.TemporaryDirectory(prefix="repro-bulkload-") as staging:
            pool = SpillPool(
                os.path.join(staging, "by-node"), memory_budget_bytes
            )
            try:
                for namespace, key, value in triples:
                    self._require(namespace)
                    record = encode_record(self.replication.next_seq(), value)
                    for node_id in self._preference_list(namespace, key):
                        if self.nodes[node_id].up:
                            pool.add(f"{node_id}:{namespace}", key, record)
                        else:
                            self.replication.add_hint(
                                node_id, namespace, key, record
                            )
                            self.metrics.add("replication.hints_added", 1)
                    count += 1
                for partition in pool.namespaces():
                    node_str, namespace = partition.split(":", 1)
                    self.engines[int(node_str)].bulk_load(
                        namespace, pool.iter_namespace(partition)
                    )
            finally:
                pool.close()
        return count

    def bulk_load_namespace(
        self,
        namespace: str,
        items: Iterator[KeyValue],
        memory_budget_bytes: int = 16 << 20,
    ) -> int:
        """Bulk load one namespace's ``(key, value)`` stream (see
        :meth:`bulk_load_many`)."""
        self._require(namespace)
        return self.bulk_load_many(
            ((namespace, key, value) for key, value in items),
            memory_budget_bytes,
        )

    def peek(self, namespace: str, key: bytes) -> Optional[bytes]:
        """Latency-free newest-wins read of one key (bulk load / tooling).

        Resolves across the up replicas of the key's preference list without
        charging any node or advancing any clock, and without read repair.
        Raises :class:`~repro.errors.UnavailableError` when every replica is
        down — a down replica's store may predate hinted writes, so reading
        it could silently return stale state into a view backfill.
        """
        self._require(namespace)
        prefs = self._preference_list(namespace, key)
        up = [node_id for node_id in prefs if self.nodes[node_id].up]
        if not up:
            raise UnavailableError(
                f"all {len(prefs)} replicas of the key are down"
            )
        _, record = self.replication.newest_record(namespace, key, up)
        if record is None:
            return None
        return decode_record(record)[1]

    def peek_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int] = None,
        ascending: bool = True,
    ) -> List[KeyValue]:
        """Latency-free merged range read (bulk load / tooling).

        Applies the same availability rule as :meth:`iter_namespace`: when
        enough nodes are down that the merge could silently miss keys, it
        raises instead of letting a view backfill build permanently
        incomplete state.
        """
        self._require(namespace)
        self._range_may_be_partial(allow_partial=False)
        merged = self.replication.merged_range(
            namespace, self.up_node_ids(), start, end, limit, ascending
        )
        return [(key, value) for key, value, _ in merged]

    # ------------------------------------------------------------------
    # Quorum write internals
    # ------------------------------------------------------------------
    def _quorum_write(
        self,
        namespace: str,
        key: bytes,
        value: Optional[bytes],
        sim_time: float,
        operation: str,
        suspects: Optional[Set[int]] = None,
    ) -> Tuple[float, int, int, Tuple[int, ...]]:
        """Write a record (or tombstone) to a key's replicas.

        Sends to every available replica (down or unreachable replicas get
        hints), charges each destination, and returns ``(ack latency,
        primary node id, hints, unavailable replicas observed)`` where the
        ack latency is the ``W``-th fastest replica's — the coordinator
        answers the client as soon as the write quorum is met — and
        ``hints`` counts replicas whose copy was deferred.  The
        unavailable list names only the replicas skipped as down or
        unreachable (membership view) — suspect-skips and flaky drops are
        excluded, so a client feeding it into its breaker board can never
        keep a breaker open on its own suspicion.

        Flaky links can drop individual replica messages; a dropped copy is
        hinted (the coordinator's timeout fires and it falls back to the
        hint queue) and does **not** count toward the quorum.  When drops
        leave fewer than ``W`` acknowledged copies the write surfaces as an
        :class:`~repro.errors.RpcTimeoutError` — the replicas that did
        apply it are ahead, which is safe: the write was never acknowledged
        and newest-wins convergence handles the remainder.

        ``suspects`` (breaker-open nodes at the calling client) are hinted
        early *when the quorum is already met without them* — converting a
        probably-doomed RPC into deferred replay instead of a timeout.
        """
        prefs = self._preference_list(namespace, key)
        needed = self.config.effective_write_quorum
        available = [nid for nid in prefs if self._available(nid)]
        if len(available) < needed:
            raise QuorumNotMetError(operation, namespace, needed, len(available))
        skip: Set[int] = set()
        if suspects:
            healthy = [nid for nid in available if nid not in suspects]
            if len(healthy) >= needed:
                skip = {nid for nid in available if nid in suspects}
        record = encode_record(self.replication.next_seq(), value)
        nbytes = len(value) if value is not None else 0
        latencies: List[float] = []
        hints = 0
        unavailable: List[int] = []
        network = self.network
        for node_id in prefs:
            if not self._available(node_id) or node_id in skip:
                if node_id not in skip:
                    unavailable.append(node_id)
                self.replication.add_hint(node_id, namespace, key, record)
                self.metrics.add("replication.hints_added", 1)
                hints += 1
                continue
            if network.active and not network.delivers(CLIENT, node_id):
                # The message (or its ack) was lost: the coordinator's
                # per-replica timeout converts it into a hint.
                self.metrics.add("network.dropped", 1)
                self.replication.add_hint(node_id, namespace, key, record)
                self.metrics.add("replication.hints_added", 1)
                hints += 1
                continue
            self.replication.stores[node_id].apply_record(
                namespace, key, record
            )
            latency = self.nodes[node_id].charge_write(1, nbytes, sim_time)
            if network.active:
                latency += network.delay_seconds(CLIENT, node_id)
            latencies.append(latency)
        if len(latencies) < needed:
            raise RpcTimeoutError(operation, namespace)
        latencies.sort()
        return latencies[needed - 1], prefs[0], hints, tuple(unavailable)

    def _resolve_newest(
        self, namespace: str, key: bytes, chosen: Sequence[int]
    ) -> Tuple[Optional[bytes], List[int], List[Tuple[int, Optional[bytes]]]]:
        """Resolve a key across ``chosen`` replicas in one pass.

        Returns ``(newest record, stale replica ids, observed records)``
        where ``observed`` is each chosen replica's own ``(node_id,
        record)`` — callers size their RPC charges from it without touching
        the stores again.  Shared by the single-key and batched read paths
        so conflict resolution can never diverge between them.
        """
        best_seq = MISSING_SEQ
        best_record: Optional[bytes] = None
        observed: List[Tuple[int, Optional[bytes]]] = []
        for node_id in chosen:
            record = self.replication.stores[node_id].get_record(namespace, key)
            observed.append((node_id, record))
            seq = record_seq(record)
            if seq > best_seq:
                best_seq, best_record = seq, record
        if best_record is None:
            return None, [], observed
        stale = [
            node_id
            for node_id, record in observed
            if record_seq(record) < best_seq
        ]
        return best_record, stale, observed

    @staticmethod
    def _payload_size(record: Optional[bytes]) -> int:
        if record is None:
            return 0
        value = decode_record(record)[1]
        return len(value) if value is not None else 0

    def _read_one(
        self,
        namespace: str,
        key: bytes,
        sim_time: float,
        suspects: Optional[Set[int]] = None,
    ) -> Tuple[Optional[bytes], float, int, int, float, Tuple[int, ...]]:
        """Quorum read of one key: ``(live value, latency, serving node,
        repairs, critical queue wait, unavailable replicas observed)``.

        Charges each of the ``R`` chosen replicas one read RPC (the client
        waits for all of them, so the latency is their maximum), resolves
        newest-wins, and read-repairs any stale replica in the background
        (charged to the replica, not to the client); ``repairs`` counts the
        repairs applied so the triggering read's trace can attribute them.

        On a flaky link any of the ``R`` messages may be dropped; the read
        then raises :class:`~repro.errors.RpcTimeoutError` *before* any
        charge or repair is applied — a lost reply means the coordinator
        learned nothing.
        """
        chosen, unavailable = self._read_replicas(namespace, key, suspects)
        network = self.network
        if network.active:
            for node_id in chosen:
                if not network.delivers(CLIENT, node_id):
                    self.metrics.add("network.dropped", 1)
                    raise RpcTimeoutError("get", namespace, node_id)
        best_record, stale, observed = self._resolve_newest(
            namespace, key, chosen
        )
        latency = 0.0
        queue_wait = 0.0
        for node_id, record in observed:
            node = self.nodes[node_id]
            rpc = node.charge_read(
                1, self._payload_size(record), sim_time
            )
            if network.active:
                rpc += network.delay_seconds(CLIENT, node_id)
            if rpc >= latency:
                # This replica is (so far) the latency critical path; its
                # queue wait is the read's attributable queueing delay.
                queue_wait = node.last_queue_wait_seconds
            latency = max(latency, rpc)
        repaired = 0
        if best_record is not None:
            for node_id in stale:
                if self.replication.stores[node_id].apply_record(
                    namespace, key, best_record
                ):
                    self.nodes[node_id].charge_write(
                        1, len(best_record), sim_time
                    )
                    repaired += 1
        if repaired:
            self.metrics.add("replication.read_repairs", repaired)
        value = decode_record(best_record)[1] if best_record is not None else None
        return value, latency, chosen[0], repaired, queue_wait, unavailable

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(
        self,
        namespace: str,
        key: bytes,
        sim_time: float = 0.0,
        suspects: Optional[Set[int]] = None,
        hedge_delay_seconds: Optional[float] = None,
    ) -> OpResult:
        """Read one key; ``value`` is the bytes stored or ``None``.

        With ``hedge_delay_seconds`` set, a hedge request is issued when
        the primary quorum read is slower than the delay: the same quorum
        read is re-issued (fresh service-time draws — on a straggling
        replica the retry usually lands on its fast path) and the first
        response wins, so the effective latency is
        ``min(primary, delay + hedge)``.  The loser's work is still done
        by the nodes; the client layer accounts it as a saved read.
        """
        self._require(namespace)
        value, latency, node_id, repaired, queue_wait, unavailable = (
            self._read_one(namespace, key, sim_time, suspects)
        )
        hedged = False
        if (
            hedge_delay_seconds is not None
            and latency > hedge_delay_seconds
        ):
            hedged = True
            try:
                h_value, h_latency, h_node, h_repaired, h_wait, _ = (
                    self._read_one(namespace, key, sim_time, suspects)
                )
            except UnavailableError:
                # The hedge itself hit a drop — keep the primary response.
                pass
            else:
                repaired += h_repaired
                effective = hedge_delay_seconds + h_latency
                if effective < latency:
                    latency = effective
                    node_id = h_node
                    value = h_value
                    queue_wait = h_wait
        return OpResult(
            value, latency, node_id, keys_touched=1, repaired=repaired,
            payload_bytes=len(value) if value is not None else 0,
            hedged=hedged, queue_wait_seconds=queue_wait,
            unavailable_nodes=unavailable,
        )

    def put(
        self,
        namespace: str,
        key: bytes,
        value: bytes,
        sim_time: float = 0.0,
        suspects: Optional[Set[int]] = None,
    ) -> OpResult:
        """Write one key to its replica set; acks at the write quorum."""
        self._require(namespace)
        latency, primary, hints, unavailable = self._quorum_write(
            namespace, key, value, sim_time, operation="put", suspects=suspects
        )
        return OpResult(
            True, latency, primary, keys_touched=1, hinted=hints,
            unavailable_nodes=unavailable,
        )

    def delete(
        self,
        namespace: str,
        key: bytes,
        sim_time: float = 0.0,
        suspects: Optional[Set[int]] = None,
    ) -> OpResult:
        """Delete one key (a replicated tombstone); ``value`` is whether it existed."""
        self._require(namespace)
        available_prefs = [
            nid
            for nid in self._preference_list(namespace, key)
            if self._available(nid)
        ]
        _, newest = self.replication.newest_record(
            namespace, key, available_prefs
        )
        existed = newest is not None and decode_record(newest)[1] is not None
        latency, primary, hints, unavailable = self._quorum_write(
            namespace, key, None, sim_time, operation="delete",
            suspects=suspects,
        )
        return OpResult(
            existed, latency, primary, keys_touched=1, hinted=hints,
            unavailable_nodes=unavailable,
        )

    def test_and_set(
        self,
        namespace: str,
        key: bytes,
        expected: Optional[bytes],
        new_value: bytes,
        sim_time: float = 0.0,
        suspects: Optional[Set[int]] = None,
    ) -> OpResult:
        """Compare-and-swap; ``value`` is ``True`` iff the swap happened.

        A quorum read establishes the current value, then (on match) a
        quorum write installs the new one; the two phases are sequential,
        so the charged latency is their sum.
        """
        self._require(namespace)
        current, read_latency, node_id, repaired, _, unavailable = (
            self._read_one(namespace, key, sim_time, suspects)
        )
        if current != expected:
            return OpResult(
                False, read_latency, node_id, keys_touched=1,
                repaired=repaired, unavailable_nodes=unavailable,
            )
        write_latency, primary, hints, w_unavailable = self._quorum_write(
            namespace, key, new_value, sim_time, operation="test_and_set",
            suspects=suspects,
        )
        return OpResult(
            True, read_latency + write_latency, primary, keys_touched=1,
            hinted=hints, repaired=repaired,
            unavailable_nodes=tuple(dict.fromkeys(unavailable + w_unavailable)),
        )

    # ------------------------------------------------------------------
    # Batched point reads
    # ------------------------------------------------------------------
    def multi_get(
        self,
        namespace: str,
        keys: Sequence[bytes],
        parallel: bool = True,
        sim_time: float = 0.0,
        suspects: Optional[Set[int]] = None,
    ) -> OpResult:
        """Read many keys in one logical request.

        When ``parallel`` is true the per-key replica reads are grouped by
        serving node, each group is charged a single RPC, and the overall
        latency is the maximum over groups (requests issued concurrently).
        When false the keys are fetched one at a time and latencies add up —
        this is what the Lazy executor of Figure 12 does.
        """
        self._require(namespace)
        if not keys:
            return OpResult([], 0.0, 0, keys_touched=0)
        if not parallel:
            values: List[Optional[bytes]] = []
            latency = 0.0
            repaired = 0
            unavailable_seen: Dict[int, None] = {}
            for key in keys:
                value, key_latency, _, key_repairs, _, key_unavail = (
                    self._read_one(namespace, key, sim_time, suspects)
                )
                values.append(value)
                latency += key_latency
                repaired += key_repairs
                for nid in key_unavail:
                    unavailable_seen[nid] = None
            return OpResult(
                values, latency, -1, keys_touched=len(keys), repaired=repaired,
                payload_bytes=sum(len(v) for v in values if v is not None),
                unavailable_nodes=tuple(unavailable_seen),
            )
        # Parallel: every key's R replica reads happen concurrently, one
        # batched RPC per involved node.  Each key is resolved in a single
        # pass over its replicas; the per-node RPC charges are sized from
        # the records observed during that pass.
        stores = self.replication.stores
        network = self.network
        values: List[Optional[bytes]] = []
        group_keys: Dict[int, int] = {}
        group_bytes: Dict[int, int] = {}
        repairs: Dict[int, List[Tuple[bytes, bytes]]] = {}
        dropped_nodes: Set[int] = set()
        unavailable_seen: Dict[int, None] = {}
        for key in keys:
            chosen, key_unavail = self._read_replicas(namespace, key, suspects)
            for nid in key_unavail:
                unavailable_seen[nid] = None
            if network.active:
                # One batched RPC per node: draw each node's delivery once.
                for node_id in chosen:
                    if node_id in group_keys or node_id in dropped_nodes:
                        continue
                    if not network.delivers(CLIENT, node_id):
                        dropped_nodes.add(node_id)
                if any(node_id in dropped_nodes for node_id in chosen):
                    self.metrics.add("network.dropped", 1)
                    raise RpcTimeoutError(
                        "multi_get", namespace, next(iter(dropped_nodes))
                    )
            best_record, stale, observed = self._resolve_newest(
                namespace, key, chosen
            )
            for node_id, record in observed:
                group_keys[node_id] = group_keys.get(node_id, 0) + 1
                group_bytes[node_id] = (
                    group_bytes.get(node_id, 0) + self._payload_size(record)
                )
            if best_record is not None:
                for node_id in stale:
                    repairs.setdefault(node_id, []).append((key, best_record))
            values.append(
                decode_record(best_record)[1] if best_record is not None else None
            )
        latency = 0.0
        queue_wait = 0.0
        for node_id, count in group_keys.items():
            node = self.nodes[node_id]
            rpc = node.charge_read(
                count, group_bytes.get(node_id, 0), sim_time
            )
            if network.active:
                rpc += network.delay_seconds(CLIENT, node_id)
            if rpc >= latency:
                queue_wait = node.last_queue_wait_seconds
            latency = max(latency, rpc)
        repaired = 0
        for node_id, stale_records in repairs.items():
            applied = 0
            nbytes = 0
            for key, record in stale_records:
                if stores[node_id].apply_record(namespace, key, record):
                    applied += 1
                    nbytes += len(record)
            if applied:
                self.nodes[node_id].charge_write(applied, nbytes, sim_time)
                repaired += applied
        if repaired:
            self.metrics.add("replication.read_repairs", repaired)
        return OpResult(
            values, latency, -1, keys_touched=len(keys), repaired=repaired,
            payload_bytes=sum(group_bytes.values()),
            queue_wait_seconds=queue_wait,
            unavailable_nodes=tuple(unavailable_seen),
        )

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------
    def _range_may_be_partial(
        self, allow_partial: bool, available: Optional[int] = None
    ) -> bool:
        """Whether a range merge over the up nodes could be missing keys.

        Every key lives on ``replication`` replicas, so as long as fewer
        nodes than that are down, at least one replica of every key is up
        and the merged result is complete (returns ``False``).  With more
        nodes down the result may silently miss keys: raise unless the
        caller opted in, in which case return ``True`` so the result can be
        flagged partial.

        ``available`` overrides the count of usable nodes — serving paths
        pass the client-reachable set so a partitioned-away node counts as
        down; tooling paths (bulk load, backfill, diagnostics) run beside
        the store and keep the up-only rule.
        """
        usable = len(self.up_nodes()) if available is None else available
        down = len(self.nodes) - usable
        if down < self.config.replication:
            return False
        if not allow_partial:
            raise UnavailableError(
                f"range request with {down} node(s) down (replication="
                f"{self.config.replication}): results could silently miss "
                "keys; pass allow_partial=True to accept a partial result"
            )
        return True

    def get_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int] = None,
        ascending: bool = True,
        sim_time: float = 0.0,
        allow_partial: bool = False,
        record_filter: Optional[RecordFilter] = None,
    ) -> OpResult:
        """Return ``(key, value)`` pairs with ``start <= key < end``.

        The logical result merges every up node's replica slice newest-wins
        (tombstones suppress deleted keys).  Cost model: the coordinator's
        routing metadata sends one range RPC to each replica that serves
        winning records — for a bounded range those RPCs run in parallel
        (latency is their maximum and stays flat as the cluster grows), for
        an unbounded scan every up node must be visited and the latencies
        *sum*, which is what makes table scans scale-dependent.

        ``record_filter`` is the server-side predicate-pushdown hook: each
        merged record is offered to the filter and only matching records
        are shipped (and later deserialised) — but every *examined* record
        is charged to the node that served it, and ``limit`` caps examined
        records (not matches), so a filtered scan does exactly the same
        bounded work as fetching the range and filtering client-side.
        """
        self._require(namespace)
        up_ids = self._serving_ids()
        partial = self._range_may_be_partial(
            allow_partial, available=len(up_ids)
        )
        triples = self.replication.merged_range(
            namespace, up_ids, start, end, limit, ascending
        )
        last_examined = triples[-1][0] if triples else None
        examined: Dict[int, int] = {}
        if record_filter is not None:
            for _, _, node_id in triples:
                examined[node_id] = examined.get(node_id, 0) + 1
            triples = [t for t in triples if record_filter(t[0], t[1])]
        pairs: List[KeyValue] = [(key, value) for key, value, _ in triples]
        served: Dict[int, Tuple[int, int]] = {}
        for _, value, node_id in triples:
            count, nbytes = served.get(node_id, (0, 0))
            served[node_id] = (count + 1, nbytes + len(value))

        network = self.network

        def charge(node_id: int) -> float:
            count, nbytes = served.get(node_id, (0, 0))
            if record_filter is None:
                rpc = self.nodes[node_id].charge_range(count, nbytes, sim_time)
            else:
                rpc = self.nodes[node_id].charge_filtered_range(
                    examined.get(node_id, 0), count, nbytes, sim_time
                )
            if network.active:
                rpc += network.delay_seconds(CLIENT, node_id)
            return rpc

        keys_touched = sum(examined.values()) if record_filter is not None else len(pairs)
        shipped_bytes = sum(nbytes for _, nbytes in served.values())
        charged_ids = set(served) | set(examined)
        if network.active:
            # One range RPC per charged node; any dropped slice voids the
            # whole merged result (nothing has been charged or repaired
            # yet, so raising here leaves no partial state behind).
            for node_id in sorted(charged_ids):
                if not network.delivers(CLIENT, node_id):
                    self.metrics.add("network.dropped", 1)
                    raise RpcTimeoutError("get_range", namespace, node_id)
        bounded = start is not None and end is not None
        if bounded:
            if not charged_ids:
                # Empty range: one probe RPC at the range's primary replica.
                # With enough nodes down that the result is already partial,
                # the anchor key's whole replica set may be down too — any
                # surviving node can host the probe then.
                try:
                    probe = self.route(namespace, start)
                except QuorumNotMetError:
                    if not partial:
                        raise
                    up = self.up_nodes()
                    if not up:
                        raise
                    probe = up[0]
                latency = probe.charge_range(0, 0, sim_time)
                return OpResult(
                    [], latency, probe.node_id, keys_touched=0, partial=partial
                )
            latency = 0.0
            for node_id in charged_ids:
                latency = max(latency, charge(node_id))
            node_id = next(iter(charged_ids)) if len(charged_ids) == 1 else -1
            return OpResult(
                pairs, latency, node_id, keys_touched=keys_touched,
                partial=partial, last_examined_key=last_examined,
                payload_bytes=shipped_bytes,
            )
        # Full (or half-open) scan: every up partition must be visited.
        latency = 0.0
        for node_id in up_ids:
            latency += charge(node_id)
        return OpResult(
            pairs, latency, -1, keys_touched=keys_touched, partial=partial,
            last_examined_key=last_examined, payload_bytes=shipped_bytes,
        )

    def multi_get_range(
        self,
        namespace: str,
        ranges: Sequence[Tuple[Optional[bytes], Optional[bytes], Optional[int], bool]],
        parallel: bool = True,
        sim_time: float = 0.0,
    ) -> OpResult:
        """Issue several bounded range requests as one logical request.

        Used by the SortedIndexJoin operator, which needs one range request
        per tuple of its child.  With ``parallel=True`` the overall latency
        is the max over the individual requests, otherwise the sum.
        """
        results: List[List[KeyValue]] = []
        latencies: List[float] = []
        keys_touched = 0
        payload_bytes = 0
        for start, end, limit, ascending in ranges:
            result = self.get_range(
                namespace, start, end, limit, ascending, sim_time=sim_time
            )
            results.append(result.value)  # type: ignore[arg-type]
            latencies.append(result.latency_seconds)
            keys_touched += result.keys_touched
            payload_bytes += result.payload_bytes
        if not latencies:
            return OpResult([], 0.0, -1, keys_touched=0)
        latency = max(latencies) if parallel else sum(latencies)
        return OpResult(
            results, latency, -1, keys_touched=keys_touched,
            payload_bytes=payload_bytes,
        )

    def count_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        sim_time: float = 0.0,
    ) -> OpResult:
        """Count keys in a range (used by the cardinality insert protocol).

        The count is resolved against the merged replica view; the cost is
        one counter-probe RPC at the range's primary replica, matching the
        paper's constant-cost cardinality check.
        """
        self._require(namespace)
        serving = self._serving_ids()
        self._range_may_be_partial(allow_partial=False, available=len(serving))
        count = len(
            self.replication.merged_range(namespace, serving, start, end)
        )
        anchor = start if start is not None else b""
        node = self.route(namespace, anchor)
        if self.network.active and not self.network.delivers(
            CLIENT, node.node_id
        ):
            self.metrics.add("network.dropped", 1)
            raise RpcTimeoutError("count_range", namespace, node.node_id)
        latency = node.charge_range(1, 8, sim_time)
        if self.network.active:
            latency += self.network.delay_seconds(CLIENT, node.node_id)
        return OpResult(count, latency, node.node_id, keys_touched=1)
