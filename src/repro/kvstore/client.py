"""Client-side view of the key/value store.

Each application server in PIQL's architecture embeds the database library
and talks to the key/value store directly (Figure 2).  The
:class:`StorageClient` is that embedded view: it owns a simulated clock
(this client's notion of time), forwards operations to the cluster, advances
the clock by the charged latencies, and keeps counters that let tests verify
the static operation bounds computed by the optimizer.

Latency composition rules
-------------------------
* Sequential requests add their latencies (the clock advances after each).
* A *parallel* batch of requests costs the maximum of its members — this is
  what the Parallel executor of Section 7.1 exploits.

Measurement
-----------
All counters live in a :class:`~repro.obs.metrics.MetricsRegistry` under
``client.*`` names; :class:`ClientStats` is a thin façade exposing them as
the attributes the rest of the system (and its tests) have always read.
When a :class:`~repro.obs.trace.Tracer` is attached, every RPC additionally
records a completed span — one ``tracer is not None`` check per operation
when tracing is off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import RpcTimeoutError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Span, Tracer
from ..stats import nearest_rank_percentile
from .cluster import KeyValueCluster, OpResult
from .simtime import SimClock

KeyValue = Tuple[bytes, bytes]
RangeSpec = Tuple[Optional[bytes], Optional[bytes], Optional[int], bool]

#: Default size of the per-client latency reservoir.  Large enough for a
#: stable 99th percentile, small enough that long simulations stay O(1).
RESERVOIR_CAPACITY = 512

#: The additive counters ``ClientStats`` exposes as attributes, with the
#: cast applied on read.  Registry names are ``client.<field>``; counters
#: recorded under other ``client.*`` names (e.g. failure-path attribution)
#: flow through snapshot/delta automatically without appearing here.
_CLIENT_COUNTERS: Tuple[Tuple[str, type], ...] = (
    ("operations", int),
    ("keys_touched", int),
    ("rpcs", int),
    ("partial_results", int),
    ("coalesced_reads", int),
    ("saved_reads", int),
    ("dereference_rounds", int),
    ("total_latency_seconds", float),
)


class ClientStats:
    """Counters of the key/value traffic issued by one client.

    The counters are registry-backed (names ``client.*``); snapshot/delta
    are generic over every name in the registry, so new counters need no
    accounting code.  Field meanings:

    * ``operations`` / ``keys_touched`` / ``rpcs`` — logical operations,
      keys, and physical round trips.
    * ``partial_results`` — range reads that came back flagged partial (too
      many replicas down and the caller opted into ``allow_partial``).
    * ``coalesced_reads`` — point reads served from a gather window's
      coalescing buffer instead of a fresh RPC.  They still count as logical
      ``operations`` (static bounds are about requested work) but issue no
      RPC and charge no fresh latency.
    * ``saved_reads`` — logical point reads that never became physical
      fetches: duplicate lookup keys deduplicated before a ``multi_get``,
      and index-entry dereferences pruned by a data stop or a pushed-down
      predicate.
    * ``dereference_rounds`` — batched dereference rounds issued by the
      execution engine (one fused ``multi_get`` per round); the
      operator-fusion benchmark compares this across executor arms.

    Besides the running totals, the stats keep a bounded reservoir of
    per-call latencies (Vitter's algorithm R with a deterministic stream)
    so any client can report p50/p99 via :meth:`percentile` without
    recording every sample.
    """

    __slots__ = (
        "metrics",
        "latency_samples",
        "samples_seen",
        "reservoir_capacity",
        "_rng",
    )

    def __init__(
        self,
        operations: int = 0,
        keys_touched: int = 0,
        rpcs: int = 0,
        partial_results: int = 0,
        coalesced_reads: int = 0,
        saved_reads: int = 0,
        dereference_rounds: int = 0,
        total_latency_seconds: float = 0.0,
        latency_samples: Optional[List[float]] = None,
        samples_seen: int = 0,
        reservoir_capacity: int = RESERVOIR_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.metrics = MetricsRegistry() if metrics is None else metrics
        seeds = (
            operations, keys_touched, rpcs, partial_results, coalesced_reads,
            saved_reads, dereference_rounds, total_latency_seconds,
        )
        for (name, _), value in zip(_CLIENT_COUNTERS, seeds):
            if value:
                self.metrics.set_counter(f"client.{name}", value)
        self.latency_samples: List[float] = (
            [] if latency_samples is None else list(latency_samples)
        )
        self.samples_seen = samples_seen
        self.reservoir_capacity = reservoir_capacity
        self._rng = random.Random(0x5EED)

    def record_latency(self, seconds: float) -> None:
        """Offer one latency observation to the bounded reservoir."""
        self.samples_seen += 1
        if len(self.latency_samples) < self.reservoir_capacity:
            self.latency_samples.append(seconds)
            return
        slot = self._rng.randrange(self.samples_seen)
        if slot < self.reservoir_capacity:
            self.latency_samples[slot] = seconds

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (e.g. ``0.99``) of the sampled latencies."""
        return nearest_rank_percentile(self.latency_samples, fraction)

    def snapshot(self) -> "ClientStats":
        return ClientStats(
            latency_samples=list(self.latency_samples),
            samples_seen=self.samples_seen,
            reservoir_capacity=self.reservoir_capacity,
            metrics=self.metrics.snapshot(),
        )

    def delta(self, earlier: "ClientStats") -> "ClientStats":
        """Return the difference between this snapshot and an earlier one.

        Every counter in either registry is differenced; the latency
        reservoir is a sample (not a sum), so the delta starts with an
        empty one.
        """
        return ClientStats(
            reservoir_capacity=self.reservoir_capacity,
            metrics=self.metrics.delta(earlier.metrics),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name, _ in _CLIENT_COUNTERS
        )
        return f"ClientStats({fields})"


def _client_counter(name: str, cast: type) -> property:
    metric = f"client.{name}"

    def fget(self: ClientStats):
        return cast(self.metrics.value(metric))

    def fset(self: ClientStats, value) -> None:
        self.metrics.set_counter(metric, value)

    return property(fget, fset)


for _name, _cast in _CLIENT_COUNTERS:
    setattr(ClientStats, _name, _client_counter(_name, _cast))
del _name, _cast


@dataclass
class StorageClient:
    """A stateless application-server's connection to the simulated store."""

    cluster: KeyValueCluster
    clock: SimClock = field(default_factory=SimClock)
    stats: ClientStats = field(default_factory=ClientStats)
    #: Span-tree recorder; ``None`` (the default) disables tracing and costs
    #: one identity check per operation.
    tracer: Optional[Tracer] = field(default=None, repr=False, compare=False)
    #: Per-RPC deadline, installed per query by the resilience policy
    #: (``None`` — the default — disables the check entirely).  A reply
    #: slower than this is charged only the deadline and surfaces as
    #: :class:`~repro.errors.RpcTimeoutError`.
    rpc_timeout_seconds: Optional[float] = field(
        default=None, repr=False, compare=False
    )
    #: Hedge delay for point reads, installed per query by the resilience
    #: policy; ``None`` disables hedging.
    hedge_delay_seconds: Optional[float] = field(
        default=None, repr=False, compare=False
    )
    #: This client's circuit-breaker board
    #: (:class:`~repro.resilience.breaker.BreakerBoard`), attached by the
    #: resilience policy when breakers are enabled; ``None`` otherwise.
    breakers: Optional[object] = field(default=None, repr=False, compare=False)
    #: Coalescing buffer of point reads completed during an open gather
    #: window: ``(namespace, key) -> (value, ready_at_seconds)``.  ``None``
    #: outside a window.
    _gather_cache: Optional[Dict[Tuple[str, bytes], Tuple[Optional[bytes], float]]] = \
        field(default=None, repr=False, compare=False)
    _gather_depth: int = field(default=0, repr=False, compare=False)
    #: Tracing side-table of a gather window: the RPC span that fetched each
    #: coalesced key, so later logical reads attach as children of the one
    #: physical request.
    _gather_spans: Optional[Dict[Tuple[str, bytes], Span]] = \
        field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(
        self,
        result: OpResult,
        operations: int,
        rpcs: int = 1,
        op: str = "rpc",
        namespace: str = "",
    ) -> Optional[Span]:
        started = self.clock.now
        latency = result.latency_seconds
        self.clock.advance(latency)
        metrics = self.stats.metrics
        metrics.add("client.operations", operations)
        metrics.add("client.keys_touched", result.keys_touched)
        metrics.add("client.rpcs", rpcs)
        if result.partial:
            metrics.add("client.partial_results", 1)
        if result.hinted:
            metrics.add("client.hinted_writes", result.hinted)
        if result.repaired:
            metrics.add("client.read_repairs", result.repaired)
        metrics.add("client.total_latency_seconds", latency)
        self.stats.record_latency(latency)
        if self.breakers is not None:
            if result.node_id >= 0:
                self.breakers.record_success(  # type: ignore[attr-defined]
                    result.node_id, self.clock.now
                )
            # Replicas the coordinator skipped as down/unreachable: each
            # sighting is a per-node failure observed by this client's own
            # traffic, which is what opens the breaker during a crash or
            # partition window even though the quorum was still met.
            for node_id in result.unavailable_nodes:
                self.breakers.record_failure(  # type: ignore[attr-defined]
                    node_id, self.clock.now
                )
        if self.tracer is not None:
            span = self.tracer.record(
                op, "rpc", started, self.clock.now,
                namespace=namespace,
                operations=operations,
                rpcs=rpcs,
                keys=result.keys_touched,
                node_id=result.node_id,
            )
            # Rarely-set attributes are added only when non-zero; readers
            # use ``attributes.get`` throughout.
            attributes = span.attributes
            if result.payload_bytes:
                attributes["bytes"] = result.payload_bytes
            if result.hinted:
                attributes["hinted"] = result.hinted
            if result.repaired:
                attributes["repaired"] = result.repaired
            if result.hedged:
                attributes["hedged"] = True
                if self.hedge_delay_seconds is not None:
                    attributes["hedge_delay_seconds"] = (
                        self.hedge_delay_seconds
                    )
            if result.queue_wait_seconds:
                attributes["queue_wait_seconds"] = result.queue_wait_seconds
            return span
        return None

    # ------------------------------------------------------------------
    # Resilience hooks
    # ------------------------------------------------------------------
    def _suspects(self) -> Optional[Set[int]]:
        """Breaker-open nodes right now (``None`` without a board)."""
        if self.breakers is None:
            return None
        return self.breakers.suspects(self.clock.now)  # type: ignore[attr-defined]

    def _deadline(self, result: OpResult, op: str, namespace: str) -> OpResult:
        """Enforce the per-RPC deadline on a completed cluster call.

        A reply slower than the deadline is indistinguishable (to the
        waiting client) from a lost one: the client gives up at the
        deadline — charging exactly the deadline, not the full reply
        latency — counts the timeout, penalises the serving node's
        breaker, and raises :class:`~repro.errors.RpcTimeoutError`.  The
        store-side work still happened; only the acknowledgement is lost,
        which is why writes stay convergent (hinted handoff / newest-wins
        covers the unacked copy).
        """
        timeout = self.rpc_timeout_seconds
        if timeout is None or result.latency_seconds <= timeout:
            return result
        started = self.clock.now
        self.clock.advance(timeout)
        metrics = self.stats.metrics
        metrics.add("client.rpcs", 1)
        metrics.add("client.rpc_timeouts", 1)
        metrics.add("resilience.timeouts", 1)
        metrics.add("client.total_latency_seconds", timeout)
        self.stats.record_latency(timeout)
        if self.breakers is not None and result.node_id >= 0:
            self.breakers.record_failure(  # type: ignore[attr-defined]
                result.node_id, self.clock.now
            )
        if self.tracer is not None:
            self.tracer.record(
                op, "rpc-timeout", started, self.clock.now,
                namespace=namespace, node_id=result.node_id,
                timeout_seconds=timeout,
            )
        raise RpcTimeoutError(op, namespace, result.node_id, timeout)

    def _note_rpc_failure(
        self, exc: RpcTimeoutError, op: str, namespace: str
    ) -> None:
        """Account a cluster-raised RPC timeout (a dropped message).

        The client discovers the drop only when its own deadline fires, so
        with a deadline configured the wait is charged to the clock; with
        none (legacy callers) the error still counts but costs no time.
        """
        started = self.clock.now
        timeout = self.rpc_timeout_seconds
        if timeout is not None:
            self.clock.advance(timeout)
            self.stats.metrics.add("client.total_latency_seconds", timeout)
            self.stats.record_latency(timeout)
        metrics = self.stats.metrics
        metrics.add("client.rpcs", 1)
        metrics.add("client.rpc_timeouts", 1)
        metrics.add("resilience.timeouts", 1)
        if self.breakers is not None and exc.node_id >= 0:
            self.breakers.record_failure(  # type: ignore[attr-defined]
                exc.node_id, self.clock.now
            )
        if self.tracer is not None:
            self.tracer.record(
                op, "rpc-timeout", started, self.clock.now,
                namespace=namespace, node_id=exc.node_id,
            )

    @property
    def now(self) -> float:
        """Current simulated time at this client."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def enable_tracing(self, keep: int = 64) -> Tracer:
        """Attach (or return) this client's tracer.

        The tracer reads time through the client — ``lambda: client.clock.now``
        — because sessions temporarily swap the clock during gathers and the
        trace must follow the active clock.
        """
        if self.tracer is None:
            self.tracer = Tracer(lambda: self.clock.now, keep=keep)
        return self.tracer

    def disable_tracing(self) -> None:
        self.tracer = None

    def _trace_coalesced(
        self, op: str, namespace: str, key: bytes, started: float
    ) -> None:
        """Attribute one coalesced logical read to the RPC that fetched it."""
        rpc_span = (
            self._gather_spans.get((namespace, key))
            if self._gather_spans is not None
            else None
        )
        ended = self.clock.now
        if rpc_span is not None:
            child = Span(op, "logical-op", started)
            child.end = ended
            # Raw key bytes: repr() is hot-path cost; the exporter makes
            # bytes attributes JSON-safe at export time.
            child.attributes["key"] = key
            child.attributes["coalesced"] = True
            rpc_span.children.append(child)
        else:
            assert self.tracer is not None
            self.tracer.record(
                op, "coalesced", started, ended,
                namespace=namespace, key=key, coalesced=True,
            )

    @staticmethod
    def _attach_logical_read(rpc_span: Span, key: bytes) -> None:
        """Record the requesting logical read under a fresh RPC span."""
        child = Span("get", "logical-op", rpc_span.start)
        child.end = rpc_span.end
        child.attributes["key"] = key
        child.attributes["coalesced"] = False
        rpc_span.children.append(child)

    # ------------------------------------------------------------------
    # Gather windows (cross-query read coalescing)
    # ------------------------------------------------------------------
    @property
    def gather_window_active(self) -> bool:
        return self._gather_cache is not None

    def begin_gather_window(self) -> None:
        """Open a coalescing window over the queries of one gather.

        While the window is open, every completed point read is remembered
        as ``(value, completion time)``; a later branch requesting the same
        key joins the outstanding batch instead of issuing a fresh RPC — it
        waits until the original fetch's completion time (if its own clock
        is not already past it) and reuses the reply.  Writes inside the
        window evict the written key so no branch reads a stale value.
        """
        self._gather_depth += 1
        if self._gather_cache is None:
            self._gather_cache = {}
            if self.tracer is not None:
                self._gather_spans = {}

    def end_gather_window(self) -> None:
        """Close the window opened by :meth:`begin_gather_window`."""
        if self._gather_depth == 0:
            raise RuntimeError("end_gather_window without begin_gather_window")
        self._gather_depth -= 1
        if self._gather_depth == 0:
            self._gather_cache = None
            self._gather_spans = None

    def _invalidate(self, namespace: str, key: bytes) -> None:
        if self._gather_cache is not None:
            self._gather_cache.pop((namespace, key), None)
            if self._gather_spans is not None:
                self._gather_spans.pop((namespace, key), None)

    def _coalesced_wait(self, ready_at: float) -> None:
        """Wait (in simulated time) for the shared fetch's reply to arrive."""
        if ready_at > self.clock.now:
            self.clock.advance(ready_at - self.clock.now)

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(self, namespace: str, key: bytes) -> Optional[bytes]:
        """Fetch a single value (one key/value store operation)."""
        cache = self._gather_cache
        if cache is not None:
            hit = cache.get((namespace, key))
            if hit is not None:
                value, ready_at = hit
                metrics = self.stats.metrics
                metrics.add("client.operations", 1)
                metrics.add("client.keys_touched", 1)
                metrics.add("client.coalesced_reads", 1)
                started = self.clock.now
                self._coalesced_wait(ready_at)
                if self.tracer is not None:
                    self._trace_coalesced("get", namespace, key, started)
                return value
        try:
            result = self.cluster.get(
                namespace, key, sim_time=self.clock.now,
                suspects=self._suspects(),
                hedge_delay_seconds=self.hedge_delay_seconds,
            )
        except RpcTimeoutError as exc:
            self._note_rpc_failure(exc, "get", namespace)
            raise
        result = self._deadline(result, "get", namespace)
        span = self._record(result, operations=1, op="get", namespace=namespace)
        if result.hedged:
            # The losing twin of the hedge is cancelled: its logical read
            # was already counted, so only the saved physical fetch and
            # the hedge itself are recorded.
            metrics = self.stats.metrics
            metrics.add("resilience.hedged_reads", 1)
            metrics.add("client.saved_reads", 1)
        if cache is not None:
            cache[(namespace, key)] = (result.value, self.clock.now)  # type: ignore[arg-type]
            if span is not None and self._gather_spans is not None:
                self._attach_logical_read(span, key)
                self._gather_spans[(namespace, key)] = span
        return result.value  # type: ignore[return-value]

    def put(self, namespace: str, key: bytes, value: bytes) -> None:
        """Write a single value (one key/value store operation)."""
        try:
            result = self.cluster.put(
                namespace, key, value, sim_time=self.clock.now,
                suspects=self._suspects(),
            )
        except RpcTimeoutError as exc:
            self._note_rpc_failure(exc, "put", namespace)
            raise
        result = self._deadline(result, "put", namespace)
        self._record(result, operations=1, op="put", namespace=namespace)
        self._invalidate(namespace, key)

    def delete(self, namespace: str, key: bytes) -> bool:
        """Delete a key; returns whether it existed."""
        try:
            result = self.cluster.delete(
                namespace, key, sim_time=self.clock.now,
                suspects=self._suspects(),
            )
        except RpcTimeoutError as exc:
            self._note_rpc_failure(exc, "delete", namespace)
            raise
        result = self._deadline(result, "delete", namespace)
        self._record(result, operations=1, op="delete", namespace=namespace)
        self._invalidate(namespace, key)
        return bool(result.value)

    def test_and_set(
        self, namespace: str, key: bytes, expected: Optional[bytes], new_value: bytes
    ) -> bool:
        """Conditionally write a key; returns whether the swap succeeded."""
        try:
            result = self.cluster.test_and_set(
                namespace, key, expected, new_value, sim_time=self.clock.now,
                suspects=self._suspects(),
            )
        except RpcTimeoutError as exc:
            self._note_rpc_failure(exc, "test_and_set", namespace)
            raise
        result = self._deadline(result, "test_and_set", namespace)
        self._record(result, operations=1, op="test_and_set", namespace=namespace)
        self._invalidate(namespace, key)
        return bool(result.value)

    # ------------------------------------------------------------------
    # Batched reads
    # ------------------------------------------------------------------
    def charge_saved_reads(self, count: int) -> None:
        """Account for logical point reads that needed no physical fetch.

        Used by the execution engine when a dereference is skipped — the key
        was a duplicate of one already in the batch, or a data stop /
        pushed-down predicate made the base record unnecessary.  The logical
        operation still counts (static bounds measure requested work), but
        no RPC is issued and no latency is charged.
        """
        if count <= 0:
            return
        metrics = self.stats.metrics
        metrics.add("client.operations", count)
        metrics.add("client.keys_touched", count)
        metrics.add("client.saved_reads", count)

    def multi_get(
        self,
        namespace: str,
        keys: Sequence[bytes],
        parallel: bool = True,
        logical_operations: Optional[int] = None,
    ) -> List[Optional[bytes]]:
        """Fetch many keys; counts ``logical_operations`` (default
        ``len(keys)``) operations.

        Callers that deduplicate their key list before batching pass the
        pre-dedupe count as ``logical_operations`` so operation counts keep
        describing the requested work; the difference is recorded under
        ``stats.saved_reads``.

        Inside a gather window (parallel batches only) the request is
        coalesced with the window's outstanding reads: keys another branch
        already fetched are served from the shared reply — the caller waits
        until that reply's completion time rather than re-issuing the RPC —
        and only the remaining keys go to the cluster as one batch.
        """
        logical = len(keys) if logical_operations is None else logical_operations
        cache = self._gather_cache
        metrics = self.stats.metrics
        if cache is None or not parallel:
            try:
                result = self.cluster.multi_get(
                    namespace, keys, parallel=parallel,
                    sim_time=self.clock.now, suspects=self._suspects(),
                )
            except RpcTimeoutError as exc:
                self._note_rpc_failure(exc, "multi_get", namespace)
                raise
            result = self._deadline(result, "multi_get", namespace)
            self._record(
                result, operations=logical, rpcs=1 if parallel else len(keys),
                op="multi_get", namespace=namespace,
            )
            metrics.add("client.keys_touched", logical - len(keys))
            metrics.add("client.saved_reads", logical - len(keys))
            return result.value  # type: ignore[return-value]
        values: List[Optional[bytes]] = [None] * len(keys)
        miss_keys: List[bytes] = []
        miss_slots: List[int] = []
        started = self.clock.now
        ready_at = started
        hits: List[bytes] = []
        for slot, key in enumerate(keys):
            hit = cache.get((namespace, key))
            if hit is None:
                miss_keys.append(key)
                miss_slots.append(slot)
            else:
                values[slot] = hit[0]
                ready_at = max(ready_at, hit[1])
                hits.append(key)
        if miss_keys:
            try:
                result = self.cluster.multi_get(
                    namespace, miss_keys, parallel=True,
                    sim_time=self.clock.now, suspects=self._suspects(),
                )
            except RpcTimeoutError as exc:
                self._note_rpc_failure(exc, "multi_get", namespace)
                raise
            result = self._deadline(result, "multi_get", namespace)
            fetched: List[Optional[bytes]] = result.value  # type: ignore[assignment]
            done_at = self.clock.now + result.latency_seconds
            rpc_span: Optional[Span] = None
            if self.tracer is not None:
                rpc_span = self.tracer.record(
                    "multi_get", "rpc", self.clock.now, done_at,
                    namespace=namespace,
                    operations=len(miss_keys),
                    rpcs=1,
                    keys=result.keys_touched,
                    bytes=result.payload_bytes,
                    node_id=result.node_id,
                    repaired=result.repaired,
                )
            for slot, key, value in zip(miss_slots, miss_keys, fetched):
                values[slot] = value
                cache[(namespace, key)] = (value, done_at)
                if rpc_span is not None and self._gather_spans is not None:
                    self._attach_logical_read(rpc_span, key)
                    self._gather_spans[(namespace, key)] = rpc_span
            ready_at = max(ready_at, done_at)
            metrics.add("client.rpcs", 1)
            if result.repaired:
                metrics.add("client.read_repairs", result.repaired)
            metrics.add("client.total_latency_seconds", result.latency_seconds)
            self.stats.record_latency(result.latency_seconds)
        metrics.add("client.operations", logical)
        metrics.add("client.keys_touched", logical)
        metrics.add("client.saved_reads", logical - len(keys))
        metrics.add("client.coalesced_reads", len(hits))
        self._coalesced_wait(ready_at)
        if self.tracer is not None:
            for key in hits:
                self._trace_coalesced("get", namespace, key, started)
        return values

    def get_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int] = None,
        ascending: bool = True,
        allow_partial: bool = False,
    ) -> List[KeyValue]:
        """Issue one range request (one operation).

        ``allow_partial=True`` accepts a possibly-incomplete result when too
        many replicas are down (counted in ``stats.partial_results``)
        instead of raising :class:`~repro.errors.UnavailableError`.
        """
        try:
            result = self.cluster.get_range(
                namespace, start, end, limit, ascending,
                sim_time=self.clock.now, allow_partial=allow_partial,
            )
        except RpcTimeoutError as exc:
            self._note_rpc_failure(exc, "get_range", namespace)
            raise
        result = self._deadline(result, "get_range", namespace)
        self._record(result, operations=1, op="get_range", namespace=namespace)
        return result.value  # type: ignore[return-value]

    def filtered_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int],
        ascending: bool,
        record_filter,
    ) -> Tuple[List[KeyValue], int, Optional[bytes]]:
        """One range request with a server-side filter (one operation).

        Returns ``(matching pairs, keys examined, last examined key)``.
        ``limit`` caps *examined* keys — the same entries an unfiltered scan
        of the range would have fetched — so pushdown never changes which
        section of the index a bounded scan covers, only how much of it is
        shipped back and deserialised.
        """
        try:
            result = self.cluster.get_range(
                namespace, start, end, limit, ascending,
                sim_time=self.clock.now, record_filter=record_filter,
            )
        except RpcTimeoutError as exc:
            self._note_rpc_failure(exc, "filtered_range", namespace)
            raise
        result = self._deadline(result, "filtered_range", namespace)
        self._record(result, operations=1, op="filtered_range", namespace=namespace)
        return (
            result.value,  # type: ignore[return-value]
            result.keys_touched,
            result.last_examined_key,
        )

    def multi_get_range(
        self, namespace: str, ranges: Sequence[RangeSpec], parallel: bool = True
    ) -> List[List[KeyValue]]:
        """Issue several range requests; counts ``len(ranges)`` operations."""
        try:
            result = self.cluster.multi_get_range(
                namespace, ranges, parallel=parallel, sim_time=self.clock.now
            )
        except RpcTimeoutError as exc:
            self._note_rpc_failure(exc, "multi_get_range", namespace)
            raise
        result = self._deadline(result, "multi_get_range", namespace)
        self._record(
            result, operations=len(ranges), rpcs=1 if parallel else len(ranges),
            op="multi_get_range", namespace=namespace,
        )
        return result.value  # type: ignore[return-value]

    def count_range(
        self, namespace: str, start: Optional[bytes], end: Optional[bytes]
    ) -> int:
        """Count keys in a range (one operation)."""
        try:
            result = self.cluster.count_range(
                namespace, start, end, sim_time=self.clock.now
            )
        except RpcTimeoutError as exc:
            self._note_rpc_failure(exc, "count_range", namespace)
            raise
        result = self._deadline(result, "count_range", namespace)
        self._record(result, operations=1, op="count_range", namespace=namespace)
        return int(result.value)  # type: ignore[arg-type]
