"""Client-side view of the key/value store.

Each application server in PIQL's architecture embeds the database library
and talks to the key/value store directly (Figure 2).  The
:class:`StorageClient` is that embedded view: it owns a simulated clock
(this client's notion of time), forwards operations to the cluster, advances
the clock by the charged latencies, and keeps counters that let tests verify
the static operation bounds computed by the optimizer.

Latency composition rules
-------------------------
* Sequential requests add their latencies (the clock advances after each).
* A *parallel* batch of requests costs the maximum of its members — this is
  what the Parallel executor of Section 7.1 exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..stats import nearest_rank_percentile
from .cluster import KeyValueCluster, OpResult
from .simtime import SimClock

KeyValue = Tuple[bytes, bytes]
RangeSpec = Tuple[Optional[bytes], Optional[bytes], Optional[int], bool]

#: Default size of the per-client latency reservoir.  Large enough for a
#: stable 99th percentile, small enough that long simulations stay O(1).
RESERVOIR_CAPACITY = 512


@dataclass
class ClientStats:
    """Counters of the key/value traffic issued by one client.

    Besides the running totals, the stats keep a bounded reservoir of
    per-call latencies (Vitter's algorithm R with a deterministic stream)
    so any client can report p50/p99 via :meth:`percentile` without
    recording every sample.
    """

    operations: int = 0
    keys_touched: int = 0
    rpcs: int = 0
    #: Range reads that came back flagged partial (too many replicas down
    #: and the caller opted into ``allow_partial``).
    partial_results: int = 0
    #: Point reads served from a gather window's coalescing buffer instead
    #: of a fresh RPC (duplicate keys across concurrently-resolved queries).
    #: They still count as logical ``operations`` — static bounds are about
    #: requested work — but issue no RPC and charge no fresh latency.
    coalesced_reads: int = 0
    #: Logical point reads that never became physical fetches: duplicate
    #: lookup keys deduplicated before a ``multi_get``, and index-entry
    #: dereferences pruned by a data stop or a pushed-down predicate.  Like
    #: coalesced reads they still count as ``operations`` (static bounds
    #: measure requested work) but ship no bytes and charge no latency.
    saved_reads: int = 0
    #: Batched dereference rounds issued by the execution engine (one fused
    #: ``multi_get`` per round).  The operator-fusion benchmark compares
    #: this across executor arms.
    dereference_rounds: int = 0
    total_latency_seconds: float = 0.0
    latency_samples: List[float] = field(default_factory=list)
    samples_seen: int = 0
    reservoir_capacity: int = RESERVOIR_CAPACITY
    _rng: random.Random = field(
        default_factory=lambda: random.Random(0x5EED), repr=False, compare=False
    )

    def record_latency(self, seconds: float) -> None:
        """Offer one latency observation to the bounded reservoir."""
        self.samples_seen += 1
        if len(self.latency_samples) < self.reservoir_capacity:
            self.latency_samples.append(seconds)
            return
        slot = self._rng.randrange(self.samples_seen)
        if slot < self.reservoir_capacity:
            self.latency_samples[slot] = seconds

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (e.g. ``0.99``) of the sampled latencies."""
        return nearest_rank_percentile(self.latency_samples, fraction)

    def snapshot(self) -> "ClientStats":
        return ClientStats(
            operations=self.operations,
            keys_touched=self.keys_touched,
            rpcs=self.rpcs,
            partial_results=self.partial_results,
            coalesced_reads=self.coalesced_reads,
            saved_reads=self.saved_reads,
            dereference_rounds=self.dereference_rounds,
            total_latency_seconds=self.total_latency_seconds,
            latency_samples=list(self.latency_samples),
            samples_seen=self.samples_seen,
            reservoir_capacity=self.reservoir_capacity,
        )

    def delta(self, earlier: "ClientStats") -> "ClientStats":
        """Return the difference between this snapshot and an earlier one.

        Only the additive counters are differenced; the latency reservoir is
        a sample (not a sum), so the delta starts with an empty one.
        """
        return ClientStats(
            operations=self.operations - earlier.operations,
            keys_touched=self.keys_touched - earlier.keys_touched,
            rpcs=self.rpcs - earlier.rpcs,
            partial_results=self.partial_results - earlier.partial_results,
            coalesced_reads=self.coalesced_reads - earlier.coalesced_reads,
            saved_reads=self.saved_reads - earlier.saved_reads,
            dereference_rounds=self.dereference_rounds - earlier.dereference_rounds,
            total_latency_seconds=(
                self.total_latency_seconds - earlier.total_latency_seconds
            ),
            reservoir_capacity=self.reservoir_capacity,
        )


@dataclass
class StorageClient:
    """A stateless application-server's connection to the simulated store."""

    cluster: KeyValueCluster
    clock: SimClock = field(default_factory=SimClock)
    stats: ClientStats = field(default_factory=ClientStats)
    #: Coalescing buffer of point reads completed during an open gather
    #: window: ``(namespace, key) -> (value, ready_at_seconds)``.  ``None``
    #: outside a window.
    _gather_cache: Optional[Dict[Tuple[str, bytes], Tuple[Optional[bytes], float]]] = \
        field(default=None, repr=False, compare=False)
    _gather_depth: int = field(default=0, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(self, result: OpResult, operations: int, rpcs: int = 1) -> None:
        self.clock.advance(result.latency_seconds)
        self.stats.operations += operations
        self.stats.keys_touched += result.keys_touched
        self.stats.rpcs += rpcs
        if result.partial:
            self.stats.partial_results += 1
        self.stats.total_latency_seconds += result.latency_seconds
        self.stats.record_latency(result.latency_seconds)

    @property
    def now(self) -> float:
        """Current simulated time at this client."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Gather windows (cross-query read coalescing)
    # ------------------------------------------------------------------
    @property
    def gather_window_active(self) -> bool:
        return self._gather_cache is not None

    def begin_gather_window(self) -> None:
        """Open a coalescing window over the queries of one gather.

        While the window is open, every completed point read is remembered
        as ``(value, completion time)``; a later branch requesting the same
        key joins the outstanding batch instead of issuing a fresh RPC — it
        waits until the original fetch's completion time (if its own clock
        is not already past it) and reuses the reply.  Writes inside the
        window evict the written key so no branch reads a stale value.
        """
        self._gather_depth += 1
        if self._gather_cache is None:
            self._gather_cache = {}

    def end_gather_window(self) -> None:
        """Close the window opened by :meth:`begin_gather_window`."""
        if self._gather_depth == 0:
            raise RuntimeError("end_gather_window without begin_gather_window")
        self._gather_depth -= 1
        if self._gather_depth == 0:
            self._gather_cache = None

    def _invalidate(self, namespace: str, key: bytes) -> None:
        if self._gather_cache is not None:
            self._gather_cache.pop((namespace, key), None)

    def _coalesced_wait(self, ready_at: float) -> None:
        """Wait (in simulated time) for the shared fetch's reply to arrive."""
        if ready_at > self.clock.now:
            self.clock.advance(ready_at - self.clock.now)

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(self, namespace: str, key: bytes) -> Optional[bytes]:
        """Fetch a single value (one key/value store operation)."""
        cache = self._gather_cache
        if cache is not None:
            hit = cache.get((namespace, key))
            if hit is not None:
                value, ready_at = hit
                self.stats.operations += 1
                self.stats.keys_touched += 1
                self.stats.coalesced_reads += 1
                self._coalesced_wait(ready_at)
                return value
        result = self.cluster.get(namespace, key, sim_time=self.clock.now)
        self._record(result, operations=1)
        if cache is not None:
            cache[(namespace, key)] = (result.value, self.clock.now)  # type: ignore[arg-type]
        return result.value  # type: ignore[return-value]

    def put(self, namespace: str, key: bytes, value: bytes) -> None:
        """Write a single value (one key/value store operation)."""
        result = self.cluster.put(namespace, key, value, sim_time=self.clock.now)
        self._record(result, operations=1)
        self._invalidate(namespace, key)

    def delete(self, namespace: str, key: bytes) -> bool:
        """Delete a key; returns whether it existed."""
        result = self.cluster.delete(namespace, key, sim_time=self.clock.now)
        self._record(result, operations=1)
        self._invalidate(namespace, key)
        return bool(result.value)

    def test_and_set(
        self, namespace: str, key: bytes, expected: Optional[bytes], new_value: bytes
    ) -> bool:
        """Conditionally write a key; returns whether the swap succeeded."""
        result = self.cluster.test_and_set(
            namespace, key, expected, new_value, sim_time=self.clock.now
        )
        self._record(result, operations=1)
        self._invalidate(namespace, key)
        return bool(result.value)

    # ------------------------------------------------------------------
    # Batched reads
    # ------------------------------------------------------------------
    def charge_saved_reads(self, count: int) -> None:
        """Account for logical point reads that needed no physical fetch.

        Used by the execution engine when a dereference is skipped — the key
        was a duplicate of one already in the batch, or a data stop /
        pushed-down predicate made the base record unnecessary.  The logical
        operation still counts (static bounds measure requested work), but
        no RPC is issued and no latency is charged.
        """
        if count <= 0:
            return
        self.stats.operations += count
        self.stats.keys_touched += count
        self.stats.saved_reads += count

    def multi_get(
        self,
        namespace: str,
        keys: Sequence[bytes],
        parallel: bool = True,
        logical_operations: Optional[int] = None,
    ) -> List[Optional[bytes]]:
        """Fetch many keys; counts ``logical_operations`` (default
        ``len(keys)``) operations.

        Callers that deduplicate their key list before batching pass the
        pre-dedupe count as ``logical_operations`` so operation counts keep
        describing the requested work; the difference is recorded under
        ``stats.saved_reads``.

        Inside a gather window (parallel batches only) the request is
        coalesced with the window's outstanding reads: keys another branch
        already fetched are served from the shared reply — the caller waits
        until that reply's completion time rather than re-issuing the RPC —
        and only the remaining keys go to the cluster as one batch.
        """
        logical = len(keys) if logical_operations is None else logical_operations
        cache = self._gather_cache
        if cache is None or not parallel:
            result = self.cluster.multi_get(
                namespace, keys, parallel=parallel, sim_time=self.clock.now
            )
            self._record(
                result, operations=logical, rpcs=1 if parallel else len(keys)
            )
            self.stats.keys_touched += logical - len(keys)
            self.stats.saved_reads += logical - len(keys)
            return result.value  # type: ignore[return-value]
        values: List[Optional[bytes]] = [None] * len(keys)
        miss_keys: List[bytes] = []
        miss_slots: List[int] = []
        ready_at = self.clock.now
        hits = 0
        for slot, key in enumerate(keys):
            hit = cache.get((namespace, key))
            if hit is None:
                miss_keys.append(key)
                miss_slots.append(slot)
            else:
                values[slot] = hit[0]
                ready_at = max(ready_at, hit[1])
                hits += 1
        if miss_keys:
            result = self.cluster.multi_get(
                namespace, miss_keys, parallel=True, sim_time=self.clock.now
            )
            fetched: List[Optional[bytes]] = result.value  # type: ignore[assignment]
            done_at = self.clock.now + result.latency_seconds
            for slot, key, value in zip(miss_slots, miss_keys, fetched):
                values[slot] = value
                cache[(namespace, key)] = (value, done_at)
            ready_at = max(ready_at, done_at)
            self.stats.rpcs += 1
            self.stats.total_latency_seconds += result.latency_seconds
            self.stats.record_latency(result.latency_seconds)
        self.stats.operations += logical
        self.stats.keys_touched += logical
        self.stats.saved_reads += logical - len(keys)
        self.stats.coalesced_reads += hits
        self._coalesced_wait(ready_at)
        return values

    def get_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int] = None,
        ascending: bool = True,
        allow_partial: bool = False,
    ) -> List[KeyValue]:
        """Issue one range request (one operation).

        ``allow_partial=True`` accepts a possibly-incomplete result when too
        many replicas are down (counted in ``stats.partial_results``)
        instead of raising :class:`~repro.errors.UnavailableError`.
        """
        result = self.cluster.get_range(
            namespace, start, end, limit, ascending, sim_time=self.clock.now,
            allow_partial=allow_partial,
        )
        self._record(result, operations=1)
        return result.value  # type: ignore[return-value]

    def filtered_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int],
        ascending: bool,
        record_filter,
    ) -> Tuple[List[KeyValue], int, Optional[bytes]]:
        """One range request with a server-side filter (one operation).

        Returns ``(matching pairs, keys examined, last examined key)``.
        ``limit`` caps *examined* keys — the same entries an unfiltered scan
        of the range would have fetched — so pushdown never changes which
        section of the index a bounded scan covers, only how much of it is
        shipped back and deserialised.
        """
        result = self.cluster.get_range(
            namespace, start, end, limit, ascending, sim_time=self.clock.now,
            record_filter=record_filter,
        )
        self._record(result, operations=1)
        return (
            result.value,  # type: ignore[return-value]
            result.keys_touched,
            result.last_examined_key,
        )

    def multi_get_range(
        self, namespace: str, ranges: Sequence[RangeSpec], parallel: bool = True
    ) -> List[List[KeyValue]]:
        """Issue several range requests; counts ``len(ranges)`` operations."""
        result = self.cluster.multi_get_range(
            namespace, ranges, parallel=parallel, sim_time=self.clock.now
        )
        self._record(
            result, operations=len(ranges), rpcs=1 if parallel else len(ranges)
        )
        return result.value  # type: ignore[return-value]

    def count_range(
        self, namespace: str, start: Optional[bytes], end: Optional[bytes]
    ) -> int:
        """Count keys in a range (one operation)."""
        result = self.cluster.count_range(
            namespace, start, end, sim_time=self.clock.now
        )
        self._record(result, operations=1)
        return int(result.value)  # type: ignore[arg-type]
