"""Client-side view of the key/value store.

Each application server in PIQL's architecture embeds the database library
and talks to the key/value store directly (Figure 2).  The
:class:`StorageClient` is that embedded view: it owns a simulated clock
(this client's notion of time), forwards operations to the cluster, advances
the clock by the charged latencies, and keeps counters that let tests verify
the static operation bounds computed by the optimizer.

Latency composition rules
-------------------------
* Sequential requests add their latencies (the clock advances after each).
* A *parallel* batch of requests costs the maximum of its members — this is
  what the Parallel executor of Section 7.1 exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..stats import nearest_rank_percentile
from .cluster import KeyValueCluster, OpResult
from .simtime import SimClock

KeyValue = Tuple[bytes, bytes]
RangeSpec = Tuple[Optional[bytes], Optional[bytes], Optional[int], bool]

#: Default size of the per-client latency reservoir.  Large enough for a
#: stable 99th percentile, small enough that long simulations stay O(1).
RESERVOIR_CAPACITY = 512


@dataclass
class ClientStats:
    """Counters of the key/value traffic issued by one client.

    Besides the running totals, the stats keep a bounded reservoir of
    per-call latencies (Vitter's algorithm R with a deterministic stream)
    so any client can report p50/p99 via :meth:`percentile` without
    recording every sample.
    """

    operations: int = 0
    keys_touched: int = 0
    rpcs: int = 0
    #: Range reads that came back flagged partial (too many replicas down
    #: and the caller opted into ``allow_partial``).
    partial_results: int = 0
    total_latency_seconds: float = 0.0
    latency_samples: List[float] = field(default_factory=list)
    samples_seen: int = 0
    reservoir_capacity: int = RESERVOIR_CAPACITY
    _rng: random.Random = field(
        default_factory=lambda: random.Random(0x5EED), repr=False, compare=False
    )

    def record_latency(self, seconds: float) -> None:
        """Offer one latency observation to the bounded reservoir."""
        self.samples_seen += 1
        if len(self.latency_samples) < self.reservoir_capacity:
            self.latency_samples.append(seconds)
            return
        slot = self._rng.randrange(self.samples_seen)
        if slot < self.reservoir_capacity:
            self.latency_samples[slot] = seconds

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (e.g. ``0.99``) of the sampled latencies."""
        return nearest_rank_percentile(self.latency_samples, fraction)

    def snapshot(self) -> "ClientStats":
        return ClientStats(
            operations=self.operations,
            keys_touched=self.keys_touched,
            rpcs=self.rpcs,
            partial_results=self.partial_results,
            total_latency_seconds=self.total_latency_seconds,
            latency_samples=list(self.latency_samples),
            samples_seen=self.samples_seen,
            reservoir_capacity=self.reservoir_capacity,
        )

    def delta(self, earlier: "ClientStats") -> "ClientStats":
        """Return the difference between this snapshot and an earlier one.

        Only the additive counters are differenced; the latency reservoir is
        a sample (not a sum), so the delta starts with an empty one.
        """
        return ClientStats(
            operations=self.operations - earlier.operations,
            keys_touched=self.keys_touched - earlier.keys_touched,
            rpcs=self.rpcs - earlier.rpcs,
            partial_results=self.partial_results - earlier.partial_results,
            total_latency_seconds=(
                self.total_latency_seconds - earlier.total_latency_seconds
            ),
            reservoir_capacity=self.reservoir_capacity,
        )


@dataclass
class StorageClient:
    """A stateless application-server's connection to the simulated store."""

    cluster: KeyValueCluster
    clock: SimClock = field(default_factory=SimClock)
    stats: ClientStats = field(default_factory=ClientStats)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(self, result: OpResult, operations: int, rpcs: int = 1) -> None:
        self.clock.advance(result.latency_seconds)
        self.stats.operations += operations
        self.stats.keys_touched += result.keys_touched
        self.stats.rpcs += rpcs
        if result.partial:
            self.stats.partial_results += 1
        self.stats.total_latency_seconds += result.latency_seconds
        self.stats.record_latency(result.latency_seconds)

    @property
    def now(self) -> float:
        """Current simulated time at this client."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(self, namespace: str, key: bytes) -> Optional[bytes]:
        """Fetch a single value (one key/value store operation)."""
        result = self.cluster.get(namespace, key, sim_time=self.clock.now)
        self._record(result, operations=1)
        return result.value  # type: ignore[return-value]

    def put(self, namespace: str, key: bytes, value: bytes) -> None:
        """Write a single value (one key/value store operation)."""
        result = self.cluster.put(namespace, key, value, sim_time=self.clock.now)
        self._record(result, operations=1)

    def delete(self, namespace: str, key: bytes) -> bool:
        """Delete a key; returns whether it existed."""
        result = self.cluster.delete(namespace, key, sim_time=self.clock.now)
        self._record(result, operations=1)
        return bool(result.value)

    def test_and_set(
        self, namespace: str, key: bytes, expected: Optional[bytes], new_value: bytes
    ) -> bool:
        """Conditionally write a key; returns whether the swap succeeded."""
        result = self.cluster.test_and_set(
            namespace, key, expected, new_value, sim_time=self.clock.now
        )
        self._record(result, operations=1)
        return bool(result.value)

    # ------------------------------------------------------------------
    # Batched reads
    # ------------------------------------------------------------------
    def multi_get(
        self, namespace: str, keys: Sequence[bytes], parallel: bool = True
    ) -> List[Optional[bytes]]:
        """Fetch many keys; counts ``len(keys)`` operations."""
        result = self.cluster.multi_get(
            namespace, keys, parallel=parallel, sim_time=self.clock.now
        )
        self._record(result, operations=len(keys), rpcs=1 if parallel else len(keys))
        return result.value  # type: ignore[return-value]

    def get_range(
        self,
        namespace: str,
        start: Optional[bytes],
        end: Optional[bytes],
        limit: Optional[int] = None,
        ascending: bool = True,
        allow_partial: bool = False,
    ) -> List[KeyValue]:
        """Issue one range request (one operation).

        ``allow_partial=True`` accepts a possibly-incomplete result when too
        many replicas are down (counted in ``stats.partial_results``)
        instead of raising :class:`~repro.errors.UnavailableError`.
        """
        result = self.cluster.get_range(
            namespace, start, end, limit, ascending, sim_time=self.clock.now,
            allow_partial=allow_partial,
        )
        self._record(result, operations=1)
        return result.value  # type: ignore[return-value]

    def multi_get_range(
        self, namespace: str, ranges: Sequence[RangeSpec], parallel: bool = True
    ) -> List[List[KeyValue]]:
        """Issue several range requests; counts ``len(ranges)`` operations."""
        result = self.cluster.multi_get_range(
            namespace, ranges, parallel=parallel, sim_time=self.clock.now
        )
        self._record(
            result, operations=len(ranges), rpcs=1 if parallel else len(ranges)
        )
        return result.value  # type: ignore[return-value]

    def count_range(
        self, namespace: str, start: Optional[bytes], end: Optional[bytes]
    ) -> int:
        """Count keys in a range (one operation)."""
        result = self.cluster.count_range(
            namespace, start, end, sim_time=self.clock.now
        )
        self._record(result, operations=1)
        return int(result.value)  # type: ignore[arg-type]
