"""Simulated distributed key/value store (the stateful half of PIQL).

This package stands in for the SCADS cluster the paper runs on: it provides
get/put/test-and-set, range requests over an order-preserving key space, and
count-range, together with a service-time simulator so that latency and
throughput experiments can be reproduced on a single machine.
"""

from .client import ClientStats, StorageClient
from .cluster import ClusterConfig, KeyValueCluster, OpResult
from .latency import LatencyModel, LatencyParameters
from .memory import OrderedKVMap
from .node import NodeStats, StorageNode
from .simtime import SimClock, milliseconds, seconds_from_ms

__all__ = [
    "ClientStats",
    "ClusterConfig",
    "KeyValueCluster",
    "LatencyModel",
    "LatencyParameters",
    "NodeStats",
    "OpResult",
    "OrderedKVMap",
    "SimClock",
    "StorageClient",
    "StorageNode",
    "milliseconds",
    "seconds_from_ms",
]
