"""In-memory ordered key/value map.

This is the record store inside every simulated storage node.  Keys are
arbitrary byte strings and the map supports the operations PIQL requires
from the underlying key/value store (Section 3 of the paper):

* point ``get`` / ``put`` / ``delete``,
* ``test_and_set`` (compare-and-swap) for uniqueness constraints,
* **range requests** over the byte-ordered key space, which PIQL relies on
  for index scans, and
* ``count_range``, used by the cardinality-constraint insertion protocol
  (Section 7.2).

The implementation keeps a plain ``dict`` for point operations and a sorted
list of keys that is rebuilt lazily before the first range operation after
a mutation.  This makes bulk loading (millions of puts followed by reads)
O(n log n) instead of O(n^2), while point reads stay O(1).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple


class OrderedKVMap:
    """A byte-keyed map ordered by key, supporting range scans."""

    def __init__(self) -> None:
        self._data: Dict[bytes, bytes] = {}
        self._sorted_keys: List[bytes] = []
        self._dirty = False

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value stored under ``key`` or ``None``."""
        return self._data.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite the value stored under ``key``."""
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError(f"keys must be bytes, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"values must be bytes, got {type(value).__name__}")
        if key not in self._data:
            self._dirty = True
        self._data[bytes(key)] = bytes(value)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; return ``True`` if it existed."""
        if key in self._data:
            del self._data[key]
            self._dirty = True
            return True
        return False

    def test_and_set(
        self, key: bytes, expected: Optional[bytes], new_value: bytes
    ) -> bool:
        """Atomically set ``key`` to ``new_value`` iff its current value is ``expected``.

        ``expected=None`` means "the key must not exist" (insert-if-absent).
        Returns ``True`` on success.
        """
        current = self._data.get(key)
        if current != expected:
            return False
        self.put(key, new_value)
        return True

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------
    def _ensure_sorted(self) -> None:
        if self._dirty or len(self._sorted_keys) != len(self._data):
            self._sorted_keys = sorted(self._data.keys())
            self._dirty = False

    def range(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        limit: Optional[int] = None,
        ascending: bool = True,
    ) -> List[Tuple[bytes, bytes]]:
        """Return up to ``limit`` ``(key, value)`` pairs with ``start <= key < end``.

        ``start=None`` means "from the smallest key"; ``end=None`` means
        "through the largest key".  ``ascending=False`` returns pairs in
        descending key order (the *end* of the range first), which the
        execution engine uses for ``ORDER BY ... DESC`` index scans.
        """
        self._ensure_sorted()
        keys = self._sorted_keys
        lo = 0 if start is None else bisect.bisect_left(keys, start)
        hi = len(keys) if end is None else bisect.bisect_left(keys, end)
        if lo >= hi:
            return []
        selected = keys[lo:hi]
        if not ascending:
            selected = list(reversed(selected))
        if limit is not None:
            if limit < 0:
                raise ValueError("limit must be non-negative")
            selected = selected[:limit]
        return [(k, self._data[k]) for k in selected]

    def iter_range(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        ascending: bool = True,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Lazily yield ``(key, value)`` pairs with ``start <= key < end``.

        Unlike :meth:`range` nothing is materialised, so a consumer that
        stops early (a merge honouring a LIMIT) does O(consumed) work.  The
        map must not be mutated while the iterator is live.
        """
        self._ensure_sorted()
        keys = self._sorted_keys
        lo = 0 if start is None else bisect.bisect_left(keys, start)
        hi = len(keys) if end is None else bisect.bisect_left(keys, end)
        indices = range(lo, hi) if ascending else range(hi - 1, lo - 1, -1)
        for index in indices:
            key = keys[index]
            yield key, self._data[key]

    def count_range(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> int:
        """Return the number of keys with ``start <= key < end``."""
        self._ensure_sorted()
        keys = self._sorted_keys
        lo = 0 if start is None else bisect.bisect_left(keys, start)
        hi = len(keys) if end is None else bisect.bisect_left(keys, end)
        return max(0, hi - lo)

    def iter_items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate all items in key order (used by tests and bulk export)."""
        self._ensure_sorted()
        for key in self._sorted_keys:
            yield key, self._data[key]

    def clear(self) -> None:
        """Remove every entry."""
        self._data.clear()
        self._sorted_keys = []
        self._dirty = False
