"""Deterministic message-level network fault plane.

Every RPC in the simulated cluster — client→node quorum traffic and
node→node replication traffic (hinted handoff replay, read repair,
anti-entropy) — consults one :class:`NetworkModel` before it "delivers".
The model knows three kinds of trouble:

* **Partitions** — endpoints are assigned to link groups; messages only
  cross between endpoints in the same group.  Endpoints not named by any
  group (including the client) form an implicit remainder group, so a
  minority partition is expressed by listing just the minority.
  Directed ``cut(src, dst)`` edges model *asymmetric* link failures.
* **Flaky links** — a per-endpoint drop probability.  Draws are derived
  from ``crc32(seed, src, dst, counter)``, so a given seed produces the
  same drop sequence on every run: chaos soaks replay exactly.
* **Link delay** — per-endpoint added latency, charged on top of the
  node's own service time.

A dropped message is *not* a silent no-op: the cluster converts it into
an :class:`~repro.errors.RpcTimeoutError` (reads) or a hinted write
(writes), because on a real network a lost request and a lost reply are
both indistinguishable from an arbitrarily slow peer.

The model is deliberately inert by default: with no partitions, cuts,
flaky links, or delays configured, :attr:`active` is ``False`` and every
check short-circuits without consuming randomness — a healthy run is
byte-identical to a run without the fault plane.
"""

from __future__ import annotations

import zlib
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

#: Endpoint id used for the client side of client→node RPCs.  Storage
#: nodes use their non-negative node ids.
CLIENT = -1


class NetworkModel:
    """Deterministic partition / drop / delay model over cluster links."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        # Map endpoint -> group index.  Endpoints absent from the map are
        # in the implicit remainder group (index None sentinel handled in
        # reachable()).
        self._groups: Dict[int, int] = {}
        self._partitioned = False
        # Directed cut edges (src, dst).
        self._cuts: Set[Tuple[int, int]] = set()
        # Per-endpoint drop probability / added delay.
        self._flaky: Dict[int, float] = {}
        self._delays: Dict[int, float] = {}
        # Monotonic draw counter: one increment per delivers() draw.
        self._draws = 0
        self.dropped_messages = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when any fault state is configured (fast-path guard)."""
        return bool(
            self._partitioned or self._cuts or self._flaky or self._delays
        )

    def partition(self, groups: Sequence[Iterable[int]]) -> None:
        """Split the network into link groups.

        ``groups`` is a sequence of endpoint-id collections.  Messages
        travel only within a group; endpoints not listed anywhere
        (including :data:`CLIENT`) form one implicit remainder group.
        """
        normalized: List[FrozenSet[int]] = [
            frozenset(int(member) for member in group) for group in groups
        ]
        if not normalized or all(not group for group in normalized):
            raise ValueError("partition requires at least one non-empty group")
        mapping: Dict[int, int] = {}
        for index, group in enumerate(normalized):
            for member in group:
                if member in mapping:
                    raise ValueError(
                        f"endpoint {member} appears in multiple partition groups"
                    )
                mapping[member] = index
        self._groups = mapping
        self._partitioned = True

    def heal(self) -> None:
        """Clear every configured fault: partitions, cuts, flakiness, delay."""
        self._groups = {}
        self._partitioned = False
        self._cuts.clear()
        self._flaky.clear()
        self._delays.clear()

    def cut(self, src: int, dst: int) -> None:
        """Sever the directed link src→dst (asymmetric by construction)."""
        self._cuts.add((int(src), int(dst)))

    def restore_link(self, src: int, dst: int) -> None:
        self._cuts.discard((int(src), int(dst)))

    def set_flaky(self, node_id: int, probability: float) -> None:
        """Set the drop probability for links touching ``node_id``."""
        probability = float(probability)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"flaky probability must be in [0, 1], got {probability}"
            )
        if probability == 0.0:
            self._flaky.pop(int(node_id), None)
        else:
            self._flaky[int(node_id)] = probability

    def set_delay(self, node_id: int, delay_seconds: float) -> None:
        """Add fixed latency to every message touching ``node_id``."""
        delay_seconds = float(delay_seconds)
        if delay_seconds < 0.0:
            raise ValueError(
                f"link delay must be non-negative, got {delay_seconds}"
            )
        if delay_seconds == 0.0:
            self._delays.pop(int(node_id), None)
        else:
            self._delays[int(node_id)] = delay_seconds

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable(self, src: int, dst: int) -> bool:
        """Deterministic reachability: partitions and directed cuts only.

        Flakiness is *not* consulted here — a flaky link is reachable but
        may drop individual messages (see :meth:`delivers`).
        """
        if not self.active:
            return True
        if src == dst:
            return True
        if (src, dst) in self._cuts:
            return False
        if self._partitioned:
            if self._groups.get(src) != self._groups.get(dst):
                return False
        return True

    def delivers(self, src: int, dst: int) -> bool:
        """Does one message on src→dst arrive?  Consumes one seeded draw.

        Returns False for unreachable links (no draw consumed) and with
        the configured probability on flaky links.  The draw sequence is
        a pure function of (seed, src, dst, counter), so identical fault
        schedules replay identically.
        """
        if not self.active:
            return True
        if not self.reachable(src, dst):
            self.dropped_messages += 1
            return False
        if not self._flaky:
            return True
        probability = max(
            self._flaky.get(src, 0.0), self._flaky.get(dst, 0.0)
        )
        if probability <= 0.0:
            return True
        draw = self._draw(src, dst)
        if draw < probability:
            self.dropped_messages += 1
            return False
        return True

    def delay_seconds(self, src: int, dst: int) -> float:
        """Added latency on src→dst (endpoint delays are additive)."""
        if not self._delays:
            return 0.0
        return self._delays.get(src, 0.0) + self._delays.get(dst, 0.0)

    def _draw(self, src: int, dst: int) -> float:
        self._draws += 1
        payload = f"{self.seed}:{src}:{dst}:{self._draws}".encode()
        return (zlib.crc32(payload) & 0xFFFFFFFF) / 4294967296.0

    def describe(self) -> Dict[str, object]:
        """Structured snapshot for telemetry / debugging."""
        return {
            "partitioned": self._partitioned,
            "groups": sorted(
                (member, index) for member, index in self._groups.items()
            ),
            "cuts": sorted(self._cuts),
            "flaky": dict(sorted(self._flaky.items())),
            "delays": dict(sorted(self._delays.items())),
            "dropped_messages": self.dropped_messages,
        }
