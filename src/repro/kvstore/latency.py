"""Service-time (latency) model for the simulated key/value store.

The PIQL architecture (Section 3 of the paper) builds on the observation
that modern key/value stores such as Dynamo or SCADS provide *predictable*
per-operation latency: most requests complete within a few milliseconds,
with a heavy-ish tail caused by stragglers, garbage collection, and noisy
neighbours in a public cloud.

This module models that behaviour.  Each request's latency is composed of

* a fixed per-RPC overhead (network round trip + request processing),
* a per-key cost (index traversal / record copy per returned key),
* a per-byte cost (serialisation and transfer of the payload),
* multiplicative lognormal noise (service-time variability),
* an occasional straggler that multiplies the latency by a large factor
  (models GC pauses and packet retransmits; responsible for the gap between
  median and 99th percentile),
* a queueing-delay inflation driven by node utilisation (M/M/1-style
  ``1 / (1 - utilization)`` factor), and
* a slowly varying per-interval "weather" multiplier that models the
  volatility of a public cloud (Section 6.3), so that the 99th-percentile
  latency differs from one SLO interval to the next.

All knobs live in :class:`LatencyParameters` so experiments can calibrate
the simulator (e.g. make RPCs slower to mimic a cross-datacenter store).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class LatencyParameters:
    """Tunable constants of the latency model.

    All latency constants are expressed in milliseconds; the model converts
    to seconds when sampling.
    """

    #: Median fixed cost of a single RPC to the store (ms).
    base_rpc_ms: float = 1.6
    #: Additional median cost per key touched by the request (ms).
    per_key_ms: float = 0.03
    #: Additional median cost per kilobyte of payload transferred (ms).
    per_kilobyte_ms: float = 0.08
    #: Shape parameter (sigma) of the lognormal multiplicative noise.
    lognormal_sigma: float = 0.30
    #: Probability that a request is a straggler.
    straggler_probability: float = 0.012
    #: Multiplier applied to straggler requests.
    straggler_multiplier: float = 8.0
    #: Sigma of the per-interval lognormal "cloud weather" multiplier.
    weather_sigma: float = 0.10
    #: Length of a weather interval in seconds.
    weather_interval_seconds: float = 600.0
    #: Utilisation above which queueing inflation is clamped (avoid infinities).
    max_utilization: float = 0.92

    def scaled(self, factor: float) -> "LatencyParameters":
        """Return a copy with every latency constant multiplied by ``factor``.

        Useful for modelling slower stores (e.g. cross-region replication).
        """
        return replace(
            self,
            base_rpc_ms=self.base_rpc_ms * factor,
            per_key_ms=self.per_key_ms * factor,
            per_kilobyte_ms=self.per_kilobyte_ms * factor,
        )


class LatencyModel:
    """Samples per-request latencies for a storage node.

    The model is deterministic for a given ``seed`` and request sequence,
    which keeps every experiment in the repository reproducible.
    """

    def __init__(self, params: Optional[LatencyParameters] = None, seed: int = 0):
        self.params = params or LatencyParameters()
        self._seed = seed
        self._rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Reset the model's random stream (used between experiments)."""
        self._seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Weather
    # ------------------------------------------------------------------
    def weather(self, sim_time: float) -> float:
        """Multiplier modelling cloud volatility for the interval at ``sim_time``.

        The multiplier is a deterministic function of the interval index and
        the model seed, so two clients observing the same simulated time see
        the same weather, and re-running an experiment reproduces it.
        """
        p = self.params
        if p.weather_sigma <= 0:
            return 1.0
        interval = int(sim_time // p.weather_interval_seconds)
        interval_rng = random.Random((self._seed * 1_000_003) ^ (interval * 7919))
        return math.exp(interval_rng.gauss(0.0, p.weather_sigma))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def median_ms(self, num_keys: int, num_bytes: int) -> float:
        """Median (noise-free, unloaded) latency in ms for a request."""
        p = self.params
        return (
            p.base_rpc_ms
            + p.per_key_ms * max(0, num_keys)
            + p.per_kilobyte_ms * max(0, num_bytes) / 1024.0
        )

    def queueing_factor(self, utilization: float) -> float:
        """M/M/1-style latency inflation for a node at ``utilization``."""
        u = min(max(utilization, 0.0), self.params.max_utilization)
        return 1.0 / (1.0 - u)

    def sample_seconds(
        self,
        num_keys: int = 1,
        num_bytes: int = 0,
        utilization: float = 0.0,
        sim_time: float = 0.0,
    ) -> float:
        """Sample the latency, in seconds, of one request.

        Parameters
        ----------
        num_keys:
            Number of keys read or written by the request (records returned
            by a range request, keys in a batch put, ...).
        num_bytes:
            Payload size in bytes.
        utilization:
            Offered load divided by capacity for the node serving the
            request; drives queueing delay.
        sim_time:
            Simulated time at which the request is issued; selects the
            weather interval.
        """
        p = self.params
        median = self.median_ms(num_keys, num_bytes)
        noise = math.exp(self._rng.gauss(0.0, p.lognormal_sigma))
        latency_ms = median * noise
        if self._rng.random() < p.straggler_probability:
            latency_ms *= p.straggler_multiplier
        latency_ms *= self.queueing_factor(utilization)
        latency_ms *= self.weather(sim_time)
        return latency_ms / 1000.0
