"""Memory-budgeted external sorting for bulk loads and big offline scans.

A :class:`SpillingSorter` accepts ``(key, value)`` pairs in arbitrary order
(duplicates allowed — the *last* occurrence of a key wins) and yields them
back key-sorted while holding at most its byte budget in memory.  When the
in-memory buffer exceeds the budget it is sorted and spilled to an
append-only run file; the final iteration is a streaming k-way
``heapq.merge`` of every spilled run plus the remaining buffer, deduped
last-wins by an insertion sequence number.

:class:`SpillPool` shares one budget across many sorters (one per
namespace during a bulk load): whenever the pool's total resident bytes
exceed the budget, the largest sorter spills.  Resident memory is thus
bounded by the configured budget regardless of how many rows or namespaces
the load touches.

Run files use the same CRC-free framing everywhere (they are scratch files
that never outlive the process, so torn-write protection is unnecessary)::

    entry = key_len u32 | seq u64 | val_len u32 | key | value
"""

from __future__ import annotations

import heapq
import os
import struct
from typing import Dict, Iterator, List, Optional, Tuple

_ENTRY = struct.Struct(">IQI")

#: Rough per-entry bookkeeping overhead (tuple + int + list slot).
_ENTRY_OVERHEAD = 64


def _iter_run(path: str) -> Iterator[Tuple[bytes, int, bytes]]:
    with open(path, "rb") as handle:
        while True:
            header = handle.read(_ENTRY.size)
            if len(header) < _ENTRY.size:
                return
            key_len, seq, val_len = _ENTRY.unpack(header)
            key = handle.read(key_len)
            value = handle.read(val_len)
            yield key, seq, value


class SpillingSorter:
    """Sort an arbitrarily large stream of pairs under a byte budget."""

    def __init__(
        self,
        spill_dir: str,
        budget_bytes: Optional[int] = None,
        name: str = "run",
    ):
        self.spill_dir = spill_dir
        self.budget_bytes = budget_bytes
        self.name = name
        self._buffer: List[Tuple[bytes, int, bytes]] = []
        self._seq = 0
        self.buffered_bytes = 0
        self._runs: List[str] = []
        self.items_added = 0
        self.spill_count = 0
        self.spilled_bytes = 0

    def add(self, key: bytes, value: bytes) -> None:
        self._buffer.append((key, self._seq, value))
        self._seq += 1
        self.items_added += 1
        self.buffered_bytes += len(key) + len(value) + _ENTRY_OVERHEAD
        if self.budget_bytes is not None and self.buffered_bytes > self.budget_bytes:
            self.spill()

    def spill(self) -> int:
        """Sort the buffer and write it to a new run file; return its bytes."""
        if not self._buffer:
            return 0
        os.makedirs(self.spill_dir, exist_ok=True)
        path = os.path.join(
            self.spill_dir, f"{self.name}-{len(self._runs):06d}.run"
        )
        self._buffer.sort(key=lambda entry: (entry[0], entry[1]))
        written = 0
        with open(path, "wb") as handle:
            for key, seq, value in self._buffer:
                handle.write(_ENTRY.pack(len(key), seq, len(value)))
                handle.write(key)
                handle.write(value)
                written += _ENTRY.size + len(key) + len(value)
        self._runs.append(path)
        self._buffer.clear()
        self.buffered_bytes = 0
        self.spill_count += 1
        self.spilled_bytes += written
        return written

    def iter_sorted(self) -> Iterator[Tuple[bytes, bytes]]:
        """Stream pairs key-ascending, keeping only the last write per key.

        Consumes the sorter: the buffer is drained and run files are
        deleted as the iteration completes.
        """
        self._buffer.sort(key=lambda entry: (entry[0], entry[1]))
        sources: List[Iterator[Tuple[bytes, int, bytes]]] = [
            _iter_run(path) for path in self._runs
        ]
        sources.append(iter(self._buffer))
        merged = heapq.merge(*sources, key=lambda entry: (entry[0], entry[1]))
        pending: Optional[Tuple[bytes, bytes]] = None
        for key, _seq, value in merged:
            if pending is not None and pending[0] != key:
                yield pending
            pending = (key, value)
        if pending is not None:
            yield pending
        self._buffer.clear()
        self.buffered_bytes = 0
        self.close()

    def close(self) -> None:
        for path in self._runs:
            try:
                os.remove(path)
            except OSError:
                pass
        self._runs.clear()


class SpillPool:
    """Many sorters (one per namespace) under one shared byte budget."""

    def __init__(self, spill_dir: str, budget_bytes: int):
        self.spill_dir = spill_dir
        self.budget_bytes = budget_bytes
        self._sorters: Dict[str, SpillingSorter] = {}

    def sorter(self, namespace: str) -> SpillingSorter:
        sorter = self._sorters.get(namespace)
        if sorter is None:
            sorter = SpillingSorter(
                self.spill_dir, name=f"ns{len(self._sorters):04d}"
            )
            self._sorters[namespace] = sorter
        return sorter

    def add(self, namespace: str, key: bytes, value: bytes) -> None:
        self.sorter(namespace).add(key, value)
        while self.resident_bytes() > self.budget_bytes:
            largest = max(
                self._sorters.values(), key=lambda s: s.buffered_bytes
            )
            if largest.buffered_bytes == 0:
                break
            largest.spill()

    def resident_bytes(self) -> int:
        return sum(s.buffered_bytes for s in self._sorters.values())

    @property
    def spill_count(self) -> int:
        return sum(s.spill_count for s in self._sorters.values())

    @property
    def spilled_bytes(self) -> int:
        return sum(s.spilled_bytes for s in self._sorters.values())

    def namespaces(self) -> List[str]:
        return sorted(self._sorters)

    def iter_namespace(self, namespace: str) -> Iterator[Tuple[bytes, bytes]]:
        sorter = self._sorters.get(namespace)
        if sorter is None:
            return iter(())
        return sorter.iter_sorted()

    def close(self) -> None:
        for sorter in self._sorters.values():
            sorter.close()
        self._sorters.clear()
