"""Pluggable per-node storage engines.

Every :class:`~repro.replication.store.ReplicaStore` delegates its physical
data to a :class:`~repro.kvstore.engine.base.StorageEngine`.  Two engines
ship:

* :class:`~repro.kvstore.engine.dict_engine.DictEngine` — the seed
  behaviour: one in-memory :class:`~repro.kvstore.memory.OrderedKVMap` per
  namespace.  Bit-identical results and operation counts with every
  benchmark that predates the engine layer.
* :class:`~repro.kvstore.engine.lsm.LsmEngine` — an LSM-lite persistent
  engine (stdlib only): byte-budgeted memtables, a write-ahead log with
  torn-tail detection, append-only sorted segment files with sparse
  indexes and bloom-style key filters, size-tiered compaction, and a
  snapshot/bulk-load pipeline built on the memory-budgeted external
  sorter in :mod:`~repro.kvstore.engine.external`.

Select an engine with ``ClusterConfig(storage_engine="lsm",
engine_options={"data_dir": ...})``.
"""

from .base import EngineRecovery, StorageEngine
from .dict_engine import DictEngine
from .external import SpillPool, SpillingSorter
from .lsm import LsmEngine, LsmTree
from .segment import Segment, SegmentError, write_segment
from .wal import WalReplay, WriteAheadLog

__all__ = [
    "DictEngine",
    "EngineRecovery",
    "LsmEngine",
    "LsmTree",
    "Segment",
    "SegmentError",
    "SpillPool",
    "SpillingSorter",
    "StorageEngine",
    "WalReplay",
    "WriteAheadLog",
    "write_segment",
    "create_engine",
]


def create_engine(kind: str, node_id: int, **options) -> StorageEngine:
    """Build one node's engine by name (``"dict"`` or ``"lsm"``).

    ``lsm`` engines place their files under ``<data_dir>/node-<id>`` so
    several nodes can share one base directory.
    """
    if kind == "dict":
        return DictEngine()
    if kind == "lsm":
        import os

        data_dir = options.pop("data_dir", None)
        if data_dir is None:
            raise ValueError(
                "the lsm engine needs engine_options={'data_dir': ...}"
            )
        return LsmEngine(os.path.join(data_dir, f"node-{node_id}"), **options)
    raise ValueError(f"unknown storage engine: {kind!r} (use 'dict' or 'lsm')")
