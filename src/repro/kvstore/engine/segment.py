"""Append-only sorted segment files with sparse indexes and key filters.

A segment is one immutable sorted run of ``(key, value)`` entries flushed
from a memtable (or built by compaction / bulk load).  The file layout::

    header   "SEG1"
    entries  [ key_len u32 | val_len u32 | key | value ]*    (key-ascending)
    footer   ns_len u16 | namespace
             entry_count u64
             min_key_len u32 | min_key | max_key_len u32 | max_key
             index_count u32 | [ key_len u32 | key | offset u64 ]*
             bloom_nbits u32 | bloom_hashes u8 | bloom_len u32 | bits
    trailer  footer_offset u64 | footer_crc u32 | "SEGF"

``val_len == 0xFFFFFFFF`` marks an engine-level **delete marker** (the key
was physically removed after this run's predecessors were written); markers
are dropped when a compaction includes the oldest segment, since nothing
older remains to shadow.

Readers validate the trailer magic and the footer CRC before trusting a
file: a partially written segment (the crash hit mid-flush) fails
validation, is discarded by recovery, and its contents are re-read from the
WAL — which is reset only after a flush completes.

Point lookups consult a bloom-style key filter (k salted CRC32 probes over
a bit array) to skip segments that cannot hold the key, then binary-search
the sparse index (one anchor every ``sparse_every`` entries) and scan at
most one block.  Range scans seek the block containing ``start`` and stream
forward; descending scans walk blocks in reverse, materialising one block
at a time so memory stays bounded by the block size, never the range size.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterable, Iterator, List, Optional, Tuple

_HEADER = b"SEG1"
_TRAILER_MAGIC = b"SEGF"
_TRAILER = struct.Struct(">QI4s")
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")
_ENTRY = struct.Struct(">II")

#: ``val_len`` sentinel marking an engine-level delete.
_DELETE_LEN = 0xFFFFFFFF

#: Bits per key / probe count for the key filter (~2% false positives).
_BLOOM_BITS_PER_KEY = 10
_BLOOM_HASHES = 4

#: Entry payload value for a delete marker (never stored).
DELETED = None


class SegmentError(Exception):
    """A segment file is missing, truncated, or fails validation."""


def _bloom_probes(key: bytes, nbits: int, hashes: int) -> Iterator[int]:
    h1 = zlib.crc32(key)
    h2 = zlib.crc32(key, 0x9E3779B9) | 1
    for i in range(hashes):
        yield (h1 + i * h2) % nbits


class _BloomBuilder:
    def __init__(self, expected_keys: int):
        self.nbits = max(64, expected_keys * _BLOOM_BITS_PER_KEY)
        self.hashes = _BLOOM_HASHES
        self.bits = bytearray((self.nbits + 7) // 8)

    def add(self, key: bytes) -> None:
        for probe in _bloom_probes(key, self.nbits, self.hashes):
            self.bits[probe >> 3] |= 1 << (probe & 7)


def write_segment(
    path: str,
    namespace: str,
    items: Iterable[Tuple[bytes, Optional[bytes]]],
    sparse_every: int = 32,
    expected_keys: int = 0,
) -> int:
    """Write one sorted run to ``path``; return the entry count.

    ``items`` must be key-ascending with no duplicate keys; a ``None``
    value writes a delete marker.  The file is written to a temporary name
    and renamed into place so a crash mid-write can never leave a file that
    *both* carries the real name and passes validation.
    """
    tmp_path = path + ".tmp"
    entries = 0
    keys: List[bytes] = []  # sparse anchors only
    offsets: List[int] = []
    bloom = _BloomBuilder(max(expected_keys, 1))
    min_key: Optional[bytes] = None
    max_key: Optional[bytes] = None
    grow_bloom: List[bytes] = []
    with open(tmp_path, "wb") as handle:
        handle.write(_HEADER)
        offset = len(_HEADER)
        last_key: Optional[bytes] = None
        for key, value in items:
            if last_key is not None and key <= last_key:
                raise SegmentError(
                    f"segment items out of order: {key!r} after {last_key!r}"
                )
            last_key = key
            if entries % sparse_every == 0:
                keys.append(key)
                offsets.append(offset)
            if expected_keys:
                bloom.add(key)
            else:
                grow_bloom.append(key)
            val_len = _DELETE_LEN if value is None else len(value)
            handle.write(_ENTRY.pack(len(key), val_len))
            handle.write(key)
            if value is not None:
                handle.write(value)
            offset += _ENTRY.size + len(key) + (0 if value is None else len(value))
            if min_key is None:
                min_key = key
            max_key = key
            entries += 1
        if not expected_keys:
            bloom = _BloomBuilder(max(entries, 1))
            for key in grow_bloom:
                bloom.add(key)
        footer_offset = offset
        footer_parts: List[bytes] = []
        ns = namespace.encode("utf-8")
        footer_parts.append(_U16.pack(len(ns)) + ns)
        footer_parts.append(_U64.pack(entries))
        footer_parts.append(_U32.pack(len(min_key or b"")) + (min_key or b""))
        footer_parts.append(_U32.pack(len(max_key or b"")) + (max_key or b""))
        footer_parts.append(_U32.pack(len(keys)))
        for anchor, anchor_offset in zip(keys, offsets):
            footer_parts.append(_U32.pack(len(anchor)) + anchor)
            footer_parts.append(_U64.pack(anchor_offset))
        footer_parts.append(_U32.pack(bloom.nbits))
        footer_parts.append(bytes([bloom.hashes]))
        footer_parts.append(_U32.pack(len(bloom.bits)) + bytes(bloom.bits))
        footer = b"".join(footer_parts)
        handle.write(footer)
        handle.write(
            _TRAILER.pack(footer_offset, zlib.crc32(footer), _TRAILER_MAGIC)
        )
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return entries


class Segment:
    """A validated, opened segment file serving reads."""

    def __init__(self, path: str):
        self.path = path
        try:
            self._file = open(path, "rb")
        except OSError as exc:
            raise SegmentError(f"cannot open segment {path}: {exc}") from exc
        try:
            self._load_footer()
        except SegmentError:
            self._file.close()
            raise
        except Exception as exc:
            self._file.close()
            raise SegmentError(f"corrupt segment {path}: {exc}") from exc

    def _load_footer(self) -> None:
        handle = self._file
        size = os.path.getsize(self.path)
        if size < len(_HEADER) + _TRAILER.size:
            raise SegmentError(f"segment {self.path} is truncated ({size} bytes)")
        handle.seek(0)
        if handle.read(len(_HEADER)) != _HEADER:
            raise SegmentError(f"segment {self.path} has a bad header")
        handle.seek(size - _TRAILER.size)
        footer_offset, footer_crc, magic = _TRAILER.unpack(
            handle.read(_TRAILER.size)
        )
        if magic != _TRAILER_MAGIC:
            raise SegmentError(f"segment {self.path} has no trailer (torn write)")
        footer_len = size - _TRAILER.size - footer_offset
        if footer_len < 0:
            raise SegmentError(f"segment {self.path} footer offset out of range")
        handle.seek(footer_offset)
        footer = handle.read(footer_len)
        if zlib.crc32(footer) != footer_crc:
            raise SegmentError(f"segment {self.path} footer fails its CRC")
        view = memoryview(footer)
        pos = 0
        (ns_len,) = _U16.unpack_from(view, pos)
        pos += _U16.size
        self.namespace = bytes(view[pos : pos + ns_len]).decode("utf-8")
        pos += ns_len
        (self.entry_count,) = _U64.unpack_from(view, pos)
        pos += _U64.size
        (min_len,) = _U32.unpack_from(view, pos)
        pos += _U32.size
        self.min_key = bytes(view[pos : pos + min_len])
        pos += min_len
        (max_len,) = _U32.unpack_from(view, pos)
        pos += _U32.size
        self.max_key = bytes(view[pos : pos + max_len])
        pos += max_len
        (index_count,) = _U32.unpack_from(view, pos)
        pos += _U32.size
        self._index_keys: List[bytes] = []
        self._index_offsets: List[int] = []
        for _ in range(index_count):
            (key_len,) = _U32.unpack_from(view, pos)
            pos += _U32.size
            self._index_keys.append(bytes(view[pos : pos + key_len]))
            pos += key_len
            (anchor_offset,) = _U64.unpack_from(view, pos)
            pos += _U64.size
            self._index_offsets.append(anchor_offset)
        (self._bloom_nbits,) = _U32.unpack_from(view, pos)
        pos += _U32.size
        self._bloom_hashes = view[pos]
        pos += 1
        (bloom_len,) = _U32.unpack_from(view, pos)
        pos += _U32.size
        self._bloom_bits = bytes(view[pos : pos + bloom_len])
        pos += bloom_len
        if pos != footer_len:
            raise SegmentError(f"segment {self.path} footer has trailing bytes")
        self._data_end = footer_offset
        self.size_bytes = size

    # ------------------------------------------------------------------
    # Filters / index
    # ------------------------------------------------------------------
    def maybe_contains(self, key: bytes) -> bool:
        """False means definitely absent; True means "check the file"."""
        if self.entry_count == 0:
            return False
        if key < self.min_key or key > self.max_key:
            return False
        bits = self._bloom_bits
        for probe in _bloom_probes(key, self._bloom_nbits, self._bloom_hashes):
            if not bits[probe >> 3] & (1 << (probe & 7)):
                return False
        return True

    def _block_for(self, key: bytes) -> int:
        """Index of the sparse block that could hold ``key`` (-1 if before)."""
        import bisect

        return bisect.bisect_right(self._index_keys, key) - 1

    def _block_bounds(self, block: int) -> Tuple[int, int]:
        start = self._index_offsets[block]
        end = (
            self._index_offsets[block + 1]
            if block + 1 < len(self._index_offsets)
            else self._data_end
        )
        return start, end

    def _read_block(self, block: int) -> List[Tuple[bytes, Optional[bytes]]]:
        start, end = self._block_bounds(block)
        self._file.seek(start)
        data = self._file.read(end - start)
        entries: List[Tuple[bytes, Optional[bytes]]] = []
        pos = 0
        while pos < len(data):
            key_len, val_len = _ENTRY.unpack_from(data, pos)
            pos += _ENTRY.size
            key = data[pos : pos + key_len]
            pos += key_len
            if val_len == _DELETE_LEN:
                entries.append((key, None))
            else:
                entries.append((key, data[pos : pos + val_len]))
                pos += val_len
        return entries

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """``(found, value)``; a found delete marker is ``(True, None)``."""
        if not self.maybe_contains(key):
            return False, None
        block = self._block_for(key)
        if block < 0:
            return False, None
        for entry_key, value in self._read_block(block):
            if entry_key == key:
                return True, value
            if entry_key > key:
                break
        return False, None

    def iter_range(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        ascending: bool = True,
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Yield ``(key, value_or_None)`` with ``start <= key < end``.

        Delete markers are yielded (value ``None``) — the LSM merge layer
        needs them to shadow older segments.
        """
        if self.entry_count == 0:
            return
        blocks = len(self._index_keys)
        if ascending:
            first = 0 if start is None else max(0, self._block_for(start))
            for block in range(first, blocks):
                block_start = self._index_keys[block]
                if end is not None and block_start >= end:
                    break
                for key, value in self._read_block(block):
                    if start is not None and key < start:
                        continue
                    if end is not None and key >= end:
                        return
                    yield key, value
        else:
            if end is None:
                last = blocks - 1
            else:
                last = self._block_for(end)
                if last < 0:
                    return
            for block in range(last, -1, -1):
                entries = self._read_block(block)
                if start is not None and entries and entries[-1][0] < start:
                    return
                for key, value in reversed(entries):
                    if end is not None and key >= end:
                        continue
                    if start is not None and key < start:
                        return
                    yield key, value

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({os.path.basename(self.path)}, ns={self.namespace!r}, "
            f"entries={self.entry_count}, bytes={self.size_bytes})"
        )
