"""LSM-lite persistent engine: memtables, WAL, sorted segments, compaction.

One :class:`LsmEngine` owns one node's directory::

    node-<id>/
        wal.log            engine-wide write-ahead log
        seg-<gen>.seg      immutable sorted runs (gen = age order)
        spill/             scratch runs for budgeted bulk loads

Writes land in a per-namespace **memtable** (a dict whose ``None`` values
are engine-level delete markers) after being framed into the WAL.  When the
engine-wide memtable budget is exceeded, every dirty memtable is flushed to
a new segment file and the WAL is reset — so at any instant
``segments + WAL`` covers the full acknowledged history, which is the
invariant crash recovery relies on.

Reads merge the memtable with the segment stack newest-first; range scans
are streaming ``heapq.merge`` passes that dedupe per key (newest wins) and
skip delete markers, so memory is bounded by the segment count, never the
range size.

**Size-tiered compaction** merges *age-contiguous* runs of ``fanout`` or
more segments in the same size tier.  Age contiguity is a correctness
requirement, not a heuristic: merging non-adjacent segments would let the
merged (newer-positioned) run shadow values written between its inputs.
The merged segment atomically replaces the run's newest member (keeping
its generation number, hence its age position) and the older members are
deleted; delete markers are dropped only when the run includes the oldest
segment, since only then is there nothing beneath them left to shadow.
Compaction is surfaced as ``maintenance_backlog()`` units that the serving
event kernel drains in the background; a hard per-tree segment cap compacts
inline as a backstop for non-serving runs.

Generation numbers double as the recovery ordering: a fresh engine (or
:meth:`recover` after :meth:`crash`) loads every segment with a valid
footer in generation order, discards partially written segments (their
contents are still in the WAL), replays the WAL — truncating a torn tail —
and is back to exactly the acknowledged state.  The simulator's ``crash()``
happens between operations, never inside a flush or compaction step.
"""

from __future__ import annotations

import bisect
import heapq
import os
import re
import shutil
from typing import Dict, Iterator, List, Optional, Tuple

from .base import EngineRecovery, StorageEngine
from .external import SpillingSorter
from .segment import Segment, SegmentError, write_segment
from .wal import OP_DELETE, OP_DROP_NAMESPACE, OP_PUT, WriteAheadLog

#: Rough per-entry memtable overhead (dict slot + key/value objects).
_MEM_ENTRY_OVERHEAD = 64

_SEGMENT_NAME = re.compile(r"^seg-(\d{8})\.seg$")


def _tagged(pairs, priority: int):
    """Tag ``(key, value)`` pairs with a merge priority, bound eagerly."""
    return ((key, priority, value) for key, value in pairs)


class LsmTree:
    """One namespace's view: a memtable over a stack of segments.

    Presents the same surface as :class:`~repro.kvstore.memory.OrderedKVMap`
    so the replication tier is engine-agnostic.  ``None`` memtable values
    are delete markers shadowing older segment entries.
    """

    def __init__(self, namespace: str, engine: "LsmEngine"):
        self.namespace = namespace
        self._engine = engine
        self._mem: Dict[bytes, Optional[bytes]] = {}
        self._sorted: List[bytes] = []
        self._dirty = False
        self.mem_bytes = 0
        #: Oldest -> newest; the memtable is newer than all of them.
        self.segments: List[Segment] = []

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        if key in self._mem:
            return self._mem[key]
        for segment in reversed(self.segments):
            found, value = segment.get(key)
            if found:
                return value
        return None

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError(f"keys must be bytes, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"values must be bytes, got {type(value).__name__}")
        key, value = bytes(key), bytes(value)
        self._engine._log_put(self.namespace, key, value)
        self._apply_put(key, value)
        self._engine._after_mutation()

    def delete(self, key: bytes) -> bool:
        if self.get(key) is None:
            return False
        self._engine._log_delete(self.namespace, key)
        self._apply_delete(key)
        self._engine._after_mutation()
        return True

    def test_and_set(
        self, key: bytes, expected: Optional[bytes], new_value: bytes
    ) -> bool:
        if self.get(key) != expected:
            return False
        self.put(key, new_value)
        return True

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.count_range()

    # ------------------------------------------------------------------
    # Memtable internals (WAL-free: also used by recovery replay)
    # ------------------------------------------------------------------
    def _entry_bytes(self, key: bytes, value: Optional[bytes]) -> int:
        return len(key) + (0 if value is None else len(value)) + _MEM_ENTRY_OVERHEAD

    def _apply_put(self, key: bytes, value: Optional[bytes]) -> None:
        if key in self._mem:
            self.mem_bytes -= self._entry_bytes(key, self._mem[key])
        else:
            self._dirty = True
        self._mem[key] = value
        self.mem_bytes += self._entry_bytes(key, value)

    def _apply_delete(self, key: bytes) -> None:
        if self.segments:
            # A marker must shadow whatever older segments hold.
            self._apply_put(key, None)
        elif key in self._mem:
            self.mem_bytes -= self._entry_bytes(key, self._mem[key])
            del self._mem[key]
            self._dirty = True

    def _ensure_sorted(self) -> None:
        if self._dirty or len(self._sorted) != len(self._mem):
            self._sorted = sorted(self._mem)
            self._dirty = False

    def _mem_iter(
        self,
        start: Optional[bytes],
        end: Optional[bytes],
        ascending: bool,
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        self._ensure_sorted()
        keys = self._sorted
        lo = 0 if start is None else bisect.bisect_left(keys, start)
        hi = len(keys) if end is None else bisect.bisect_left(keys, end)
        indices = range(lo, hi) if ascending else range(hi - 1, lo - 1, -1)
        for index in indices:
            key = keys[index]
            yield key, self._mem[key]

    # ------------------------------------------------------------------
    # Merged iteration
    # ------------------------------------------------------------------
    def iter_merged(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        ascending: bool = True,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Stream live ``(key, value)`` pairs, newest write per key winning.

        The tree must not be mutated or flushed while the iterator is live
        (same contract as ``OrderedKVMap.iter_range``).
        """
        sources = [
            _tagged(segment.iter_range(start, end, ascending), priority)
            for priority, segment in enumerate(self.segments)
        ]
        sources.append(
            _tagged(self._mem_iter(start, end, ascending), len(self.segments))
        )
        if ascending:
            merged = heapq.merge(*sources, key=lambda e: (e[0], -e[1]))
        else:
            merged = heapq.merge(
                *sources, key=lambda e: (e[0], e[1]), reverse=True
            )
        previous: Optional[bytes] = None
        for key, _priority, value in merged:
            if key == previous:
                continue
            previous = key
            if value is not None:
                yield key, value

    # ------------------------------------------------------------------
    # OrderedKVMap-compatible range surface
    # ------------------------------------------------------------------
    def range(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        limit: Optional[int] = None,
        ascending: bool = True,
    ) -> List[Tuple[bytes, bytes]]:
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        out: List[Tuple[bytes, bytes]] = []
        for pair in self.iter_merged(start, end, ascending):
            out.append(pair)
            if limit is not None and len(out) >= limit:
                break
        return out

    def iter_range(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        ascending: bool = True,
    ) -> Iterator[Tuple[bytes, bytes]]:
        return self.iter_merged(start, end, ascending)

    def count_range(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> int:
        return sum(1 for _ in self.iter_merged(start, end))

    def iter_items(self) -> Iterator[Tuple[bytes, bytes]]:
        return self.iter_merged()

    def clear(self) -> None:
        self._engine._clear_tree(self)


class LsmEngine(StorageEngine):
    """Persistent per-node engine built from LSM trees over one directory."""

    name = "lsm"
    durable = True

    def __init__(
        self,
        data_dir: str,
        memtable_budget_bytes: int = 4 << 20,
        fanout: int = 4,
        sparse_index_every: int = 32,
        sync_writes: bool = False,
    ):
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.data_dir = data_dir
        self.memtable_budget_bytes = memtable_budget_bytes
        self.fanout = fanout
        self.sparse_index_every = sparse_index_every
        self.sync_writes = sync_writes
        #: Inline-compaction backstop for runs without a serving kernel.
        self.hard_segment_cap = fanout * 4
        os.makedirs(data_dir, exist_ok=True)
        self._trees: Dict[str, LsmTree] = {}
        self._next_gen = 0
        self._crashed = False
        # Lifetime counters (monotonic; exported as gauges).
        self.flushes = 0
        self.compactions = 0
        self.recoveries = 0
        self.bulk_loads = 0
        self.bulk_spill_count = 0
        self.wal_records_replayed = 0
        self.torn_tail_bytes_dropped = 0
        self.partial_segments_discarded = 0
        self.wal = WriteAheadLog(self._wal_path(), sync=sync_writes)
        #: Recovery outcome from opening a pre-existing directory (all
        #: zeroes for a fresh one).
        self.last_recovery = self._restore()

    def _wal_path(self) -> str:
        return os.path.join(self.data_dir, "wal.log")

    def _segment_path(self, gen: int) -> str:
        return os.path.join(self.data_dir, f"seg-{gen:08d}.seg")

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _tree(self, namespace: str) -> LsmTree:
        tree = self._trees.get(namespace)
        if tree is None:
            tree = LsmTree(namespace, self)
            self._trees[namespace] = tree
        return tree

    def map(self, namespace: str) -> LsmTree:
        if self._crashed:
            raise RuntimeError("lsm engine is crashed; call recover() first")
        return self._tree(namespace)

    def peek(self, namespace: str) -> Optional[LsmTree]:
        return self._trees.get(namespace)

    def namespaces(self) -> List[str]:
        return sorted(self._trees)

    def drop_namespace(self, namespace: str) -> None:
        tree = self._trees.pop(namespace, None)
        if tree is None:
            return
        self.wal.append_drop_namespace(namespace)
        for segment in tree.segments:
            segment.close()
            try:
                os.remove(segment.path)
            except OSError:
                pass

    def _clear_tree(self, tree: LsmTree) -> None:
        self.wal.append_drop_namespace(tree.namespace)
        for segment in tree.segments:
            segment.close()
            try:
                os.remove(segment.path)
            except OSError:
                pass
        tree.segments = []
        tree._mem.clear()
        tree._sorted = []
        tree._dirty = False
        tree.mem_bytes = 0

    # ------------------------------------------------------------------
    # WAL hooks (called by trees before mutating their memtables)
    # ------------------------------------------------------------------
    def _log_put(self, namespace: str, key: bytes, value: bytes) -> None:
        self.wal.append_put(namespace, key, value)

    def _log_delete(self, namespace: str, key: bytes) -> None:
        self.wal.append_delete(namespace, key)

    def _after_mutation(self) -> None:
        if self.memtable_bytes() > self.memtable_budget_bytes:
            self.flush()

    def memtable_bytes(self) -> int:
        return sum(tree.mem_bytes for tree in self._trees.values())

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write every dirty memtable to a segment, then reset the WAL."""
        flushed = []
        for tree in self._trees.values():
            if not tree._mem:
                continue
            tree._ensure_sorted()
            if tree.segments:
                items = ((key, tree._mem[key]) for key in tree._sorted)
            else:
                # Nothing beneath to shadow: drop markers at the bottom.
                items = (
                    (key, tree._mem[key])
                    for key in tree._sorted
                    if tree._mem[key] is not None
                )
            gen = self._next_gen
            self._next_gen += 1
            path = self._segment_path(gen)
            write_segment(
                path,
                tree.namespace,
                items,
                self.sparse_index_every,
                len(tree._mem),
            )
            segment = Segment(path)
            if segment.entry_count:
                tree.segments.append(segment)
            else:
                segment.close()
                os.remove(path)
            tree._mem.clear()
            tree._sorted = []
            tree._dirty = False
            tree.mem_bytes = 0
            self.flushes += 1
            flushed.append(tree)
        # Disk segments now cover every acknowledged write.
        self.wal.reset()
        for tree in flushed:
            while len(tree.segments) > self.hard_segment_cap:
                self._compact_run(
                    tree, 0, min(len(tree.segments), self.fanout + 1)
                )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    @staticmethod
    def _tier(segment: Segment) -> int:
        # Each tier spans a 4x size band.
        return max(0, (max(segment.size_bytes, 1).bit_length() - 1) // 2)

    def _candidate_runs(self, tree: LsmTree) -> List[Tuple[int, int]]:
        """Age-contiguous same-tier runs of at least ``fanout`` segments."""
        runs: List[Tuple[int, int]] = []
        segments = tree.segments
        i = 0
        while i < len(segments):
            tier = self._tier(segments[i])
            j = i
            while j < len(segments) and self._tier(segments[j]) == tier:
                j += 1
            if j - i >= self.fanout:
                runs.append((i, j))
            i = j
        return runs

    def _compact_run(self, tree: LsmTree, i: int, j: int) -> None:
        """Merge ``tree.segments[i:j]`` into one segment at position ``j-1``.

        The merged file atomically replaces the run's newest member
        (keeping its generation, hence its recovery-order position); older
        members are deleted afterwards.
        """
        run = tree.segments[i:j]
        if len(run) < 2:
            return
        drop_markers = i == 0
        sources = [
            _tagged(segment.iter_range(), priority)
            for priority, segment in enumerate(run)
        ]
        merged = heapq.merge(*sources, key=lambda e: (e[0], -e[1]))

        def live() -> Iterator[Tuple[bytes, Optional[bytes]]]:
            previous: Optional[bytes] = None
            for key, _priority, value in merged:
                if key == previous:
                    continue
                previous = key
                if value is None and drop_markers:
                    continue
                yield key, value

        path = run[-1].path
        write_segment(
            path,
            tree.namespace,
            live(),
            self.sparse_index_every,
            sum(segment.entry_count for segment in run),
        )
        replacement = Segment(path)
        for segment in run:
            segment.close()
        for segment in run[:-1]:
            try:
                os.remove(segment.path)
            except OSError:
                pass
        if replacement.entry_count:
            tree.segments[i:j] = [replacement]
        else:
            replacement.close()
            os.remove(path)
            tree.segments[i:j] = []
        self.compactions += 1

    def maintenance_backlog(self) -> int:
        return sum(
            len(self._candidate_runs(tree)) for tree in self._trees.values()
        )

    def run_maintenance(self, max_tasks: Optional[int] = None) -> int:
        ran = 0
        while max_tasks is None or ran < max_tasks:
            for tree in self._trees.values():
                runs = self._candidate_runs(tree)
                if runs:
                    self._compact_run(tree, *runs[0])
                    ran += 1
                    break
            else:
                return ran
        return ran

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------
    def bulk_load(
        self, namespace: str, items, memory_budget_bytes: Optional[int] = None
    ) -> int:
        """Build one segment from an unsorted stream under a byte budget.

        Bypasses the WAL: the segment rename is the commit point.  The
        engine flushes first so no stale memtable entry can shadow the new
        (newest) segment.
        """
        tree = self.map(namespace)
        self.flush()
        budget = memory_budget_bytes or self.memtable_budget_bytes
        sorter = SpillingSorter(
            os.path.join(self.data_dir, "spill"), budget_bytes=budget
        )
        for key, value in items:
            sorter.add(bytes(key), bytes(value))
        gen = self._next_gen
        self._next_gen += 1
        path = self._segment_path(gen)
        stored = 0

        def pairs() -> Iterator[Tuple[bytes, bytes]]:
            nonlocal stored
            for key, value in sorter.iter_sorted():
                stored += 1
                yield key, value

        write_segment(
            path, namespace, pairs(), self.sparse_index_every,
            sorter.items_added,
        )
        self.bulk_spill_count += sorter.spill_count
        self.bulk_loads += 1
        segment = Segment(path)
        if segment.entry_count:
            tree.segments.append(segment)
        else:
            segment.close()
            os.remove(path)
        return stored

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all volatile state; only the WAL and segment files survive."""
        for tree in self._trees.values():
            for segment in tree.segments:
                segment.close()
        self._trees.clear()
        self.wal.close()
        self._crashed = True

    def recover(self) -> EngineRecovery:
        """Reload segments and replay the WAL after :meth:`crash`."""
        self.wal = WriteAheadLog(self._wal_path(), sync=self.sync_writes)
        self._crashed = False
        info = self._restore()
        self.recoveries += 1
        return info

    def _restore(self) -> EngineRecovery:
        info = EngineRecovery()
        found: List[Tuple[int, str]] = []
        for name in os.listdir(self.data_dir):
            match = _SEGMENT_NAME.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self.data_dir, name)))
        for gen, path in sorted(found):
            self._next_gen = max(self._next_gen, gen + 1)
            try:
                segment = Segment(path)
            except SegmentError:
                # No valid footer: the crash hit mid-flush.  The WAL still
                # holds these records, so discarding loses nothing.
                os.remove(path)
                info.partial_segments_discarded += 1
                continue
            self._tree(segment.namespace).segments.append(segment)
            info.segments_loaded += 1
        replay = WriteAheadLog.replay(self.wal.path)
        for op, namespace, key, value in replay.ops:
            tree = self._tree(namespace)
            if op == OP_PUT:
                tree._apply_put(key, value)
            elif op == OP_DELETE:
                tree._apply_delete(key)
            elif op == OP_DROP_NAMESPACE:
                tree._mem.clear()
                tree._sorted = []
                tree._dirty = False
                tree.mem_bytes = 0
        self.wal.records_appended = len(replay.ops)
        info.wal_records_replayed = len(replay.ops)
        info.torn_tail_bytes_dropped = replay.torn_bytes
        info.namespaces = self.namespaces()
        self.wal_records_replayed += info.wal_records_replayed
        self.torn_tail_bytes_dropped += info.torn_tail_bytes_dropped
        self.partial_segments_discarded += info.partial_segments_discarded
        return info

    def close(self) -> None:
        if not self._crashed:
            self.flush()
            for tree in self._trees.values():
                for segment in tree.segments:
                    segment.close()
        self.wal.close()

    def destroy(self) -> None:
        """Close without flushing and delete the engine's directory."""
        if not self._crashed:
            for tree in self._trees.values():
                for segment in tree.segments:
                    segment.close()
            self._trees.clear()
        self.wal.close()
        shutil.rmtree(self.data_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def gauges(self) -> Dict[str, float]:
        segment_count = sum(
            len(tree.segments) for tree in self._trees.values()
        )
        segment_bytes = sum(
            segment.size_bytes
            for tree in self._trees.values()
            for segment in tree.segments
        )
        return {
            "memtable_bytes": float(self.memtable_bytes()),
            "wal_bytes": float(self.wal.size_bytes() if not self._crashed else 0),
            "segment_count": float(segment_count),
            "segment_bytes": float(segment_bytes),
            "compaction_backlog": float(self.maintenance_backlog()),
            "flushes": float(self.flushes),
            "compactions": float(self.compactions),
            "recoveries": float(self.recoveries),
            "wal_records_replayed": float(self.wal_records_replayed),
            "torn_tail_bytes_dropped": float(self.torn_tail_bytes_dropped),
            "partial_segments_discarded": float(self.partial_segments_discarded),
        }
