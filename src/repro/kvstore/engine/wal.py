"""Write-ahead log with torn-tail detection.

Every mutation the LSM engine accepts is appended here *before* it touches
the memtable, so an acknowledged write survives a crash that loses all
in-memory state.  The log is a single append-only file of CRC-framed
records::

    record = crc32(payload) (4 bytes BE) | len(payload) (4 bytes BE) | payload
    payload = op (1 byte) | ns_len (2) | ns | key_len (4) | key [| val_len (4) | val]

Ops: ``1`` put, ``2`` delete (an engine-level physical removal, e.g.
anti-entropy pruning — *replication tombstones* are ordinary puts whose
value encodes the tombstone flag), ``3`` drop-namespace.

Replay reads records until the file ends or a frame fails its length or
CRC check.  A bad frame is a **torn tail** — the crash interrupted the last
append — so everything from that offset on is dropped and the file is
truncated back to the last good record.  Any record before the tear was
fully written before its writer was acknowledged, so acknowledged writes
are never lost; the torn record itself was never acknowledged.

The log is reset (truncated to empty) only after a memtable flush has
durably written its segment files, so at every instant ``segments + WAL``
covers the full acknowledged history.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

_FRAME = struct.Struct(">II")
_NS_LEN = struct.Struct(">H")
_KEY_LEN = struct.Struct(">I")

OP_PUT = 1
OP_DELETE = 2
OP_DROP_NAMESPACE = 3

#: One replayed operation: ``(op, namespace, key, value)``; ``key``/``value``
#: are empty for ops that do not carry them.
WalOp = Tuple[int, str, bytes, bytes]


@dataclass
class WalReplay:
    """Outcome of replaying one log file."""

    ops: List[WalOp] = field(default_factory=list)
    #: File offset just past the last intact record.
    good_offset: int = 0
    #: Bytes dropped from a torn tail (0 on a clean log).
    torn_bytes: int = 0


def _encode(op: int, namespace: str, key: bytes, value: Optional[bytes]) -> bytes:
    ns = namespace.encode("utf-8")
    parts = [bytes([op]), _NS_LEN.pack(len(ns)), ns]
    parts.append(_KEY_LEN.pack(len(key)))
    parts.append(key)
    if op == OP_PUT:
        assert value is not None
        parts.append(_KEY_LEN.pack(len(value)))
        parts.append(value)
    return b"".join(parts)


def _decode(payload: bytes) -> Optional[WalOp]:
    try:
        op = payload[0]
        offset = 1
        (ns_len,) = _NS_LEN.unpack_from(payload, offset)
        offset += _NS_LEN.size
        namespace = payload[offset : offset + ns_len].decode("utf-8")
        offset += ns_len
        (key_len,) = _KEY_LEN.unpack_from(payload, offset)
        offset += _KEY_LEN.size
        key = payload[offset : offset + key_len]
        offset += key_len
        value = b""
        if op == OP_PUT:
            (val_len,) = _KEY_LEN.unpack_from(payload, offset)
            offset += _KEY_LEN.size
            value = payload[offset : offset + val_len]
            if len(value) != val_len:
                return None
            offset += val_len
        if len(key) != key_len or offset != len(payload):
            return None
        if op not in (OP_PUT, OP_DELETE, OP_DROP_NAMESPACE):
            return None
        return op, namespace, key, value
    except (IndexError, struct.error, UnicodeDecodeError):
        return None


class WriteAheadLog:
    """Append-only CRC-framed log backing one engine's memtables."""

    def __init__(self, path: str, sync: bool = False):
        self.path = path
        self.sync = sync
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._file = open(path, "ab")
        #: Appends since the last reset (mirrors what replay would return).
        self.records_appended = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _append(self, payload: bytes) -> None:
        frame = _FRAME.pack(zlib.crc32(payload), len(payload)) + payload
        self._file.write(frame)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())
        self.records_appended += 1

    def append_put(self, namespace: str, key: bytes, value: bytes) -> None:
        self._append(_encode(OP_PUT, namespace, key, value))

    def append_delete(self, namespace: str, key: bytes) -> None:
        self._append(_encode(OP_DELETE, namespace, key, None))

    def append_drop_namespace(self, namespace: str) -> None:
        self._append(_encode(OP_DROP_NAMESPACE, namespace, b"", None))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def reset(self) -> None:
        """Truncate the log to empty (call only after a durable flush)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())
        self.records_appended = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: str, truncate_torn_tail: bool = True) -> WalReplay:
        """Read every intact record; optionally truncate a torn tail."""
        replay = WalReplay()
        try:
            size = os.path.getsize(path)
        except OSError:
            return replay
        with open(path, "rb") as handle:
            offset = 0
            while True:
                header = handle.read(_FRAME.size)
                if len(header) < _FRAME.size:
                    break
                crc, length = _FRAME.unpack(header)
                payload = handle.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    break
                op = _decode(payload)
                if op is None:
                    break
                replay.ops.append(op)
                offset += _FRAME.size + length
        replay.good_offset = offset
        replay.torn_bytes = max(0, size - offset)
        if replay.torn_bytes and truncate_torn_tail:
            with open(path, "r+b") as handle:
                handle.truncate(offset)
        return replay

    def iter_ops(self) -> Iterator[WalOp]:  # pragma: no cover - debugging aid
        yield from self.replay(self.path, truncate_torn_tail=False).ops
