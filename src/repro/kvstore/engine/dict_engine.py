"""The default in-memory engine: one ordered map per namespace.

This is exactly the seed simulator's storage behaviour, factored behind the
engine interface: every namespace is an
:class:`~repro.kvstore.memory.OrderedKVMap`, nothing is durable, and a
"crash" loses nothing because the simulation keeps the process alive — a
crashed node recovers through hinted handoff and anti-entropy alone.  Every
pre-engine benchmark and test runs against this engine bit-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..memory import OrderedKVMap
from .base import StorageEngine


class DictEngine(StorageEngine):
    """In-memory, volatile storage: the seed behaviour."""

    name = "dict"
    durable = False

    def __init__(self) -> None:
        self._maps: Dict[str, OrderedKVMap] = {}

    def map(self, namespace: str) -> OrderedKVMap:
        return self._maps.setdefault(namespace, OrderedKVMap())

    def peek(self, namespace: str) -> Optional[OrderedKVMap]:
        return self._maps.get(namespace)

    def namespaces(self) -> List[str]:
        return sorted(self._maps)

    def drop_namespace(self, namespace: str) -> None:
        self._maps.pop(namespace, None)

    def gauges(self) -> Dict[str, float]:
        keys = sum(len(m) for m in self._maps.values())
        return {"resident_keys": float(keys)}
