"""The storage-engine interface every node's replica store builds on.

An engine owns the *physical* side of one storage node's data: how the
per-namespace ordered maps the replication tier reads and writes are
actually held (in memory, or on disk behind a WAL and segment files).  The
*logical* side — versioned records, tombstones, newest-wins merging — stays
in :mod:`repro.replication.store` and is identical across engines, which is
what keeps query results and operation counts engine-independent.

A namespace map must provide the :class:`~repro.kvstore.memory.OrderedKVMap`
surface the replica store uses::

    get(key) -> Optional[bytes]
    put(key, value) -> None
    delete(key) -> bool
    range(start, end, limit, ascending) -> List[Tuple[bytes, bytes]]
    iter_range(start, end, ascending) -> Iterator[Tuple[bytes, bytes]]
    iter_items() -> Iterator[Tuple[bytes, bytes]]
    __len__ / __contains__

Everything beyond that — durability, crash recovery, background
maintenance, gauges — goes through the engine object itself so the cluster
and telemetry tiers can treat engines uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class EngineRecovery:
    """What one crash-recovery pass restored from durable state.

    ``wal_records_replayed`` counts every logged operation re-applied to the
    memtables; ``torn_tail_bytes_dropped`` is the length of the truncated
    partial record at the WAL tail (zero on a clean shutdown); partially
    written segment files (no valid footer) are discarded and counted —
    their contents are still covered by the WAL, which is only reset
    *after* a flush completes.
    """

    segments_loaded: int = 0
    partial_segments_discarded: int = 0
    wal_records_replayed: int = 0
    torn_tail_bytes_dropped: int = 0
    namespaces: List[str] = field(default_factory=list)

    def summary(self) -> Dict[str, int]:
        return {
            "segments_loaded": self.segments_loaded,
            "partial_segments_discarded": self.partial_segments_discarded,
            "wal_records_replayed": self.wal_records_replayed,
            "torn_tail_bytes_dropped": self.torn_tail_bytes_dropped,
        }


class StorageEngine:
    """Base class for per-node storage engines.

    Subclasses override the data-path methods; the maintenance / recovery
    surface defaults to no-ops so a purely in-memory engine needs nothing
    beyond :meth:`map`.
    """

    #: Engine name as configured (``ClusterConfig.storage_engine``).
    name: str = "abstract"
    #: Whether state survives a process crash.  Durable engines get their
    #: :meth:`crash`/:meth:`recover` pair invoked by the cluster's
    #: crash/recover path; volatile engines keep state in-process (the
    #: simulator's historical behaviour) and recover purely through hinted
    #: handoff and anti-entropy.
    durable: bool = False

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def map(self, namespace: str):
        """The (created-on-demand) ordered map backing one namespace."""
        raise NotImplementedError

    def peek(self, namespace: str):
        """The namespace map if it already exists, else ``None``.

        Read paths use this so probing a namespace a node has never stored
        does not create empty per-namespace state.
        """
        raise NotImplementedError

    def namespaces(self) -> List[str]:
        raise NotImplementedError

    def drop_namespace(self, namespace: str) -> None:
        raise NotImplementedError

    def bulk_load(
        self, namespace: str, items: Iterable[Tuple[bytes, bytes]]
    ) -> int:
        """Load many ``(key, value)`` pairs, returning how many were stored.

        Items may arrive in any order and may repeat keys (the last
        occurrence wins).  The default implementation just puts them one at
        a time; durable engines override this with a segment-building
        pipeline that bypasses the WAL.
        """
        target = self.map(namespace)
        count = 0
        for key, value in items:
            target.put(key, value)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Durability / maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Make all buffered state durable (no-op for volatile engines)."""

    def maintenance_backlog(self) -> int:
        """Pending background-maintenance units (compactions ready to run)."""
        return 0

    def run_maintenance(self, max_tasks: Optional[int] = None) -> int:
        """Run up to ``max_tasks`` maintenance units; return how many ran."""
        return 0

    def crash(self) -> None:
        """Simulate a process crash: volatile state is lost, files survive."""

    def recover(self) -> EngineRecovery:
        """Rebuild serving state from durable storage after a crash."""
        return EngineRecovery()

    def close(self) -> None:
        """Release file handles; the engine must not be used afterwards."""

    def destroy(self) -> None:
        """Close and delete all on-disk state (a node leaving the cluster)."""
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def gauges(self) -> Dict[str, float]:
        """Point-in-time engine gauges, scraped into fleet telemetry.

        Keys are engine-relative (``memtable_bytes``, ``segment_count``,
        ...); the telemetry collector prefixes them with ``engine.``.
        """
        return {}
