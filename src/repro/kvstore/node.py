"""Simulated storage node.

A node does not own data in this simulator (the cluster keeps each
namespace in a single logically-global ordered map so that range semantics
are exact); a node exists to model the *performance* side of the system:
it has a latency model, a capacity, a current utilisation, and counters.

This split — exact data semantics, simulated performance — is the key
substitution that lets a single Python process stand in for the paper's
150-machine EC2 cluster while still exercising all of PIQL's code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..obs.metrics import MetricsRegistry
from .latency import LatencyModel, LatencyParameters

#: The counters a node keeps, as ``(field name, cast)``; registry names are
#: ``node.<field>``.
_NODE_COUNTERS: Tuple[Tuple[str, type], ...] = (
    ("gets", int),
    ("puts", int),
    ("range_requests", int),
    ("keys_read", int),
    ("keys_written", int),
    ("keys_filtered", int),
    ("total_latency_seconds", float),
    ("queue_wait_seconds", float),
)


class NodeStats:
    """Operation counters for one storage node, registry-backed.

    ``keys_filtered`` counts keys examined by a server-side range filter but
    not shipped to the client (predicate pushdown; the examination is still
    charged).  All fields are thin properties over ``node.*`` metrics in
    :attr:`metrics`; :meth:`reset` and snapshots are generic over the
    registry's names.
    """

    __slots__ = ("metrics",)

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = MetricsRegistry() if metrics is None else metrics

    def reset(self) -> None:
        self.metrics.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name, _ in _NODE_COUNTERS
        )
        return f"NodeStats({fields})"


def _node_counter(name: str, cast: type) -> property:
    metric = f"node.{name}"

    def fget(self: NodeStats):
        return cast(self.metrics.value(metric))

    def fset(self: NodeStats, value) -> None:
        self.metrics.set_counter(metric, value)

    return property(fget, fset)


for _name, _cast in _NODE_COUNTERS:
    setattr(NodeStats, _name, _node_counter(_name, _cast))
del _name, _cast


@dataclass
class StorageNode:
    """Performance model of one storage server.

    Parameters
    ----------
    node_id:
        Position of the node in the cluster.
    latency_model:
        Service-time model used to charge requests served by this node.
    capacity_ops_per_second:
        Sustainable operation rate; offered load above this drives queueing
        delay through the utilisation factor.
    """

    node_id: int
    latency_model: LatencyModel
    capacity_ops_per_second: float = 4000.0
    utilization: float = 0.0
    #: Liveness: a crashed node (``up=False``) serves nothing; the cluster's
    #: quorum paths route around it and buffer its writes as hints.
    up: bool = True
    #: Service-time multiplier for a degraded ("slow") node; also divides
    #: its effective capacity.  1.0 = healthy.
    speed_factor: float = 1.0
    stats: NodeStats = field(default_factory=NodeStats)
    #: Optional request queue (duck-typed: any object with
    #: ``on_request(sim_time, service_seconds) -> wait_seconds``).  When set
    #: — the serving tier installs a
    #: :class:`~repro.serving.queueing.NodeRequestQueue` — every charge also
    #: pays a first-come-first-served waiting time behind in-flight requests,
    #: so contention between concurrent clients shows up as queueing delay.
    request_queue: Optional[object] = None
    #: Queue wait charged by the most recent RPC this node served; the
    #: cluster reads it back to attribute critical-replica queueing on the
    #: client's rpc spans (zero outside serving mode).
    last_queue_wait_seconds: float = 0.0

    @classmethod
    def create(
        cls,
        node_id: int,
        params: Optional[LatencyParameters] = None,
        seed: int = 0,
        capacity_ops_per_second: float = 4000.0,
    ) -> "StorageNode":
        """Build a node with its own deterministic latency stream."""
        model = LatencyModel(params, seed=seed * 10_007 + node_id)
        return cls(
            node_id=node_id,
            latency_model=model,
            capacity_ops_per_second=capacity_ops_per_second,
        )

    @property
    def effective_capacity_ops_per_second(self) -> float:
        """Sustainable rate accounting for degradation (slow-node faults)."""
        return self.capacity_ops_per_second / self.speed_factor

    def set_offered_load(self, ops_per_second: float) -> None:
        """Update the node's utilisation given an offered operation rate."""
        if ops_per_second < 0:
            raise ValueError("offered load must be non-negative")
        self.utilization = ops_per_second / self.effective_capacity_ops_per_second

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------
    def mark_down(self) -> None:
        """Crash the node: it serves nothing until :meth:`mark_up`."""
        self.up = False

    def mark_up(self) -> None:
        self.up = True

    def degrade(self, factor: float) -> None:
        """Slow the node down: every service time is multiplied by ``factor``."""
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        self.speed_factor = factor

    def restore(self) -> None:
        """Clear a slow-node degradation."""
        self.speed_factor = 1.0

    def _queue_wait(self, sim_time: float, service_seconds: float) -> float:
        """Waiting time behind in-flight requests (zero without a queue)."""
        if self.request_queue is None:
            self.last_queue_wait_seconds = 0.0
            return 0.0
        wait = self.request_queue.on_request(sim_time, service_seconds)
        self.last_queue_wait_seconds = wait
        self.stats.metrics.add("node.queue_wait_seconds", wait)
        return wait

    def charge_read(self, num_keys: int, num_bytes: int, sim_time: float) -> float:
        """Charge one read RPC touching ``num_keys`` keys; return latency (s)."""
        latency = self.latency_model.sample_seconds(
            num_keys=num_keys,
            num_bytes=num_bytes,
            utilization=self.utilization,
            sim_time=sim_time,
        )
        latency *= self.speed_factor
        latency += self._queue_wait(sim_time, latency)
        metrics = self.stats.metrics
        metrics.add("node.gets", 1)
        metrics.add("node.keys_read", num_keys)
        metrics.add("node.total_latency_seconds", latency)
        return latency

    def charge_range(self, num_keys: int, num_bytes: int, sim_time: float) -> float:
        """Charge one range RPC returning ``num_keys`` keys; return latency (s)."""
        latency = self.latency_model.sample_seconds(
            num_keys=num_keys,
            num_bytes=num_bytes,
            utilization=self.utilization,
            sim_time=sim_time,
        )
        latency *= self.speed_factor
        latency += self._queue_wait(sim_time, latency)
        metrics = self.stats.metrics
        metrics.add("node.range_requests", 1)
        metrics.add("node.keys_read", num_keys)
        metrics.add("node.total_latency_seconds", latency)
        return latency

    def charge_filtered_range(
        self,
        examined_keys: int,
        shipped_keys: int,
        shipped_bytes: int,
        sim_time: float,
    ) -> float:
        """Charge one range RPC that filters server-side; return latency (s).

        The node pays for every key it *examines* (the scan work is done
        whether or not a key matches the pushed predicate) but only for the
        bytes it actually *ships* — that asymmetry is the whole point of
        predicate pushdown.
        """
        latency = self.latency_model.sample_seconds(
            num_keys=examined_keys,
            num_bytes=shipped_bytes,
            utilization=self.utilization,
            sim_time=sim_time,
        )
        latency *= self.speed_factor
        latency += self._queue_wait(sim_time, latency)
        metrics = self.stats.metrics
        metrics.add("node.range_requests", 1)
        metrics.add("node.keys_read", examined_keys)
        metrics.add("node.keys_filtered", examined_keys - shipped_keys)
        metrics.add("node.total_latency_seconds", latency)
        return latency

    def charge_write(self, num_keys: int, num_bytes: int, sim_time: float) -> float:
        """Charge one write RPC writing ``num_keys`` keys; return latency (s)."""
        latency = self.latency_model.sample_seconds(
            num_keys=num_keys,
            num_bytes=num_bytes,
            utilization=self.utilization,
            sim_time=sim_time,
        )
        latency *= self.speed_factor
        latency += self._queue_wait(sim_time, latency)
        metrics = self.stats.metrics
        metrics.add("node.puts", 1)
        metrics.add("node.keys_written", num_keys)
        metrics.add("node.total_latency_seconds", latency)
        return latency
