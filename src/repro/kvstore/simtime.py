"""Simulated time.

The PIQL paper measures wall-clock latency against a real key/value store
cluster running on EC2.  This reproduction replaces the cluster with a
simulator, so time itself has to be simulated: every key/value operation is
charged a latency sampled from a service-time model, and the *simulated*
clock of the issuing client advances by that amount.

The clock is deliberately simple: it is a monotonically increasing floating
point number of seconds.  Each emulated client thread owns its own clock so
that many threads can be simulated without any real concurrency; throughput
is then "interactions completed per simulated second".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """A simulated wall clock measured in seconds.

    Parameters
    ----------
    now:
        The current simulated time in seconds.  Defaults to zero.
    """

    now: float = 0.0
    _total_advanced: float = field(default=0.0, repr=False)

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Negative advances are rejected because simulated time, like real
        time, only moves forward.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self.now += seconds
        self._total_advanced += seconds
        return self.now

    def reset(self, now: float = 0.0) -> None:
        """Reset the clock to ``now`` (default zero)."""
        self.now = now
        self._total_advanced = 0.0

    @property
    def total_advanced(self) -> float:
        """Total seconds this clock has been advanced since creation/reset."""
        return self._total_advanced

    def interval_index(self, interval_seconds: float) -> int:
        """Return the index of the SLO interval containing the current time.

        SLOs in the paper are defined over fixed, non-overlapping intervals
        (e.g. "99% of queries during each ten-minute interval").  The
        prediction framework bins observations by this index.
        """
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        return int(self.now // interval_seconds)


def milliseconds(seconds: float) -> float:
    """Convert seconds to milliseconds (convenience for reporting)."""
    return seconds * 1000.0


def seconds_from_ms(ms: float) -> float:
    """Convert milliseconds to seconds (convenience for configuration)."""
    return ms / 1000.0
