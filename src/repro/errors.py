"""Exception hierarchy for the PIQL reproduction.

All library-specific errors derive from :class:`PiqlError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to distinguish parse errors, planning errors, and runtime errors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class PiqlError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ParseError(PiqlError):
    """Raised when a PIQL statement cannot be parsed.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    position:
        Character offset into the source text where the error occurred, or
        ``None`` when the position is unknown.
    """

    def __init__(self, message: str, position: Optional[int] = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SchemaError(PiqlError):
    """Raised for invalid DDL, unknown tables/columns, or constraint issues."""


class UnknownTableError(SchemaError):
    """Raised when a statement references a table that does not exist."""

    def __init__(self, table: str):
        self.table = table
        super().__init__(f"unknown table: {table!r}")


class UnknownColumnError(SchemaError):
    """Raised when a statement references a column that does not exist."""

    def __init__(self, column: str, table: Optional[str] = None):
        self.column = column
        self.table = table
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {column!r}{where}")


class PlanningError(PiqlError):
    """Raised when the optimizer cannot produce a plan at all."""


class NotScaleIndependentError(PlanningError):
    """Raised when no bounded (scale-independent) plan exists for a query.

    This is the error described in Section 5.2.3 of the paper ("ERROR(Not
    scale-independent)").  It carries enough structure for the Performance
    Insight Assistant to explain the problem and suggest fixes: the relation
    whose cardinality is unbounded and candidate attributes on which a
    ``CARDINALITY LIMIT`` would make the plan bounded.
    """

    def __init__(
        self,
        message: str,
        relation: Optional[str] = None,
        candidate_attributes: Optional[Sequence[str]] = None,
        suggestions: Optional[Sequence[str]] = None,
    ):
        self.relation = relation
        self.candidate_attributes = list(candidate_attributes or [])
        self.suggestions = list(suggestions or [])
        super().__init__(message)

    def explain(self) -> str:
        """Return a multi-line human readable explanation with suggestions."""
        lines: List[str] = [str(self)]
        if self.relation:
            lines.append(f"  unbounded relation: {self.relation}")
        if self.candidate_attributes:
            attrs = ", ".join(self.candidate_attributes)
            lines.append(
                "  consider adding a CARDINALITY LIMIT on one of: " + attrs
            )
        for suggestion in self.suggestions:
            lines.append("  suggestion: " + suggestion)
        return "\n".join(lines)


class ExecutionError(PiqlError):
    """Raised when a physical plan fails during execution."""


class BoundViolationError(ExecutionError):
    """Raised when a query's observed operations exceed its static bound.

    The runtime bound auditor raises this (in strict mode) when the live
    operation count of a finished query is larger than the scale-independence
    bound the optimizer proved for it — the invariant at the heart of the
    paper, now checked on every execution rather than only in benchmarks.
    """

    def __init__(
        self,
        observed_operations: int,
        bound_operations: int,
        sql: Optional[str] = None,
    ):
        self.observed_operations = observed_operations
        self.bound_operations = bound_operations
        self.sql = sql
        message = (
            f"scale-independence violation: executed {observed_operations} "
            f"key/value operations but the static bound is {bound_operations}"
        )
        if sql:
            message += f" (query: {sql.strip()!r})"
        super().__init__(message)


class ConstraintViolationError(ExecutionError):
    """Raised when an insert/update violates a declared constraint."""

    def __init__(self, message: str, constraint: Optional[str] = None):
        self.constraint = constraint
        super().__init__(message)


class CardinalityViolationError(ConstraintViolationError):
    """Raised when an insert would exceed a ``CARDINALITY LIMIT``."""


class UniquenessViolationError(ConstraintViolationError):
    """Raised when an insert would duplicate a primary key or unique index."""


class CursorError(ExecutionError):
    """Raised for invalid pagination cursors (corrupt or mismatched query)."""


class UnavailableError(ExecutionError):
    """Raised when the replicated store cannot serve an operation at all.

    Too many of the key's replicas are down (or were removed) for the
    configured consistency level.  The engine's retry path catches this
    family: transient failures (a node mid-recovery) heal, persistent ones
    surface to the caller as a typed error rather than a generic crash.
    """


class RpcTimeoutError(UnavailableError):
    """Raised when an RPC's reply did not arrive within the client's timeout.

    The message-level fault plane turns a dropped message into this error
    (a drop is indistinguishable from an arbitrarily slow reply), and the
    resilience layer raises it when a reply is slower than the per-query
    timeout derived from the prediction model's p99 envelope.  It subclasses
    :class:`UnavailableError` so every existing retry/failure-accounting
    path treats it as a transient store failure.
    """

    def __init__(
        self,
        operation: str,
        namespace: str,
        node_id: int = -1,
        timeout_seconds: Optional[float] = None,
    ):
        self.operation = operation
        self.namespace = namespace
        self.node_id = node_id
        self.timeout_seconds = timeout_seconds
        where = f" (node {node_id})" if node_id >= 0 else ""
        budget = (
            f" after {timeout_seconds * 1000.0:.0f} ms"
            if timeout_seconds is not None
            else ""
        )
        super().__init__(
            f"{operation} on namespace {namespace!r} timed out{budget}{where}"
        )


class RetryBudgetExhaustedError(UnavailableError):
    """Raised when the client's token-bucket retry budget is empty.

    Refusing to retry is what stops a retry storm: once the budget is
    drained the failure surfaces immediately instead of re-charging the
    surviving replicas.
    """

    def __init__(self, operation: str, attempts: int):
        self.operation = operation
        self.attempts = attempts
        super().__init__(
            f"retry budget exhausted for {operation!r} after "
            f"{attempts} attempt(s)"
        )


class CircuitOpenError(UnavailableError):
    """Raised when every candidate replica's circuit breaker is open.

    A client whose breakers all report a failing store fails fast — no RPC
    is issued and no retry budget is spent — until a half-open probe
    succeeds somewhere.
    """

    def __init__(self, open_nodes: Sequence[int]):
        self.open_nodes = list(open_nodes)
        super().__init__(
            f"circuit breakers open for all candidate nodes {self.open_nodes}"
        )


class QuorumNotMetError(UnavailableError):
    """Raised when fewer replicas answered than the R/W quorum requires."""

    def __init__(
        self,
        operation: str,
        namespace: str,
        needed: int,
        available: int,
    ):
        self.operation = operation
        self.namespace = namespace
        self.needed = needed
        self.available = available
        super().__init__(
            f"{operation} on namespace {namespace!r} needs {needed} replica(s), "
            f"only {available} up"
        )


class PredictionError(PiqlError):
    """Raised by the SLO prediction framework (e.g. untrained models)."""


class ObservabilityError(PiqlError):
    """Raised by the observability layer (metrics, telemetry, exporters)."""


class HistogramMergeError(ObservabilityError):
    """Raised when two bounded histograms cannot be merged.

    Merging reservoirs is only statistically sound when both operands are
    genuine sample reservoirs; an operand with a non-positive capacity (or
    an internally inconsistent one holding more samples than observations)
    would poison the roll-up silently, so the merge refuses instead.
    """

    def __init__(self, reason: str):
        super().__init__(f"cannot merge histograms: {reason}")
