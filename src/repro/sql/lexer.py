"""Tokenizer for the PIQL dialect of SQL.

PIQL is "a minimal extension to SQL" (Section 1.5); the lexical extensions
are:

* bracketed query parameters, ``[1: titleWord]``, optionally carrying a
  declared maximum cardinality for list-valued parameters,
  ``[2: friends(50)]``;
* angle-bracket named parameters, ``<uname>``, as used in the paper's
  example queries;
* the ``PAGINATE`` and ``CARDINALITY`` keywords.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "JOIN", "INNER", "ON", "AS",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "PAGINATE", "LIKE", "IN",
    "CONTAINS", "TRUE", "FALSE", "NULL", "NOT",
    "CREATE", "TABLE", "PRIMARY", "KEY", "FOREIGN", "REFERENCES",
    "CARDINALITY", "UNIQUE", "INDEX", "TOKEN", "MATERIALIZED", "VIEW",
    "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP",
}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str          # KEYWORD, IDENT, NUMBER, STRING, OP, PARAM_OPEN, ...
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}@{self.position})"


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>--[^\n]*)
  | (?P<NAMED_PARAM><[A-Za-z_][A-Za-z0-9_]*>)
  | (?P<NUMBER>\d+(\.\d+)?)
  | (?P<STRING>'(?:[^']|'')*')
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><=|>=|<>|!=|=|<|>|\*|,|\(|\)|\.|\[|\]|:)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Turn PIQL source text into a list of tokens.

    Raises :class:`ParseError` on any character that cannot start a token.
    """
    return list(_iter_tokens(text))


def _iter_tokens(text: str) -> Iterator[Token]:
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", position=position
            )
        kind = match.lastgroup or ""
        value = match.group()
        position = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "IDENT":
            upper = value.upper()
            if upper in KEYWORDS:
                yield Token("KEYWORD", upper, match.start())
            else:
                yield Token("IDENT", value, match.start())
        elif kind == "STRING":
            literal = value[1:-1].replace("''", "'")
            yield Token("STRING", literal, match.start())
        elif kind == "NAMED_PARAM":
            yield Token("NAMED_PARAM", value[1:-1], match.start())
        else:
            yield Token(kind, value, match.start())
    yield Token("EOF", "", length)
