"""Recursive-descent parser for the PIQL dialect.

Supported statements:

* ``SELECT`` with equi-joins (``FROM a, b`` + join predicates in ``WHERE``,
  or explicit ``JOIN ... ON``), conjunctive ``WHERE``, ``GROUP BY``,
  ``ORDER BY``, ``LIMIT`` and PIQL's ``PAGINATE``;
* ``CREATE TABLE`` with ``PRIMARY KEY``, ``FOREIGN KEY ... REFERENCES`` and
  PIQL's ``CARDINALITY LIMIT n (columns)``;
* ``CREATE [UNIQUE] INDEX ... ON table (col | token(col), ...)``;
* ``INSERT INTO ... VALUES`` and ``DELETE FROM ... WHERE`` (primary key).

Query parameters may be written ``[1: name]``, ``[2: name(50)]`` (the
parenthesised number declares the maximum cardinality of a list-valued
parameter), or ``<name>``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import ParseError
from ..schema.ddl import CardinalityLimit, Column, ForeignKey, Table
from ..schema.types import type_from_name
from . import ast
from .lexer import Token, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_COMPARISON_OPS = {"=", "<", "<=", ">", ">=", "<>", "!="}


class Parser:
    """Parses a single PIQL statement from source text."""

    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Token] = tokenize(text)
        self.position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != "EOF":
            self.position += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value in words

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._check_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word}, found {token.value!r}", token.position)
        return self._advance()

    def _accept_op(self, op: str) -> Optional[Token]:
        token = self._peek()
        if token.kind == "OP" and token.value == op:
            return self._advance()
        return None

    def _expect_op(self, op: str) -> Token:
        token = self._peek()
        if token.kind != "OP" or token.value != op:
            raise ParseError(f"expected {op!r}, found {token.value!r}", token.position)
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        # Allow non-reserved keywords (COUNT, KEY, ...) to be used as identifiers
        # in column positions; real SQL dialects do the same.
        if token.kind in ("IDENT",) or (
            token.kind == "KEYWORD" and token.value in _AGGREGATES | {"KEY", "TOKEN"}
        ):
            self._advance()
            return token.value
        raise ParseError(f"expected identifier, found {token.value!r}", token.position)

    def _expect_number(self) -> Union[int, float]:
        token = self._peek()
        if token.kind != "NUMBER":
            raise ParseError(f"expected number, found {token.value!r}", token.position)
        self._advance()
        return float(token.value) if "." in token.value else int(token.value)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        """Parse one statement and require it to consume all input."""
        statement = self._parse_statement()
        token = self._peek()
        if token.kind != "EOF":
            raise ParseError(f"unexpected trailing input: {token.value!r}", token.position)
        return statement

    def _parse_statement(self) -> ast.Statement:
        if self._check_keyword("SELECT"):
            return self._parse_select()
        if self._check_keyword("CREATE"):
            return self._parse_create()
        if self._check_keyword("INSERT"):
            return self._parse_insert()
        if self._check_keyword("DELETE"):
            return self._parse_delete()
        token = self._peek()
        raise ParseError(f"unsupported statement: {token.value!r}", token.position)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())

        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        where: List[ast.Predicate] = []
        while True:
            if self._accept_op(","):
                tables.append(self._parse_table_ref())
                continue
            if self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
                tables.append(self._parse_table_ref())
                if self._accept_keyword("ON"):
                    where.extend(self._parse_predicates())
                continue
            if self._accept_keyword("JOIN"):
                tables.append(self._parse_table_ref())
                if self._accept_keyword("ON"):
                    where.extend(self._parse_predicates())
                continue
            break

        if self._accept_keyword("WHERE"):
            where.extend(self._parse_predicates())

        group_by: List[ast.ColumnRef] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_column_ref())
            while self._accept_op(","):
                group_by.append(self._parse_column_ref())

        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())

        limit: Optional[ast.LimitClause] = None
        if self._accept_keyword("LIMIT"):
            limit = ast.LimitClause(self._parse_limit_count(), paginate=False)
        elif self._accept_keyword("PAGINATE"):
            limit = ast.LimitClause(self._parse_limit_count(), paginate=True)

        return ast.SelectStatement(
            select_items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    def _parse_limit_count(self) -> Union[int, ast.Parameter]:
        token = self._peek()
        if token.kind == "NUMBER":
            value = self._expect_number()
            if not isinstance(value, int):
                raise ParseError("LIMIT/PAGINATE requires an integer", token.position)
            return value
        if token.kind == "OP" and token.value == "[":
            return self._parse_bracket_parameter()
        if token.kind == "NAMED_PARAM":
            self._advance()
            return ast.Parameter(name=token.value)
        raise ParseError(
            f"expected LIMIT count, found {token.value!r}", token.position
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.kind == "OP" and token.value == "*":
            self._advance()
            return ast.Star()
        if token.kind == "KEYWORD" and token.value in _AGGREGATES:
            # Could still be a plain column named e.g. "count" — aggregates
            # are recognised by the following '('.
            if self._peek(1).kind == "OP" and self._peek(1).value == "(":
                return self._parse_aggregate()
        ref = self._parse_column_ref(allow_star=True)
        if isinstance(ref, ast.Star):
            return ref
        if self._accept_keyword("AS"):
            # Column aliases do not affect planning; accept and discard them.
            self._expect_ident()
        return ref

    def _parse_aggregate(self) -> ast.AggregateCall:
        function = self._advance().value
        self._expect_op("(")
        argument: Optional[ast.ColumnRef] = None
        if self._accept_op("*"):
            if function != "COUNT":
                raise ParseError(f"{function}(*) is not supported", self._peek().position)
        else:
            argument = self._parse_column_ref()
        self._expect_op(")")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        return ast.AggregateCall(function=function, argument=argument, alias=alias)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_ident()
        alias = None
        token = self._peek()
        if token.kind == "IDENT":
            alias = self._advance().value
        elif self._accept_keyword("AS"):
            alias = self._expect_ident()
        return ast.TableRef(name=name, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        column = self._parse_column_ref()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        elif self._accept_keyword("ASC"):
            ascending = True
        return ast.OrderItem(column=column, ascending=ascending)

    def _parse_column_ref(self, allow_star: bool = False):
        name = self._expect_ident()
        if self._accept_op("."):
            token = self._peek()
            if allow_star and token.kind == "OP" and token.value == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._expect_ident()
            return ast.ColumnRef(column=column, table=name)
        return ast.ColumnRef(column=name)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _parse_predicates(self) -> List[ast.Predicate]:
        predicates = [self._parse_predicate()]
        while self._accept_keyword("AND"):
            predicates.append(self._parse_predicate())
        if self._check_keyword("OR"):
            token = self._peek()
            raise ParseError(
                "OR is not supported by PIQL; rewrite as separate queries",
                token.position,
            )
        return predicates

    def _parse_predicate(self) -> ast.Predicate:
        column = self._parse_column_ref()
        if self._accept_keyword("LIKE"):
            return ast.LikePredicate(column=column, pattern=self._parse_value())
        if self._accept_keyword("CONTAINS"):
            return ast.ContainsPredicate(column=column, token=self._parse_value())
        if self._accept_keyword("IN"):
            return ast.InPredicate(column=column, values=self._parse_in_values())
        token = self._peek()
        if token.kind == "OP" and token.value in _COMPARISON_OPS:
            self._advance()
            op = "<>" if token.value == "!=" else token.value
            return ast.Comparison(left=column, op=op, right=self._parse_value())
        raise ParseError(
            f"expected a predicate operator, found {token.value!r}", token.position
        )

    def _parse_in_values(self) -> Union[ast.Parameter, Tuple[ast.Literal, ...]]:
        token = self._peek()
        if token.kind == "OP" and token.value == "[":
            return self._parse_bracket_parameter()
        if token.kind == "NAMED_PARAM":
            self._advance()
            return ast.Parameter(name=token.value)
        self._expect_op("(")
        literals = [self._parse_literal()]
        while self._accept_op(","):
            literals.append(self._parse_literal())
        self._expect_op(")")
        return tuple(literals)

    def _parse_value(self) -> ast.Value:
        token = self._peek()
        if token.kind == "OP" and token.value == "[":
            return self._parse_bracket_parameter()
        if token.kind == "NAMED_PARAM":
            self._advance()
            return ast.Parameter(name=token.value)
        if token.kind in ("NUMBER", "STRING") or token.value in ("TRUE", "FALSE", "NULL"):
            return self._parse_literal()
        if token.kind == "IDENT" or (
            token.kind == "KEYWORD" and token.value in _AGGREGATES | {"KEY"}
        ):
            return self._parse_column_ref()
        raise ParseError(f"expected a value, found {token.value!r}", token.position)

    def _parse_literal(self) -> ast.Literal:
        token = self._peek()
        if token.kind == "NUMBER":
            return ast.Literal(self._expect_number())
        if token.kind == "STRING":
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        raise ParseError(f"expected a literal, found {token.value!r}", token.position)

    def _parse_bracket_parameter(self) -> ast.Parameter:
        self._expect_op("[")
        index = None
        token = self._peek()
        if token.kind == "NUMBER":
            index = int(self._expect_number())
            self._expect_op(":")
        name = self._expect_ident()
        max_cardinality = None
        if self._accept_op("("):
            max_cardinality = int(self._expect_number())
            self._expect_op(")")
        self._expect_op("]")
        return ast.Parameter(name=name, index=index, max_cardinality=max_cardinality)

    # ------------------------------------------------------------------
    # CREATE TABLE / CREATE INDEX
    # ------------------------------------------------------------------
    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            return self._parse_create_table()
        if self._accept_keyword("MATERIALIZED"):
            self._expect_keyword("VIEW")
            return self._parse_create_materialized_view()
        unique = bool(self._accept_keyword("UNIQUE"))
        if self._accept_keyword("INDEX"):
            return self._parse_create_index(unique)
        token = self._peek()
        raise ParseError(f"unsupported CREATE statement: {token.value!r}", token.position)

    def _parse_create_materialized_view(self) -> ast.CreateMaterializedViewStatement:
        name = self._expect_ident()
        self._expect_keyword("AS")
        token = self._peek()
        if not self._check_keyword("SELECT"):
            raise ParseError(
                f"materialized view body must be a SELECT, found {token.value!r}",
                token.position,
            )
        select = self._parse_select()
        for parameter in select.parameters():
            raise ParseError(
                f"materialized view definitions must be parameter-free; "
                f"found parameter <{parameter.name}>"
            )
        return ast.CreateMaterializedViewStatement(name=name, select=select)

    def _parse_create_table(self) -> ast.CreateTableStatement:
        name = self._expect_ident()
        self._expect_op("(")
        columns: List[Column] = []
        primary_key: Tuple[str, ...] = ()
        foreign_keys: List[ForeignKey] = []
        cardinality_limits: List[CardinalityLimit] = []

        while True:
            if self._check_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                primary_key = tuple(self._parse_paren_ident_list())
            elif self._check_keyword("FOREIGN"):
                self._advance()
                self._expect_keyword("KEY")
                fk_columns = tuple(self._parse_paren_ident_list())
                self._expect_keyword("REFERENCES")
                ref_table = self._expect_ident()
                ref_columns = tuple(self._parse_paren_ident_list())
                foreign_keys.append(ForeignKey(fk_columns, ref_table, ref_columns))
            elif self._check_keyword("CARDINALITY"):
                self._advance()
                self._expect_keyword("LIMIT")
                limit = int(self._expect_number())
                limit_columns = tuple(self._parse_paren_ident_list())
                cardinality_limits.append(CardinalityLimit(limit, limit_columns))
            else:
                columns.append(self._parse_column_definition())
            if self._accept_op(","):
                continue
            break
        self._expect_op(")")

        if not primary_key:
            token = self._peek()
            raise ParseError(
                f"table {name!r} must declare a PRIMARY KEY", token.position
            )
        table = Table(
            name=name,
            columns=columns,
            primary_key=primary_key,
            foreign_keys=foreign_keys,
            cardinality_limits=cardinality_limits,
        )
        return ast.CreateTableStatement(table=table)

    def _parse_column_definition(self) -> Column:
        name = self._expect_ident()
        type_token = self._peek()
        if type_token.kind not in ("IDENT", "KEYWORD"):
            raise ParseError(
                f"expected a column type, found {type_token.value!r}",
                type_token.position,
            )
        self._advance()
        argument = None
        if self._accept_op("("):
            argument = int(self._expect_number())
            self._expect_op(")")
        nullable = True
        if self._accept_keyword("NOT"):
            self._expect_keyword("NULL")
            nullable = False
        return Column(name=name, type=type_from_name(type_token.value, argument), nullable=nullable)

    def _parse_paren_ident_list(self) -> List[str]:
        self._expect_op("(")
        names = [self._expect_ident()]
        while self._accept_op(","):
            names.append(self._expect_ident())
        self._expect_op(")")
        return names

    def _parse_create_index(self, unique: bool) -> ast.CreateIndexStatement:
        name = self._expect_ident()
        self._expect_keyword("ON")
        table = self._expect_ident()
        self._expect_op("(")
        columns: List[Tuple[str, bool]] = [self._parse_index_column()]
        while self._accept_op(","):
            columns.append(self._parse_index_column())
        self._expect_op(")")
        return ast.CreateIndexStatement(
            name=name, table=table, columns=tuple(columns), unique=unique
        )

    def _parse_index_column(self) -> Tuple[str, bool]:
        if self._accept_keyword("TOKEN"):
            self._expect_op("(")
            column = self._expect_ident()
            self._expect_op(")")
            return column, True
        return self._expect_ident(), False

    # ------------------------------------------------------------------
    # INSERT / DELETE
    # ------------------------------------------------------------------
    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns = tuple(self._parse_paren_ident_list())
        self._expect_keyword("VALUES")
        self._expect_op("(")
        values: List[object] = [self._parse_literal().value]
        while self._accept_op(","):
            values.append(self._parse_literal().value)
        self._expect_op(")")
        if len(columns) != len(values):
            raise ParseError(
                f"INSERT into {table!r} has {len(columns)} columns but "
                f"{len(values)} values"
            )
        return ast.InsertStatement(table=table, columns=columns, values=tuple(values))

    def _parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        self._expect_keyword("WHERE")
        predicates = tuple(self._parse_predicates())
        return ast.DeleteStatement(table=table, where=predicates)


def parse(text: str) -> ast.Statement:
    """Parse a single PIQL statement."""
    return Parser(text).parse_statement()


def parse_select(text: str) -> ast.SelectStatement:
    """Parse text that must be a SELECT statement."""
    statement = parse(text)
    if not isinstance(statement, ast.SelectStatement):
        raise ParseError("expected a SELECT statement")
    return statement
