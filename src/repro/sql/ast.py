"""Abstract syntax tree for PIQL statements.

The AST mirrors the PIQL surface language: standard SQL SELECT with
equi-joins, conjunctive WHERE clauses, ORDER BY, LIMIT — plus the PIQL
extensions (PAGINATE, bracketed parameters, CARDINALITY LIMIT in DDL).
Nodes are plain dataclasses; the analyzer in :mod:`repro.plans.builder`
resolves names against the catalog and converts the AST into a logical plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..schema.ddl import Table


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    """A constant value appearing in the query text."""

    value: object


@dataclass(frozen=True)
class Parameter:
    """A query parameter: ``[1: titleWord]``, ``[2: friends(50)]`` or ``<uname>``.

    Attributes
    ----------
    name:
        Parameter name used for binding at execution time.
    index:
        Positional index from the bracket syntax (``None`` for ``<name>``).
    max_cardinality:
        Declared maximum number of values for list-valued parameters; used
        by the optimizer to bound ``IN`` predicates.
    """

    name: str
    index: Optional[int] = None
    max_cardinality: Optional[int] = None


@dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference, e.g. ``t.owner`` or ``owner``."""

    column: str
    table: Optional[str] = None

    def render(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` in the select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate function call: COUNT(*), SUM(col), AVG, MIN, MAX."""

    function: str                     # COUNT, SUM, AVG, MIN, MAX
    argument: Optional[ColumnRef]     # None for COUNT(*)
    alias: Optional[str] = None


Value = Union[Literal, Parameter, ColumnRef]


# ----------------------------------------------------------------------
# Predicates (WHERE clause is a conjunction of these)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """``column op value`` or ``column op other_column`` (join predicate)."""

    left: ColumnRef
    op: str                            # '=', '<', '<=', '>', '>=', '<>'
    right: Value


@dataclass(frozen=True)
class LikePredicate:
    """``column LIKE pattern`` — executed as a tokenized keyword search."""

    column: ColumnRef
    pattern: Value


@dataclass(frozen=True)
class ContainsPredicate:
    """``column CONTAINS token`` — explicit inverted-index keyword search."""

    column: ColumnRef
    token: Value


@dataclass(frozen=True)
class InPredicate:
    """``column IN [k: values]`` or ``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: Union[Parameter, Tuple[Literal, ...]]


Predicate = Union[Comparison, LikePredicate, ContainsPredicate, InPredicate]


# ----------------------------------------------------------------------
# SELECT
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: ColumnRef
    ascending: bool = True


@dataclass(frozen=True)
class LimitClause:
    """LIMIT n or PAGINATE n (``paginate`` distinguishes the two)."""

    count: Union[int, Parameter]
    paginate: bool = False


SelectItem = Union[Star, ColumnRef, AggregateCall]


@dataclass
class SelectStatement:
    """A parsed PIQL SELECT statement."""

    select_items: List[SelectItem]
    tables: List[TableRef]
    where: List[Predicate] = field(default_factory=list)
    group_by: List[ColumnRef] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[LimitClause] = None

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(item, AggregateCall) for item in self.select_items)

    def parameters(self) -> List[Parameter]:
        """All parameters appearing anywhere in the statement, in query order."""
        params: List[Parameter] = []

        def maybe_add(value: object) -> None:
            if isinstance(value, Parameter):
                params.append(value)

        for predicate in self.where:
            if isinstance(predicate, Comparison):
                maybe_add(predicate.right)
            elif isinstance(predicate, LikePredicate):
                maybe_add(predicate.pattern)
            elif isinstance(predicate, ContainsPredicate):
                maybe_add(predicate.token)
            elif isinstance(predicate, InPredicate):
                maybe_add(predicate.values)
        if self.limit is not None:
            maybe_add(self.limit.count)
        return params


# ----------------------------------------------------------------------
# DDL / DML
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CreateTableStatement:
    """A parsed CREATE TABLE (including PIQL's CARDINALITY LIMIT)."""

    table: Table


@dataclass(frozen=True)
class CreateMaterializedViewStatement:
    """``CREATE MATERIALIZED VIEW name AS SELECT ...``.

    The SELECT body is an aggregate query (``GROUP BY`` plus aggregate
    outputs), optionally carrying ``ORDER BY <aggregate> [DESC] LIMIT k``
    which declares a bounded top-k ordering maintained incrementally (see
    :mod:`repro.views`).  View definitions are parameter-free.
    """

    name: str
    select: "SelectStatement"


@dataclass(frozen=True)
class CreateIndexStatement:
    """CREATE [UNIQUE] INDEX name ON table (col | token(col), ...)."""

    name: str
    table: str
    columns: Tuple[Tuple[str, bool], ...]   # (column, tokenized)
    unique: bool = False


@dataclass(frozen=True)
class InsertStatement:
    """INSERT INTO table (cols) VALUES (values)."""

    table: str
    columns: Tuple[str, ...]
    values: Tuple[object, ...]


@dataclass(frozen=True)
class DeleteStatement:
    """DELETE FROM table WHERE <equality predicates on the primary key>."""

    table: str
    where: Tuple[Predicate, ...]


Statement = Union[
    SelectStatement,
    CreateTableStatement,
    CreateIndexStatement,
    CreateMaterializedViewStatement,
    InsertStatement,
    DeleteStatement,
]
