"""PIQL language front end: lexer, AST, and parser."""

from . import ast
from .lexer import Token, tokenize
from .parser import Parser, parse, parse_select

__all__ = ["Parser", "Token", "ast", "parse", "parse_select", "tokenize"]
